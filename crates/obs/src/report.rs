//! Bench-report parsing and schema-aware regression diffing.
//!
//! The vendored criterion shim and `poe loadgen` both persist results as a
//! `poe-bench` JSON document with one row object per line. This module
//! parses those reports ([`BenchReport::parse`]) tolerantly across schema
//! versions — v1 stamped `warmup_ms`/`measure_ms` globally in the header,
//! v2 carries them per row — and diffs two reports row-by-name with
//! per-metric regression rules ([`diff`]):
//!
//! * `*_ns` latency metrics are higher-is-worse; a regression must exceed
//!   **both** a relative threshold and an absolute noise floor, so a
//!   200 ns → 300 ns jitter on a nanosecond-scale bench doesn't fail CI.
//! * `samples_per_sec` is lower-is-worse (relative only; rows measuring
//!   < 1 sample/sec are skipped as too noisy).
//! * `errors`/`shed`/`partial` counts regress when the candidate exceeds
//!   the baseline by more than a configurable count floor.
//! * `slo_pass` (0/1) regresses when a passing baseline turns failing.
//! * Rows whose per-row `warmup_ms`/`measure_ms` disagree are flagged as
//!   a settings mismatch instead of comparing apples to oranges.
//!
//! [`DiffReport::render`] prints the human table behind `poe obs diff`,
//! and [`DiffReport::passed`] is its exit code.

use std::collections::BTreeMap;

/// One bench row: a name plus its numeric fields (`mean_ns`, `p99_ns`,
/// `samples_per_sec`, …). Non-numeric fields other than `name` are
/// ignored.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Full bench id (`group/case` or `loadgen/<tenant>`).
    pub name: String,
    /// Numeric fields, keyed by field name.
    pub fields: BTreeMap<String, f64>,
}

impl BenchRow {
    /// The named numeric field, if present.
    pub fn field(&self, key: &str) -> Option<f64> {
        self.fields.get(key).copied()
    }
}

/// A parsed `poe-bench` report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version from the header (1 or 2).
    pub version: u64,
    /// Rows in file order.
    pub rows: Vec<BenchRow>,
}

/// Extracts `"key": <number>` pairs from a single-line JSON object. The
/// report writer emits one row object per line with simple scalar fields,
/// so a full JSON parser is not needed; string values are skipped
/// (honoring escapes) and numeric values are collected.
fn parse_row_fields(line: &str) -> BTreeMap<String, f64> {
    let mut fields = BTreeMap::new();
    let mut rest = line;
    while let Some(q) = rest.find('"') {
        rest = &rest[q + 1..];
        // Key: scan to the closing unescaped quote.
        let mut key = String::new();
        let mut chars = rest.char_indices();
        let mut end = rest.len();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    end = i + 1;
                    break;
                }
                '\\' => {
                    if let Some((_, e)) = chars.next() {
                        key.push(match e {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                    }
                }
                c => key.push(c),
            }
        }
        rest = &rest[end.min(rest.len())..];
        let Some(after_colon) = rest.trim_start().strip_prefix(':') else {
            continue;
        };
        let val = after_colon.trim_start();
        if let Some(body) = val.strip_prefix('"') {
            // A string value (only `name` in practice): skip past it,
            // honoring escapes, so its content can't be misread as a key.
            let mut chars = body.char_indices();
            let mut consumed = val.len();
            while let Some((i, c)) = chars.next() {
                match c {
                    '"' => {
                        consumed = 1 + i + 1;
                        break;
                    }
                    '\\' => {
                        chars.next();
                    }
                    _ => {}
                }
            }
            rest = &val[consumed.min(val.len())..];
            continue;
        }
        let num: String = val
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            fields.insert(key, v);
        }
        rest = &val[num.len()..];
    }
    fields
}

/// Extracts the `name` string from a row line, honoring escapes.
fn parse_row_name(line: &str) -> Option<String> {
    let rest = line.trim_start().strip_prefix("{\"name\": \"")?;
    let mut name = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(name),
            '\\' => name.push(chars.next()?),
            c => name.push(c),
        }
    }
    None
}

impl BenchReport {
    /// Parses a `poe-bench` report. Accepts schema v1 (global
    /// `warmup_ms`/`measure_ms`, injected here into every row) and v2
    /// (per-row settings). Errors name the first problem found.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        if !text.contains("\"report\": \"poe-bench\"") {
            return Err(
                "not a poe-bench report (missing `\"report\": \"poe-bench\"` header)".into(),
            );
        }
        let mut version = None;
        let mut global_warmup = None;
        let mut global_measure = None;
        let mut rows = Vec::new();
        let mut in_benches = false;
        for line in text.lines() {
            let t = line.trim();
            if !in_benches {
                if let Some(rest) = t.strip_prefix("\"version\":") {
                    version = rest.trim().trim_end_matches(',').parse::<u64>().ok();
                } else if let Some(rest) = t.strip_prefix("\"warmup_ms\":") {
                    global_warmup = rest.trim().trim_end_matches(',').parse::<f64>().ok();
                } else if let Some(rest) = t.strip_prefix("\"measure_ms\":") {
                    global_measure = rest.trim().trim_end_matches(',').parse::<f64>().ok();
                }
                if t.starts_with("\"benches\":") {
                    in_benches = true;
                }
                continue;
            }
            if !t.starts_with('{') {
                continue;
            }
            let name = parse_row_name(t)
                .ok_or_else(|| format!("bench row without a leading `name` field: `{t}`"))?;
            let mut fields = parse_row_fields(t);
            if let (None, Some(w)) = (fields.get("warmup_ms"), global_warmup) {
                fields.insert("warmup_ms".into(), w);
            }
            if let (None, Some(m)) = (fields.get("measure_ms"), global_measure) {
                fields.insert("measure_ms".into(), m);
            }
            if rows.iter().any(|r: &BenchRow| r.name == name) {
                return Err(format!("duplicate bench row `{name}`"));
            }
            rows.push(BenchRow { name, fields });
        }
        let version = version.ok_or("report header has no `version` field")?;
        if !(1..=2).contains(&version) {
            return Err(format!("unsupported report version {version}"));
        }
        Ok(BenchReport { version, rows })
    }

    /// The named row, if present.
    pub fn row(&self, name: &str) -> Option<&BenchRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// Thresholds for [`diff`].
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Relative regression threshold (0.25 = candidate may be up to 25%
    /// worse before failing).
    pub rel: f64,
    /// Absolute noise floor for `*_ns` metrics: a latency regression must
    /// also exceed the baseline by this many nanoseconds.
    pub abs_ns: f64,
    /// Error/shed/partial counts may exceed the baseline by this much
    /// before failing.
    pub count_floor: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            rel: 0.25,
            abs_ns: 50_000.0,
            count_floor: 0.0,
        }
    }
}

/// Verdict for one compared metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within thresholds (or improved).
    Ok,
    /// Worse than the baseline beyond the thresholds.
    Regression,
}

/// One compared metric of one row.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// Row name the metric belongs to.
    pub row: String,
    /// Metric field name (`p99_ns`, `samples_per_sec`, …).
    pub metric: String,
    /// Baseline value.
    pub base: f64,
    /// Candidate value.
    pub cand: f64,
    /// Pass/fail for this metric.
    pub verdict: Verdict,
}

/// The outcome of diffing two reports.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every metric compared, in row order.
    pub entries: Vec<DiffEntry>,
    /// Baseline rows absent from the candidate (warned, not failed: bench
    /// suites legitimately grow and shrink across commits).
    pub missing: Vec<String>,
    /// Candidate rows absent from the baseline (informational).
    pub added: Vec<String>,
    /// Rows whose per-row `warmup_ms`/`measure_ms` disagree between the
    /// two reports — compared settings-wise apples to oranges, so these
    /// fail the diff.
    pub settings_mismatch: Vec<String>,
}

impl DiffReport {
    /// True when no metric regressed and no settings mismatched.
    pub fn passed(&self) -> bool {
        self.settings_mismatch.is_empty()
            && self
                .entries
                .iter()
                .all(|e| e.verdict != Verdict::Regression)
    }

    /// Number of regressed metrics.
    pub fn regressions(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.verdict == Verdict::Regression)
            .count()
    }

    /// Renders the human-readable comparison table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let name_w = self
            .entries
            .iter()
            .map(|e| e.row.len() + e.metric.len() + 1)
            .max()
            .unwrap_or(12)
            .max(12);
        out.push_str(&format!(
            "{:<name_w$} {:>14} {:>14} {:>9}  verdict\n",
            "row/metric", "baseline", "candidate", "delta"
        ));
        for e in &self.entries {
            let delta = if e.base.abs() > f64::EPSILON {
                format!("{:+.1}%", (e.cand - e.base) / e.base * 100.0)
            } else {
                "n/a".to_string()
            };
            let verdict = match e.verdict {
                Verdict::Ok => "ok",
                Verdict::Regression => "REGRESSION",
            };
            out.push_str(&format!(
                "{:<name_w$} {:>14.1} {:>14.1} {:>9}  {verdict}\n",
                format!("{}.{}", e.row, e.metric),
                e.base,
                e.cand,
                delta
            ));
        }
        for row in &self.settings_mismatch {
            out.push_str(&format!(
                "{row}: warmup_ms/measure_ms differ between reports — not comparable\n"
            ));
        }
        for row in &self.missing {
            out.push_str(&format!("warning: row `{row}` missing from candidate\n"));
        }
        for row in &self.added {
            out.push_str(&format!("note: row `{row}` only in candidate\n"));
        }
        let r = self.regressions();
        if r == 0 && self.settings_mismatch.is_empty() {
            out.push_str("diff: OK\n");
        } else {
            out.push_str(&format!(
                "diff: {r} regression(s), {} settings mismatch(es)\n",
                self.settings_mismatch.len()
            ));
        }
        out
    }
}

/// Fields never compared directly: bookkeeping, not performance.
const SKIPPED_FIELDS: &[&str] = &["iters", "warmup_ms", "measure_ms"];

/// Compares `cand` against `base` row-by-name under `opts`. See the
/// module docs for the per-metric rules.
pub fn diff(base: &BenchReport, cand: &BenchReport, opts: &DiffOptions) -> DiffReport {
    let mut out = DiffReport::default();
    for brow in &base.rows {
        let Some(crow) = cand.row(&brow.name) else {
            out.missing.push(brow.name.clone());
            continue;
        };
        let settings_differ = ["warmup_ms", "measure_ms"].iter().any(|k| {
            matches!(
                (brow.field(k), crow.field(k)),
                (Some(b), Some(c)) if (b - c).abs() > f64::EPSILON
            )
        });
        if settings_differ {
            out.settings_mismatch.push(brow.name.clone());
            continue;
        }
        for (metric, &b) in &brow.fields {
            if SKIPPED_FIELDS.contains(&metric.as_str()) {
                continue;
            }
            let Some(c) = crow.field(metric) else {
                continue;
            };
            let verdict = metric_verdict(metric, b, c, opts);
            let Some(verdict) = verdict else { continue };
            out.entries.push(DiffEntry {
                row: brow.name.clone(),
                metric: metric.clone(),
                base: b,
                cand: c,
                verdict,
            });
        }
    }
    for crow in &cand.rows {
        if base.row(&crow.name).is_none() {
            out.added.push(crow.name.clone());
        }
    }
    out
}

/// Applies the per-metric rule; `None` means the metric is skipped.
fn metric_verdict(metric: &str, base: f64, cand: f64, opts: &DiffOptions) -> Option<Verdict> {
    if metric.ends_with("_ns") {
        let worse = cand > base * (1.0 + opts.rel) && cand > base + opts.abs_ns;
        return Some(if worse {
            Verdict::Regression
        } else {
            Verdict::Ok
        });
    }
    match metric {
        "samples_per_sec" => {
            if base < 1.0 {
                return None; // too slow/noisy for a relative throughput gate
            }
            let worse = cand < base * (1.0 - opts.rel);
            Some(if worse {
                Verdict::Regression
            } else {
                Verdict::Ok
            })
        }
        "errors" | "shed" | "partial" => {
            let worse = cand > base + opts.count_floor;
            Some(if worse {
                Verdict::Regression
            } else {
                Verdict::Ok
            })
        }
        "slo_pass" => {
            let worse = base >= 1.0 && cand < 1.0;
            Some(if worse {
                Verdict::Regression
            } else {
                Verdict::Ok
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v2_report(rows: &[&str]) -> String {
        format!(
            "{{\n  \"report\": \"poe-bench\",\n  \"version\": 2,\n  \"benches\": [\n    {}\n  ]\n}}\n",
            rows.join(",\n    ")
        )
    }

    const ROW_A: &str = "{\"name\": \"grp/a\", \"iters\": 100, \"mean_ns\": 1000.0, \"samples_per_sec\": 1000000.0, \"p50_ns\": 900.0, \"p95_ns\": 1500.0, \"p99_ns\": 2000.0, \"warmup_ms\": 50, \"measure_ms\": 300}";

    #[test]
    fn parses_v1_and_injects_global_settings() {
        let text = "{\n  \"report\": \"poe-bench\",\n  \"version\": 1,\n  \"warmup_ms\": 50,\n  \"measure_ms\": 300,\n  \"benches\": [\n    {\"name\": \"x\", \"iters\": 5, \"mean_ns\": 2.0, \"samples_per_sec\": 5e8, \"p50_ns\": 2.0, \"p95_ns\": 2.0, \"p99_ns\": 3.0}\n  ]\n}\n";
        let r = BenchReport::parse(text).unwrap();
        assert_eq!(r.version, 1);
        let row = r.row("x").unwrap();
        assert_eq!(row.field("warmup_ms"), Some(50.0));
        assert_eq!(row.field("measure_ms"), Some(300.0));
        assert_eq!(row.field("p99_ns"), Some(3.0));
        assert_eq!(row.field("samples_per_sec"), Some(5e8));
    }

    #[test]
    fn parses_v2_with_per_row_settings() {
        let r = BenchReport::parse(&v2_report(&[ROW_A])).unwrap();
        assert_eq!(r.version, 2);
        let row = r.row("grp/a").unwrap();
        assert_eq!(row.field("warmup_ms"), Some(50.0));
        assert_eq!(row.field("iters"), Some(100.0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BenchReport::parse("{}").unwrap_err().contains("poe-bench"));
        let no_version = "{\n  \"report\": \"poe-bench\",\n  \"benches\": [\n  ]\n}\n";
        assert!(BenchReport::parse(no_version)
            .unwrap_err()
            .contains("version"));
        let dup = v2_report(&[ROW_A, ROW_A]);
        assert!(BenchReport::parse(&dup).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn self_diff_passes() {
        let r = BenchReport::parse(&v2_report(&[ROW_A])).unwrap();
        let d = diff(&r, &r, &DiffOptions::default());
        assert!(d.passed(), "{}", d.render());
        assert_eq!(d.regressions(), 0);
        assert!(d.render().contains("diff: OK"));
    }

    #[test]
    fn latency_regression_needs_both_thresholds() {
        let base = BenchReport::parse(&v2_report(&[ROW_A])).unwrap();
        // +100% but only +1000 ns: under the 50 µs absolute floor → ok.
        let small = ROW_A.replace("\"p99_ns\": 2000.0", "\"p99_ns\": 4000.0");
        let cand = BenchReport::parse(&v2_report(&[&small])).unwrap();
        assert!(diff(&base, &cand, &DiffOptions::default()).passed());
        // +100% and +2 ms: both thresholds exceeded → regression.
        let big = ROW_A.replace("\"p99_ns\": 2000.0", "\"p99_ns\": 2002000.0");
        let cand = BenchReport::parse(&v2_report(&[&big])).unwrap();
        let d = diff(&base, &cand, &DiffOptions::default());
        assert!(!d.passed());
        assert_eq!(d.regressions(), 1);
        assert!(d.render().contains("REGRESSION"), "{}", d.render());
    }

    #[test]
    fn throughput_regression_is_lower_is_worse() {
        let base = BenchReport::parse(&v2_report(&[ROW_A])).unwrap();
        let slow = ROW_A.replace(
            "\"samples_per_sec\": 1000000.0",
            "\"samples_per_sec\": 500000.0",
        );
        let cand = BenchReport::parse(&v2_report(&[&slow])).unwrap();
        let d = diff(&base, &cand, &DiffOptions::default());
        assert!(!d.passed());
        // Faster is never a regression.
        let d = diff(&cand, &base, &DiffOptions::default());
        assert!(d.passed(), "{}", d.render());
    }

    #[test]
    fn error_counts_and_slo_flags_gate() {
        let base_row = "{\"name\": \"loadgen/t\", \"p99_ns\": 100.0, \"errors\": 0, \"shed\": 2, \"partial\": 0, \"slo_pass\": 1, \"warmup_ms\": 0, \"measure_ms\": 2000}";
        let base = BenchReport::parse(&v2_report(&[base_row])).unwrap();
        let worse = base_row
            .replace("\"errors\": 0", "\"errors\": 3")
            .replace("\"slo_pass\": 1", "\"slo_pass\": 0");
        let cand = BenchReport::parse(&v2_report(&[&worse])).unwrap();
        let d = diff(&base, &cand, &DiffOptions::default());
        assert_eq!(d.regressions(), 2, "{}", d.render());
        // A count floor forgives small error-count increases.
        let opts = DiffOptions {
            count_floor: 5.0,
            ..DiffOptions::default()
        };
        let only_errors = base_row.replace("\"errors\": 0", "\"errors\": 3");
        let cand = BenchReport::parse(&v2_report(&[&only_errors])).unwrap();
        assert!(diff(&base, &cand, &opts).passed());
    }

    #[test]
    fn settings_mismatch_fails_the_diff() {
        let base = BenchReport::parse(&v2_report(&[ROW_A])).unwrap();
        let other = ROW_A.replace("\"measure_ms\": 300", "\"measure_ms\": 60");
        let cand = BenchReport::parse(&v2_report(&[&other])).unwrap();
        let d = diff(&base, &cand, &DiffOptions::default());
        assert!(!d.passed());
        assert_eq!(d.settings_mismatch, vec!["grp/a".to_string()]);
        assert!(d.render().contains("not comparable"), "{}", d.render());
    }

    #[test]
    fn missing_and_added_rows_warn_but_pass() {
        let row_b = ROW_A.replace("grp/a", "grp/b");
        let base = BenchReport::parse(&v2_report(&[ROW_A])).unwrap();
        let cand = BenchReport::parse(&v2_report(&[&row_b])).unwrap();
        let d = diff(&base, &cand, &DiffOptions::default());
        assert!(d.passed());
        assert_eq!(d.missing, vec!["grp/a".to_string()]);
        assert_eq!(d.added, vec!["grp/b".to_string()]);
    }

    #[test]
    fn committed_reports_parse() {
        // Guard against the parser drifting from the writer: any BENCH
        // file at the repo root must parse.
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let mut seen = 0;
        for entry in std::fs::read_dir(root).unwrap().flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy().to_string();
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                let text = std::fs::read_to_string(entry.path()).unwrap();
                let r = BenchReport::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
                assert!(!r.rows.is_empty(), "{name} has no rows");
                seen += 1;
            }
        }
        assert!(seen >= 1, "no BENCH_*.json found at repo root");
    }
}
