//! The slow-query log: a bounded ring buffer of requests that exceeded a
//! latency threshold.
//!
//! Disabled by default (`threshold = None`); [`SlowLog::observe`] is then a
//! single relaxed atomic load per request. When a threshold is set, any
//! observed request at or above it is retained (evicting the oldest entry
//! once full) so an operator can ask *which* requests were slow, not just
//! that a percentile moved.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default number of retained slow-query entries.
pub const DEFAULT_SLOW_LOG_CAPACITY: usize = 128;

/// One retained slow request.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// The request's ID (see [`crate::next_request_id`]).
    pub request_id: u64,
    /// A short description of the request (e.g. the protocol line).
    pub detail: String,
    /// How long the request took, in seconds.
    pub duration_secs: f64,
    /// When the request finished, seconds since the log was created.
    pub at_secs: f64,
}

/// A bounded ring buffer of requests slower than a runtime threshold.
#[derive(Debug)]
pub struct SlowLog {
    /// Threshold in nanoseconds; 0 means disabled.
    threshold_ns: AtomicU64,
    entries: Mutex<VecDeque<SlowEntry>>,
    capacity: usize,
    epoch: Instant,
}

impl Default for SlowLog {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SLOW_LOG_CAPACITY)
    }
}

impl SlowLog {
    /// A disabled log with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// A disabled log retaining at most `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        SlowLog {
            threshold_ns: AtomicU64::new(0),
            entries: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            epoch: Instant::now(),
        }
    }

    /// Sets the threshold; `None` disables the log.
    pub fn set_threshold(&self, threshold: Option<Duration>) {
        let ns = threshold.map_or(0, |d| {
            u64::try_from(d.as_nanos()).unwrap_or(u64::MAX).max(1)
        });
        self.threshold_ns.store(ns, Ordering::Release);
    }

    /// The current threshold, if enabled.
    pub fn threshold(&self) -> Option<Duration> {
        match self.threshold_ns.load(Ordering::Acquire) {
            0 => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }

    /// Reports one finished request; retains it (and returns `true`) when
    /// the log is enabled and `duration` is at or above the threshold.
    pub fn observe(&self, request_id: u64, detail: &str, duration: Duration) -> bool {
        let threshold = self.threshold_ns.load(Ordering::Acquire);
        if threshold == 0 || (duration.as_nanos() as u64) < threshold {
            return false;
        }
        let entry = SlowEntry {
            request_id,
            detail: detail.to_string(),
            duration_secs: duration.as_secs_f64(),
            at_secs: self.epoch.elapsed().as_secs_f64(),
        };
        let mut entries = self.entries.lock().unwrap();
        if entries.len() >= self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
        true
    }

    /// All retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        self.entries.lock().unwrap().iter().cloned().collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_retains_nothing() {
        let log = SlowLog::new();
        assert!(!log.observe(1, "QUERY 0", Duration::from_secs(10)));
        assert!(log.is_empty());
        assert_eq!(log.threshold(), None);
    }

    #[test]
    fn threshold_filters_and_entries_describe_the_request() {
        let log = SlowLog::new();
        log.set_threshold(Some(Duration::from_millis(5)));
        assert!(!log.observe(1, "fast", Duration::from_millis(1)));
        assert!(log.observe(2, "slow", Duration::from_millis(9)));
        let entries = log.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].request_id, 2);
        assert_eq!(entries[0].detail, "slow");
        assert!(entries[0].duration_secs >= 9e-3);
    }

    #[test]
    fn log_is_bounded_and_keeps_newest() {
        let log = SlowLog::with_capacity(2);
        log.set_threshold(Some(Duration::from_nanos(1)));
        for i in 0..5 {
            log.observe(i, &format!("q{i}"), Duration::from_millis(1));
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].detail, "q3");
        assert_eq!(entries[1].detail, "q4");
    }

    #[test]
    fn eviction_is_strictly_oldest_first() {
        // The log is FIFO by *arrival*, not by duration: a very slow old
        // entry is still the first to go, and the survivors keep arrival
        // order. Operators read the log as a timeline.
        let log = SlowLog::with_capacity(3);
        log.set_threshold(Some(Duration::from_nanos(1)));
        // Arrival order 1..=6 with shuffled durations; duration must not
        // affect eviction.
        for (id, ms) in [(1, 900), (2, 5), (3, 700), (4, 1), (5, 800), (6, 2)] {
            log.observe(id, &format!("q{id}"), Duration::from_millis(ms));
        }
        let ids: Vec<u64> = log.entries().iter().map(|e| e.request_id).collect();
        assert_eq!(ids, vec![4, 5, 6], "evict 1,2,3 in arrival order");
        let ats: Vec<f64> = log.entries().iter().map(|e| e.at_secs).collect();
        assert!(
            ats.windows(2).all(|w| w[0] <= w[1]),
            "entries must stay in arrival order: {ats:?}"
        );
    }

    #[test]
    fn threshold_can_be_cleared() {
        let log = SlowLog::new();
        log.set_threshold(Some(Duration::from_millis(1)));
        assert!(log.threshold().is_some());
        log.set_threshold(None);
        assert!(!log.observe(1, "x", Duration::from_secs(1)));
    }
}
