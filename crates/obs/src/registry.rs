//! The metrics registry: named counters, gauges, and latency histograms.
//!
//! A [`Registry`] is a name → instrument map. Looking an instrument up
//! takes a mutex, so hot paths fetch their handle **once** (instruments
//! are `Arc`ed and free-standing) and then record through relaxed atomics.
//! The [`crate::global_counter!`] / [`crate::global_histogram!`] /
//! [`crate::global_gauge!`] macros cache a handle from the process-wide
//! [`Registry::global`] in a `static`, which is how the tensor and
//! training kernels instrument themselves with near-zero overhead.
//!
//! Components that need isolated metrics (e.g. each
//! `poe_core::service::QueryService` instance) own a `Registry` of their
//! own and merge its [`MetricsSnapshot`] with the global one at export
//! time.

use crate::histogram::{AtomicHistogram, LatencyHistogram};
use crate::json::{fmt_f64, json_escape};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing event counter.
///
/// Increments publish with `Release` and reads use `Acquire`, so a reader
/// that observes an increment also observes every counter update the
/// writer made before it. Cross-counter invariants (the query service's
/// `hits + misses ≤ served`) lean on this; on x86 the orderings cost
/// nothing over relaxed.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Release);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

/// A last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Default)]
struct Instruments {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<AtomicHistogram>>,
}

/// A named-instrument registry.
///
/// Instrument names are dotted paths by convention
/// (`service.queries_served`, `tensor.matmul.calls`); snapshots emit them
/// in sorted order.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Instruments>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry, used by kernel- and training-level
    /// instrumentation that has no component instance to hang off.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Returns (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(inner.counters.entry(name.to_string()).or_default())
    }

    /// Returns (creating on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(inner.gauges.entry(name.to_string()).or_default())
    }

    /// Returns (creating on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<AtomicHistogram> {
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(inner.histograms.entry(name.to_string()).or_default())
    }

    /// Takes a point-in-time copy of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a registry's instruments, ready for export.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, LatencyHistogram>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`. Same-named counters add, gauges and
    /// histograms from `other` win (name collisions across registries are
    /// a configuration error; namespaced names avoid them).
    pub fn merge(&mut self, other: MetricsSnapshot) {
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        self.gauges.extend(other.gauges);
        self.histograms.extend(other.histograms);
    }

    /// Renders the snapshot as a single-line JSON object with `counters`,
    /// `gauges`, and `histograms` members. Latency histograms are emitted
    /// as `{"count":n,"p50_ms":x,"p95_ms":x,"p99_ms":x}` with `null`
    /// percentiles when empty (never a false zero). Histograms named with
    /// a `.size` suffix hold count-valued measurements (batch sizes, queue
    /// depths) and emit raw-count percentiles instead:
    /// `{"count":n,"p50":x,"p95":x,"p99":x}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_entries(&mut out, &self.counters, |v| v.to_string());
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, &self.gauges, |v| fmt_f64(*v));
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            out.push_str(&json_escape(k));
            out.push_str("\":");
            if k.ends_with(".size") {
                out.push_str(&size_histogram_json(h));
            } else {
                out.push_str(&histogram_json(h));
            }
        }
        out.push_str("}}");
        out
    }
}

fn histogram_json(h: &LatencyHistogram) -> String {
    let q = |p: f64| match h.quantile(p) {
        Some(secs) => fmt_f64(secs * 1e3),
        None => "null".to_string(),
    };
    format!(
        "{{\"count\":{},\"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{}}}",
        h.count(),
        q(0.50),
        q(0.95),
        q(0.99)
    )
}

fn size_histogram_json(h: &LatencyHistogram) -> String {
    let q = |p: f64| match h.quantile_n(p) {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
        h.count(),
        q(0.50),
        q(0.95),
        q(0.99)
    )
}

fn push_entries<V>(out: &mut String, map: &BTreeMap<String, V>, f: impl Fn(&V) -> String) {
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(&json_escape(k));
        out.push_str("\":");
        out.push_str(&f(v));
    }
}

/// Caches a [`Counter`] handle from the global registry in a hidden
/// `static`, so hot paths pay one `OnceLock` load plus a relaxed atomic
/// per event.
#[macro_export]
macro_rules! global_counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(CELL.get_or_init(|| $crate::Registry::global().counter($name)))
    }};
}

/// Caches a [`Gauge`] handle from the global registry (see
/// [`global_counter!`]).
#[macro_export]
macro_rules! global_gauge {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(CELL.get_or_init(|| $crate::Registry::global().gauge($name)))
    }};
}

/// Caches an [`AtomicHistogram`](crate::AtomicHistogram) handle from the
/// global registry (see [`global_counter!`]).
#[macro_export]
macro_rules! global_histogram {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::AtomicHistogram>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(CELL.get_or_init(|| $crate::Registry::global().histogram($name)))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_are_shared_by_name() {
        let r = Registry::new();
        r.counter("a.b").add(3);
        r.counter("a.b").inc();
        assert_eq!(r.counter("a.b").get(), 4);
        r.gauge("g").set(2.5);
        assert_eq!(r.gauge("g").get(), 2.5);
        r.histogram("h").record(1e-6);
        assert_eq!(r.histogram("h").snapshot().count(), 1);
    }

    #[test]
    fn snapshot_is_a_stable_copy() {
        let r = Registry::new();
        r.counter("c").add(7);
        let snap = r.snapshot();
        r.counter("c").add(100);
        assert_eq!(snap.counters["c"], 7);
    }

    #[test]
    fn merge_adds_counters_and_unions_histograms() {
        let a = Registry::new();
        a.counter("shared").add(1);
        a.counter("only_a").add(2);
        let b = Registry::new();
        b.counter("shared").add(10);
        b.histogram("h").record(1e-3);
        let mut snap = a.snapshot();
        snap.merge(b.snapshot());
        assert_eq!(snap.counters["shared"], 11);
        assert_eq!(snap.counters["only_a"], 2);
        assert_eq!(snap.histograms["h"].count(), 1);
    }

    #[test]
    fn json_shape_and_empty_histogram_nulls() {
        let r = Registry::new();
        r.counter("service.queries_served").add(2);
        r.gauge("pool.threads").set(8.0);
        r.histogram("empty"); // registered, never recorded
        r.histogram("busy").record(2e-3);
        let json = r.snapshot().to_json();
        assert!(json.starts_with("{\"counters\":{"), "{json}");
        assert!(json.contains("\"service.queries_served\":2"), "{json}");
        assert!(json.contains("\"pool.threads\":8"), "{json}");
        assert!(
            json.contains(
                "\"empty\":{\"count\":0,\"p50_ms\":null,\"p95_ms\":null,\"p99_ms\":null}"
            ),
            "{json}"
        );
        assert!(json.contains("\"busy\":{\"count\":1,\"p50_ms\":"), "{json}");
        assert!(!json.contains('\n'), "snapshot JSON must be one line");
    }

    #[test]
    fn size_histograms_render_raw_counts() {
        let r = Registry::new();
        r.histogram("serve.batch.size").record_n(32);
        r.histogram("serve.batch.empty.size"); // registered, never recorded
        let json = r.snapshot().to_json();
        assert!(
            json.contains("\"serve.batch.size\":{\"count\":1,\"p50\":64,\"p95\":64,\"p99\":64}"),
            "{json}"
        );
        assert!(
            json.contains(
                "\"serve.batch.empty.size\":{\"count\":0,\"p50\":null,\"p95\":null,\"p99\":null}"
            ),
            "{json}"
        );
        assert!(!json.contains("p50_ms\":64"), "{json}");
    }

    #[test]
    fn global_macros_cache_handles() {
        global_counter!("obs.test.macro_counter").add(2);
        global_counter!("obs.test.macro_counter").inc();
        assert_eq!(
            Registry::global().counter("obs.test.macro_counter").get(),
            3
        );
        global_gauge!("obs.test.macro_gauge").set(1.5);
        assert_eq!(Registry::global().gauge("obs.test.macro_gauge").get(), 1.5);
        global_histogram!("obs.test.macro_hist").record(1e-6);
        assert!(
            Registry::global()
                .histogram("obs.test.macro_hist")
                .snapshot()
                .count()
                >= 1
        );
    }
}
