//! The flight recorder: an always-on black box for post-mortems.
//!
//! A [`FlightRecorder`] is a bounded ring buffer of structured
//! [`FlightEvent`]s — request starts/ends, batch flushes, cache activity,
//! sheds, worker panics, chaos injections, store transitions. Unlike
//! tracing (opt-in, span-shaped) the recorder is **on by default** and
//! records discrete *events*, so when a server crashes or degrades the
//! last few thousand things it did are reconstructable from a JSONL dump
//! without having had foresight to enable anything.
//!
//! Recording is lock-light: the event is built outside the lock, then a
//! single mutex push appends it; eviction happens under the same lock, so
//! `recorded == len + dropped` holds exactly at quiescence and events are
//! never torn (a snapshot sees whole events in `seq` order). A disabled
//! recorder costs one atomic load per call site.
//!
//! Most components share the process-wide [`FlightRecorder::global`]
//! ring — one process, one black box — which is what
//! [`crate::Observability::default`] hands out. Tests that assert exact
//! event counts construct a private recorder with
//! [`FlightRecorder::with_capacity`].
//!
//! Dumps are JSONL: a header object (schema, dump time, totals) followed
//! by one object per event, oldest first. [`FlightEvent::parse_jsonl`]
//! round-trips the event lines so `poe obs dump|tail` and tests can read
//! files back without a JSON dependency.

use crate::json::{fmt_f64, json_escape};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Default ring capacity (events retained). At serving rates of ~10k
/// requests/s with two events per request this holds the last ~200 ms of
/// history; size up with `--recorder-events` for longer post-mortems.
pub const DEFAULT_RECORDER_EVENTS: usize = 4096;

/// One structured flight-recorder event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// 1-based sequence number, monotone across the recorder's life (the
    /// ring may have evicted earlier sequence numbers).
    pub seq: u64,
    /// Seconds since the recorder was created.
    pub at_secs: f64,
    /// The request this event belongs to (0 = outside any request). IDs
    /// come from the process-wide [`crate::next_request_id`] atomic, so
    /// they never alias across worker threads and match trace events.
    pub request_id: u64,
    /// Event kind, dotted lowercase (`request.start`, `batch.flush`,
    /// `worker.panic`, `chaos.inject`, ...).
    pub kind: String,
    /// Free-form `key=value` detail (cause, sizes, verb, task set).
    pub detail: String,
}

impl FlightEvent {
    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"seq\":{},\"at_secs\":{},\"request_id\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
            self.seq,
            fmt_f64(self.at_secs),
            self.request_id,
            json_escape(&self.kind),
            json_escape(&self.detail),
        )
    }

    /// Parses a line produced by [`Self::to_jsonl`]. Returns `None` for
    /// blank lines, dump headers, or anything else that is not an event.
    pub fn parse_jsonl(line: &str) -> Option<FlightEvent> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        Some(FlightEvent {
            seq: field_u64(line, "seq")?,
            at_secs: field_f64(line, "at_secs")?,
            request_id: field_u64(line, "request_id")?,
            kind: field_str(line, "kind")?,
            detail: field_str(line, "detail")?,
        })
    }
}

fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    Some(&line[start..])
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let rest = field_raw(line, key)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_f64(line: &str, key: &str) -> Option<f64> {
    let rest = field_raw(line, key)?;
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let rest = field_raw(line, key)?.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                esc => out.push(esc),
            },
            c => out.push(c),
        }
    }
    None
}

/// An always-on bounded ring buffer of [`FlightEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: AtomicBool,
    /// Total events ever recorded (monotone; mutated under the ring lock
    /// so `recorded == len + dropped` holds exactly at quiescence).
    recorded: AtomicU64,
    /// Events evicted from the ring to make room (or trimmed by a
    /// capacity shrink).
    dropped: AtomicU64,
    capacity: AtomicUsize,
    events: Mutex<VecDeque<FlightEvent>>,
    epoch: Instant,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_RECORDER_EVENTS)
    }
}

impl FlightRecorder {
    /// An **enabled** recorder retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            enabled: AtomicBool::new(true),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            capacity: AtomicUsize::new(capacity.max(1)),
            events: Mutex::new(VecDeque::new()),
            epoch: Instant::now(),
        }
    }

    /// The process-wide recorder: one process, one black box. Chaos
    /// injections, store transitions, and every
    /// [`crate::Observability::default`] bundle record here.
    pub fn global() -> &'static Arc<FlightRecorder> {
        static GLOBAL: OnceLock<Arc<FlightRecorder>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(FlightRecorder::default()))
    }

    /// Turns recording on or off (on by default — the recorder exists for
    /// the crashes nobody predicted).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Resizes the ring; shrinking evicts oldest events (counted as
    /// dropped).
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        let mut events = self.events.lock().unwrap();
        self.capacity.store(capacity, Ordering::Relaxed);
        while events.len() > capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Records an event attributed to the current request context (see
    /// [`crate::current_request_id`]); request id 0 when outside one.
    pub fn record(&self, kind: &str, detail: impl Into<String>) {
        self.record_for(crate::current_request_id(), kind, detail);
    }

    /// Records an event with an explicit request id (for threads that run
    /// outside the originating request's context, e.g. a batch timer).
    pub fn record_for(&self, request_id: u64, kind: &str, detail: impl Into<String>) {
        if !self.is_enabled() {
            return;
        }
        let at_secs = self.epoch.elapsed().as_secs_f64();
        let detail = detail.into();
        let mut events = self.events.lock().unwrap();
        let seq = self.recorded.fetch_add(1, Ordering::Relaxed) + 1;
        if events.len() >= self.capacity.load(Ordering::Relaxed) {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(FlightEvent {
            seq,
            at_secs,
            request_id,
            kind: kind.to_string(),
            detail,
        });
    }

    /// The recorder's epoch as fractional Unix seconds: add an event's
    /// `at_secs` to this to place it on the wall clock (how OpenMetrics
    /// exemplar timestamps are derived from flight events).
    pub fn epoch_unix_secs(&self) -> f64 {
        let now_unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0.0, |d| d.as_secs_f64());
        now_unix - self.epoch.elapsed().as_secs_f64()
    }

    /// Total events ever recorded.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events evicted from the ring (`recorded - retained`). Surfaced by
    /// `HEALTH` so operators can see recorder backpressure without a dump.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.events.lock().unwrap().iter().cloned().collect()
    }

    /// Writes a JSONL dump: one header object, then one line per retained
    /// event, oldest first. Returns the number of event lines written.
    pub fn dump<W: Write>(&self, w: &mut W) -> io::Result<usize> {
        let events = self.snapshot();
        let unix_secs = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        writeln!(
            w,
            "{{\"recorder\":\"poe-flight\",\"version\":1,\"unix_secs\":{},\"uptime_secs\":{},\"recorded\":{},\"dropped\":{},\"capacity\":{}}}",
            unix_secs,
            fmt_f64(self.epoch.elapsed().as_secs_f64()),
            self.recorded(),
            self.dropped(),
            self.capacity(),
        )?;
        for ev in &events {
            writeln!(w, "{}", ev.to_jsonl())?;
        }
        Ok(events.len())
    }

    /// Dumps to a fresh timestamped file `poe-flight-<unix_secs>-<n>.jsonl`
    /// under `dir` (created if missing), returning the path. `<n>` is a
    /// process-wide dump counter so same-second dumps never collide.
    pub fn dump_to_dir(&self, dir: &Path) -> io::Result<PathBuf> {
        static DUMPS: AtomicU64 = AtomicU64::new(0);
        std::fs::create_dir_all(dir)?;
        let unix_secs = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        let n = DUMPS.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("poe-flight-{unix_secs}-{n}.jsonl"));
        let file = std::fs::File::create(&path)?;
        let mut w = io::BufWriter::new(file);
        self.dump(&mut w)?;
        w.flush()?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_jsonl() {
        let ev = FlightEvent {
            seq: 42,
            at_secs: 1.5,
            request_id: 7,
            kind: "batch.flush".into(),
            detail: "cause=full size=32 tasks=\"0,1\"".into(),
        };
        let line = ev.to_jsonl();
        assert_eq!(FlightEvent::parse_jsonl(&line).unwrap(), ev);
        assert!(FlightEvent::parse_jsonl("").is_none());
        assert!(FlightEvent::parse_jsonl("{\"recorder\":\"poe-flight\"}").is_none());
    }

    #[test]
    fn ring_is_bounded_and_drop_counter_is_exact() {
        let rec = FlightRecorder::with_capacity(3);
        for i in 0..10 {
            rec.record_for(i, "e", format!("i={i}"));
        }
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.dropped(), 7);
        assert_eq!(rec.len(), 3);
        let snap = rec.snapshot();
        assert_eq!(
            snap.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![8, 9, 10],
            "oldest evicted first, seq order preserved"
        );
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = FlightRecorder::with_capacity(8);
        rec.set_enabled(false);
        rec.record("e", "x");
        assert_eq!(rec.recorded(), 0);
        rec.set_enabled(true);
        rec.record("e", "x");
        assert_eq!(rec.recorded(), 1);
    }

    #[test]
    fn shrinking_capacity_trims_and_counts_drops() {
        let rec = FlightRecorder::with_capacity(8);
        for i in 0..6 {
            rec.record_for(i, "e", "");
        }
        rec.set_capacity(2);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 4);
        assert_eq!(rec.capacity(), 2);
    }

    #[test]
    fn record_picks_up_the_current_request_context() {
        let rec = FlightRecorder::with_capacity(8);
        let col = std::sync::Arc::new(crate::TraceCollector::new());
        crate::with_request(&col, 99, || rec.record("inside", ""));
        rec.record("outside", "");
        let snap = rec.snapshot();
        assert_eq!(snap[0].request_id, 99);
        assert_eq!(snap[1].request_id, 0);
    }

    #[test]
    fn dump_writes_header_and_parseable_events() {
        let rec = FlightRecorder::with_capacity(4);
        rec.record_for(1, "request.start", "verb=QUERY");
        rec.record_for(1, "request.end", "verb=QUERY ok=1");
        let mut buf = Vec::new();
        let n = rec.dump(&mut buf).unwrap();
        assert_eq!(n, 2);
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"recorder\":\"poe-flight\""), "{text}");
        assert!(lines[0].contains("\"dropped\":0"), "{text}");
        assert!(
            FlightEvent::parse_jsonl(lines[0]).is_none(),
            "header is not an event"
        );
        let evs: Vec<FlightEvent> = lines[1..]
            .iter()
            .filter_map(|l| FlightEvent::parse_jsonl(l))
            .collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, "request.start");
        assert_eq!(evs[1].request_id, 1);
    }

    #[test]
    fn dump_to_dir_creates_distinct_timestamped_files() {
        let dir = std::env::temp_dir().join("poe-recorder-test");
        let rec = FlightRecorder::with_capacity(4);
        rec.record("e", "");
        let a = rec.dump_to_dir(&dir).unwrap();
        let b = rec.dump_to_dir(&dir).unwrap();
        assert_ne!(a, b);
        let name = a.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            name.starts_with("poe-flight-") && name.ends_with(".jsonl"),
            "{name}"
        );
        let text = std::fs::read_to_string(&a).unwrap();
        assert!(text.lines().count() >= 2);
        std::fs::remove_file(a).ok();
        std::fs::remove_file(b).ok();
    }

    #[test]
    fn concurrent_writes_tear_nothing_and_count_exactly() {
        let rec = std::sync::Arc::new(FlightRecorder::with_capacity(64));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let rec = std::sync::Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    rec.record_for(t + 1, "spin", format!("t={t} i={i}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.recorded(), 800);
        assert_eq!(rec.dropped() as usize + rec.len(), 800);
        let snap = rec.snapshot();
        for pair in snap.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "ring must stay in seq order");
        }
        for ev in &snap {
            // A torn event would mismatch its own detail fields.
            assert!(
                ev.detail.starts_with(&format!("t={}", ev.request_id - 1)),
                "{ev:?}"
            );
        }
    }
}
