//! Latency histograms: a `Copy` snapshot type plus a lock-free concurrent
//! recorder.
//!
//! Both use the same fixed power-of-two nanosecond bucketing: bucket `b`
//! counts latencies in `[2^(b-1), 2^b)` nanoseconds (bucket 0 holds
//! sub-nanosecond measurements; the top bucket is open-ended). Percentile
//! queries resolve to the containing bucket's upper bound — at most a 2×
//! overestimate, which is plenty for latency monitoring while keeping
//! recording to a couple of integer instructions.
//!
//! The same buckets double as a *count-valued* histogram via
//! [`AtomicHistogram::record_n`] / [`LatencyHistogram::quantile_n`]: a
//! measurement of `n` (a batch size, a queue depth) lands in the bucket of
//! `n` nanoseconds, and quantiles come back as counts with the same ≤ 2×
//! resolution. By convention such instruments are named with a `.size`
//! suffix so exporters render them as raw counts, not milliseconds.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets (covers 1 ns … ~2.1 s; beyond is clamped
/// into the open-ended top bucket).
pub const NUM_BUCKETS: usize = 32;

#[inline]
fn bucket_of_n(n: u64) -> usize {
    (64 - n.leading_zeros() as usize).min(NUM_BUCKETS - 1)
}

#[inline]
fn bucket_of(secs: f64) -> usize {
    bucket_of_n((secs.max(0.0) * 1e9) as u64)
}

/// The bucket index a latency of `secs` lands in — the public form of the
/// internal bucketing, so exporters can attach per-bucket annotations
/// (OpenMetrics exemplars) to the same bucket a measurement was counted
/// in.
#[inline]
pub fn bucket_of_secs(secs: f64) -> usize {
    bucket_of(secs)
}

/// Upper bound (seconds) of bucket `bucket` — `2^bucket` nanoseconds.
/// Exporters use this to emit explicit bucket boundaries (the OpenMetrics
/// `le` label); for count-valued histograms the bound is the raw count
/// `2^bucket`.
#[inline]
pub fn bucket_upper_secs(bucket: usize) -> f64 {
    (1u64 << bucket) as f64 * 1e-9
}

/// Fixed-bucket latency histogram with power-of-two nanosecond buckets.
///
/// This is the *snapshot* form: `Copy`, cheap to pass around, mutated only
/// through `&mut self`. For concurrent recording use [`AtomicHistogram`]
/// and take [`AtomicHistogram::snapshot`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyHistogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    /// Sum of all measurements, in nanoseconds (raw units for
    /// count-valued histograms) — feeds the OpenMetrics `_sum` series.
    sum_ns: u64,
}

impl LatencyHistogram {
    /// Records one latency measurement.
    pub fn record(&mut self, secs: f64) {
        self.buckets[bucket_of(secs)] += 1;
        self.count += 1;
        self.sum_ns += (secs.max(0.0) * 1e9) as u64;
    }

    /// Records one count-valued measurement (batch size, queue depth).
    pub fn record_n(&mut self, n: u64) {
        self.buckets[bucket_of_n(n)] += 1;
        self.count += 1;
        self.sum_ns += n;
    }

    /// Number of recorded measurements.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all latency measurements, in seconds.
    pub fn sum_secs(&self) -> f64 {
        self.sum_ns as f64 * 1e-9
    }

    /// Sum of all count-valued measurements (see [`Self::record_n`]).
    pub fn sum_n(&self) -> u64 {
        self.sum_ns
    }

    /// Raw per-bucket counts; bucket `b`'s upper bound is
    /// [`bucket_upper_secs`]`(b)`.
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// The latency (seconds) at quantile `q` in `[0, 1]`, resolved to the
    /// containing bucket's upper bound.
    ///
    /// Returns `None` when the histogram is empty — an empty distribution
    /// has no percentiles, and reporting `0.0` would read as a false
    /// "zero latency" on a dashboard.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(bucket_upper_secs(b));
            }
        }
        Some(bucket_upper_secs(NUM_BUCKETS - 1))
    }

    /// The count at quantile `q` for a histogram fed through
    /// [`Self::record_n`], resolved to the containing bucket's upper bound
    /// (a power of two; ≤ 2× overestimate). `None` when empty.
    pub fn quantile_n(&self, q: f64) -> Option<u64> {
        self.quantile(q).map(|secs| (secs * 1e9).round() as u64)
    }

    /// Builds a snapshot directly from raw bucket counts and a sum.
    pub(crate) fn from_buckets(buckets: [u64; NUM_BUCKETS], sum_ns: u64) -> Self {
        let count = buckets.iter().sum();
        LatencyHistogram {
            buckets,
            count,
            sum_ns,
        }
    }
}

/// A concurrently recordable histogram: one relaxed atomic increment per
/// measurement, no locks.
///
/// [`AtomicHistogram::snapshot`] derives the total count by summing the
/// buckets, so a snapshot is always internally consistent (its count equals
/// the sum of its buckets), and because every bucket is monotone,
/// successive snapshots observe monotonically non-decreasing counts.
#[derive(Debug, Default)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum_ns: AtomicU64,
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency measurement (relaxed; safe from any thread).
    pub fn record(&self, secs: f64) {
        self.buckets[bucket_of(secs)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns
            .fetch_add((secs.max(0.0) * 1e9) as u64, Ordering::Relaxed);
    }

    /// Records one count-valued measurement (relaxed; safe from any
    /// thread). See [`LatencyHistogram::quantile_n`] for reading it back.
    pub fn record_n(&self, n: u64) {
        self.buckets[bucket_of_n(n)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a consistent point-in-time copy.
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        LatencyHistogram::from_buckets(buckets, self.sum_ns.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(0.99), None);
        let a = AtomicHistogram::new();
        assert_eq!(a.snapshot().quantile(0.99), None);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = LatencyHistogram::default();
        for i in 1..=100u64 {
            h.record(i as f64 * 1e-6);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 > 0.0);
        assert!(p50 <= p95 && p95 <= p99);
        // Upper-bound resolution: p99 of ~100 µs samples is ≤ the 256 µs bucket.
        assert!(p99 <= 3e-4, "p99 {p99}");
    }

    #[test]
    fn atomic_snapshot_matches_serial_recording() {
        let a = AtomicHistogram::new();
        let mut h = LatencyHistogram::default();
        for i in 0..50u64 {
            let secs = (i + 1) as f64 * 3e-7;
            a.record(secs);
            h.record(secs);
        }
        let snap = a.snapshot();
        assert_eq!(snap.count(), h.count());
        assert_eq!(snap.quantile(0.5), h.quantile(0.5));
        assert_eq!(snap.quantile(0.99), h.quantile(0.99));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let a = std::sync::Arc::new(AtomicHistogram::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let a = std::sync::Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    a.record((t * 1000 + i) as f64 * 1e-9);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.snapshot().count(), 4000);
    }

    #[test]
    fn count_valued_quantiles_round_trip_powers_of_two() {
        let a = AtomicHistogram::new();
        for _ in 0..10 {
            a.record_n(32);
        }
        let snap = a.snapshot();
        assert_eq!(snap.count(), 10);
        // 32 sits in the (16, 32]… bucket family: upper bound 64, a ≤ 2×
        // overestimate, and exact powers of two read back as themselves
        // shifted one bucket up.
        let p50 = snap.quantile_n(0.5).unwrap();
        assert!((32..=64).contains(&p50), "p50 {p50}");
        assert!(p50.is_power_of_two());
        assert_eq!(LatencyHistogram::default().quantile_n(0.5), None);
    }

    #[test]
    fn record_n_and_record_share_buckets() {
        let mut by_secs = LatencyHistogram::default();
        let mut by_n = LatencyHistogram::default();
        for n in [0u64, 1, 7, 100, 4096] {
            by_secs.record(n as f64 * 1e-9);
            by_n.record_n(n);
        }
        assert_eq!(by_secs.quantile(0.5), by_n.quantile(0.5));
        assert_eq!(by_secs.quantile(0.99), by_n.quantile(0.99));
    }

    #[test]
    fn extreme_values_stay_in_range() {
        let mut h = LatencyHistogram::default();
        h.record(-1.0); // clamped to 0
        h.record(0.0);
        h.record(1e6); // clamped into the top bucket
        assert_eq!(h.count(), 3);
        assert!(h.quantile(1.0).unwrap() >= 1.0);
    }
}
