//! Minimal dependency-free argument parsing for the `poe` binary.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// First positional token (the subcommand).
    pub command: String,
    /// `--key value` pairs, last occurrence wins.
    options: BTreeMap<String, String>,
}

/// Errors from argument parsing or option lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` without a following value.
    MissingValue(String),
    /// A token that is neither the subcommand nor a `--flag value` pair.
    Unexpected(String),
    /// A required option is absent.
    MissingOption(String),
    /// An option failed to parse to the requested type.
    BadValue {
        /// The option name.
        option: String,
        /// The raw value supplied.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no subcommand given (try `poe help`)"),
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::Unexpected(t) => write!(f, "unexpected argument `{t}`"),
            ArgError::MissingOption(k) => write!(f, "required option --{k} is missing"),
            ArgError::BadValue {
                option,
                value,
                expected,
            } => {
                write!(f, "--{option} `{value}` is not a valid {expected}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `tokens` (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut it = tokens.into_iter();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with("--") {
            return Err(ArgError::Unexpected(command));
        }
        let mut options = BTreeMap::new();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(key.into()))?;
                options.insert(key.to_string(), value);
            } else {
                return Err(ArgError::Unexpected(tok));
            }
        }
        Ok(Args { command, options })
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.options
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| ArgError::MissingOption(key.into()))
    }

    /// Optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// Optional option parsed to `T`, with a default.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                option: key.into(),
                value: v.clone(),
                expected,
            }),
        }
    }

    /// Comma-separated list of `usize` (e.g. `--tasks 1,3,5`).
    pub fn get_usize_list(&self, key: &str) -> Result<Vec<usize>, ArgError> {
        let raw = self.require(key)?;
        raw.split(',')
            .map(|p| {
                p.trim().parse().map_err(|_| ArgError::BadValue {
                    option: key.into(),
                    value: raw.into(),
                    expected: "comma-separated list of task indices",
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<Args, ArgError> {
        Args::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse(&["query", "--pool", "/tmp/p", "--tasks", "1,2"]).unwrap();
        assert_eq!(a.command, "query");
        assert_eq!(a.require("pool").unwrap(), "/tmp/p");
        assert_eq!(a.get_usize_list("tasks").unwrap(), vec![1, 2]);
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(parse(&[]).unwrap_err(), ArgError::MissingCommand);
        assert_eq!(
            parse(&["q", "--pool"]).unwrap_err(),
            ArgError::MissingValue("pool".into())
        );
        assert_eq!(
            parse(&["q", "stray"]).unwrap_err(),
            ArgError::Unexpected("stray".into())
        );
        let a = parse(&["q"]).unwrap();
        assert_eq!(
            a.require("pool").unwrap_err(),
            ArgError::MissingOption("pool".into())
        );
    }

    #[test]
    fn parsed_options_with_defaults() {
        let a = parse(&["p", "--seed", "42"]).unwrap();
        assert_eq!(a.get_parsed("seed", 0u64, "u64").unwrap(), 42);
        assert_eq!(a.get_parsed("epochs", 25usize, "usize").unwrap(), 25);
        let bad = parse(&["p", "--seed", "xx"]).unwrap();
        assert!(matches!(
            bad.get_parsed("seed", 0u64, "u64"),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn last_occurrence_wins() {
        let a = parse(&["p", "--seed", "1", "--seed", "2"]).unwrap();
        assert_eq!(a.get("seed"), Some("2"));
    }

    #[test]
    fn bad_task_list_is_rejected() {
        let a = parse(&["q", "--tasks", "1,x,3"]).unwrap();
        assert!(a.get_usize_list("tasks").is_err());
    }

    #[test]
    fn leading_flag_is_not_a_command() {
        assert!(matches!(
            parse(&["--pool", "x"]).unwrap_err(),
            ArgError::Unexpected(_)
        ));
    }
}
