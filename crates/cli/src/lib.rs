//! Library surface of the `poe` command-line front end.
//!
//! The binary (`src/main.rs`) is a thin argument-parsing shell over this
//! crate. Exposing the serving substrate as a library lets integration
//! suites (notably the workspace-level chaos tests in `tests/chaos.rs`)
//! drive a real [`serve::Server`] — bounded accept queue, load shedding,
//! `HEALTH`/`SHUTDOWN` lifecycle — in-process, with fault injection from
//! `poe-chaos` installed around it.

#![forbid(unsafe_code)]

pub mod args;
pub mod obs;
pub mod route;
pub mod serve;
pub mod wire;
