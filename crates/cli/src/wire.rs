//! The typed wire protocol: requests in, errors out.
//!
//! Both directions of the line protocol live here as types. Inbound,
//! every request line parses to exactly one [`Request`] variant through
//! the single [`parse_request`] entry point — `poe serve` and `poe route`
//! share it, so the two tiers cannot drift on grammar. Outbound, every
//! `ERR` line the server can emit is a [`WireError`] variant; the single
//! [`std::fmt::Display`] impl below is the one place the reason strings
//! are rendered, and each rendered form corresponds to exactly one row of
//! the error tables in `docs/PROTOCOL.md`.
//!
//! Tests pin both correspondences against the doc, in both directions:
//! `every_variant_matches_a_protocol_row` for errors, and
//! `request_verbs_match_the_protocol_grammar` /
//! `every_documented_verb_parses` for the request grammar — adding a
//! variant without documenting it (or editing a string or the grammar
//! without updating the doc) fails the build's test gate.

use poe_core::pool::QueryError;
use std::fmt;

/// Hard cap on the number of task ids in one `QUERY`/`PREDICT`/`LOGITS`
/// (the "≤ 4096, no duplicates" rule of the request grammar).
pub const MAX_QUERY_TASKS: usize = 4096;

/// One protocol-level failure, rendered on the wire as `ERR <reason>`.
///
/// The first group of variants answers and keeps the connection open; the
/// variants for which [`WireError::closes_connection`] returns `true` are
/// the fault-tolerance rejections that answer one line and close.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Blank request line.
    EmptyRequest,
    /// First word of the line is not a known verb.
    UnknownVerb(String),
    /// `QUERY`/`PREDICT` with an empty task list.
    NoTasks,
    /// Task token that is not a non-negative integer.
    BadTaskId(String),
    /// The same task index appears twice in the request's task list.
    DuplicateTask(usize),
    /// Task list longer than the protocol cap.
    TooManyTasks {
        /// The cap ([`MAX_QUERY_TASKS`]).
        max: usize,
    },
    /// Consolidation refused the task set (service layer).
    Query(QueryError),
    /// `PREDICT` without the `:` separator.
    PredictSyntax,
    /// `LOGITS` without the `:` separator.
    LogitsSyntax,
    /// Feature token that is not a finite float.
    BadFeature(String),
    /// Feature count ≠ the pool's input dimension.
    FeatureCount {
        /// The pool's input dimension.
        expected: usize,
        /// Features actually supplied.
        got: usize,
    },
    /// `SWAP` without a task id argument.
    SwapSyntax,
    /// `TRACE` with an argument other than `on`/`off`.
    TraceSyntax,
    /// `METRICS` with a format argument other than `json`/`openmetrics`.
    MetricsSyntax,
    /// `DUMP` could not write the flight-recorder file.
    DumpFailed(String),
    /// `SHUTDOWN` sent to the library `respond` without a server.
    ShutdownNoServer,
    /// Data verb on a degraded server (pool failed to load).
    NotReady(String),
    /// Accept queue full: shed before any request was read.
    Busy {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// Request line exceeded the line cap.
    LineTooLong {
        /// The cap in bytes.
        max_bytes: usize,
    },
    /// No complete request line within the idle deadline.
    IdleTimeout,
    /// Per-connection request cap hit.
    ConnRequestLimit,
    /// Request arrived while the server is draining.
    ShuttingDown {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The micro-batch this request was parked in was lost to an internal
    /// failure; the request was *not* answered and may be retried.
    BatchAborted,
    /// Router only: a required shard (or, for `PREDICT`, every shard)
    /// failed past the retry budget. Non-closing — the client may retry
    /// on the same connection once the shard recovers.
    ShardUnavailable {
        /// Shard index in the router's map.
        shard: usize,
        /// Last failure observed against that shard's replicas.
        detail: String,
    },
    /// Router only: a requested task id falls outside every shard range.
    NoShardForTask(usize),
}

impl WireError {
    /// The full response line: `ERR <reason>`.
    pub fn line(&self) -> String {
        format!("ERR {self}")
    }

    /// Whether the server closes the connection after sending this error
    /// (the fault-tolerance rejection family in `docs/PROTOCOL.md`).
    pub fn closes_connection(&self) -> bool {
        matches!(
            self,
            WireError::Busy { .. }
                | WireError::LineTooLong { .. }
                | WireError::IdleTimeout
                | WireError::ConnRequestLimit
                | WireError::ShuttingDown { .. }
                | WireError::BatchAborted
        )
    }
}

impl From<QueryError> for WireError {
    fn from(e: QueryError) -> Self {
        WireError::Query(e)
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::EmptyRequest => write!(f, "empty request"),
            WireError::UnknownVerb(v) => write!(f, "unknown verb `{v}`"),
            WireError::NoTasks => write!(f, "no tasks given"),
            WireError::BadTaskId(tok) => write!(f, "bad task id `{tok}`"),
            WireError::DuplicateTask(t) => write!(f, "duplicate task {t}"),
            WireError::TooManyTasks { max } => write!(f, "too many tasks (max {max})"),
            WireError::Query(e) => write!(f, "{e}"),
            WireError::PredictSyntax => write!(f, "PREDICT needs `tasks : features`"),
            WireError::LogitsSyntax => write!(f, "LOGITS needs `tasks : features`"),
            WireError::BadFeature(tok) => write!(f, "bad feature value `{tok}`"),
            WireError::FeatureCount { expected, got } => {
                write!(f, "expected {expected} features, got {got}")
            }
            WireError::SwapSyntax => write!(f, "SWAP needs a task id"),
            WireError::TraceSyntax => write!(f, "TRACE needs `on` or `off`"),
            WireError::MetricsSyntax => write!(f, "METRICS accepts `json` or `openmetrics`"),
            WireError::DumpFailed(detail) => write!(f, "dump failed: {detail}"),
            WireError::ShutdownNoServer => write!(f, "SHUTDOWN requires a running server"),
            WireError::NotReady(detail) => write!(f, "not ready: {detail}"),
            WireError::Busy { retry_after_ms } => {
                write!(f, "busy retry_after_ms={retry_after_ms}")
            }
            WireError::LineTooLong { max_bytes } => {
                write!(f, "line too long (max {max_bytes} bytes)")
            }
            WireError::IdleTimeout => write!(f, "idle timeout"),
            WireError::ConnRequestLimit => write!(f, "connection request limit reached"),
            WireError::ShuttingDown { retry_after_ms } => {
                write!(f, "shutting down retry_after_ms={retry_after_ms}")
            }
            WireError::BatchAborted => write!(f, "batch aborted"),
            WireError::ShardUnavailable { shard, detail } => {
                write!(f, "shard {shard} unavailable: {detail}")
            }
            WireError::NoShardForTask(t) => write!(f, "no shard for task {t}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Output format of the `METRICS` verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// One JSON object on one line (the default; bare `METRICS`).
    Json,
    /// OpenMetrics/Prometheus text exposition — the protocol's only
    /// multi-line response, behind an `OK openmetrics lines=<n>` frame.
    OpenMetrics,
}

/// One parsed request line — the typed form of the grammar in
/// `docs/PROTOCOL.md` § Request grammar.
///
/// [`parse_request`] is the only constructor that matters: both `poe
/// serve` and `poe route` parse through it, so a verb's argument grammar
/// is defined exactly once. Task lists are validated at parse time
/// (`MAX_QUERY_TASKS` cap, duplicate rejection); feature vectors stay a
/// raw string — the router forwards them verbatim (it has no input
/// dimension), and a shard validates them against its pool via
/// [`parse_features`].
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `INFO` — pool shape.
    Info,
    /// `QUERY t1,t2,…` — realtime model consolidation.
    Query {
        /// Primitive-task indices, request order, validated.
        tasks: Vec<usize>,
    },
    /// `PREDICT t1,t2,… : f1 f2 …` — consolidate and classify one row.
    Predict {
        /// Primitive-task indices, request order, validated.
        tasks: Vec<usize>,
        /// The raw feature text after the `:` separator (trimmed).
        features: String,
    },
    /// `LOGITS t1,t2,… : f1 f2 …` — `PREDICT`'s raw sibling.
    Logits {
        /// Primitive-task indices, request order, validated.
        tasks: Vec<usize>,
        /// The raw feature text after the `:` separator (trimmed).
        features: String,
    },
    /// `SWAP t` — hot-swap one expert from the segment store.
    Swap {
        /// The primitive-task index to reload.
        task: usize,
    },
    /// `STATS` — human-readable service counters.
    Stats,
    /// `METRICS [json|openmetrics]` — full observability snapshot.
    Metrics {
        /// Requested output format.
        format: MetricsFormat,
    },
    /// `TRACE on|off` — toggle span collection.
    Trace {
        /// `true` for `on`, `false` for `off`.
        enabled: bool,
    },
    /// `DUMP` — write the flight-recorder ring to disk.
    Dump,
    /// `HEALTH` — liveness/readiness probe.
    Health,
    /// `SHUTDOWN` — begin a graceful drain.
    Shutdown,
    /// `QUIT` — close this connection.
    Quit,
}

impl Request {
    /// Every verb of the protocol, exactly as written in the
    /// `docs/PROTOCOL.md` grammar. Pinned against the doc by
    /// `request_verbs_match_the_protocol_grammar`.
    pub const VERBS: [&'static str; 12] = [
        "INFO", "QUERY", "PREDICT", "LOGITS", "SWAP", "STATS", "METRICS", "TRACE", "HEALTH",
        "DUMP", "SHUTDOWN", "QUIT",
    ];

    /// The canonical (uppercase) verb of this request.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Info => "INFO",
            Request::Query { .. } => "QUERY",
            Request::Predict { .. } => "PREDICT",
            Request::Logits { .. } => "LOGITS",
            Request::Swap { .. } => "SWAP",
            Request::Stats => "STATS",
            Request::Metrics { .. } => "METRICS",
            Request::Trace { .. } => "TRACE",
            Request::Dump => "DUMP",
            Request::Health => "HEALTH",
            Request::Shutdown => "SHUTDOWN",
            Request::Quit => "QUIT",
        }
    }

    /// Whether this verb touches the pool — the set a degraded server
    /// (pool failed to load) refuses with `ERR not ready` while the
    /// observability/lifecycle verbs keep answering.
    pub fn is_data_verb(&self) -> bool {
        matches!(
            self,
            Request::Info
                | Request::Query { .. }
                | Request::Predict { .. }
                | Request::Logits { .. }
                | Request::Swap { .. }
        )
    }
}

/// Splits a request line into its verb token and (trimmed) argument
/// remainder. The line itself is trimmed first; a blank line yields an
/// empty verb. This is the one tokenization rule of the protocol:
/// everything after the first whitespace belongs to the verb's arguments.
pub fn split_verb(line: &str) -> (&str, &str) {
    let trimmed = line.trim();
    match trimmed.split_once(char::is_whitespace) {
        Some((verb, rest)) => (verb, rest.trim()),
        None => (trimmed, ""),
    }
}

/// The lowercase metrics slug for the line's verb (`"query"`,
/// `"predict"`, …), or `None` when the first token is not a known verb.
/// Used for per-verb request counters (`serve.requests.<slug>`), which
/// count attempts — a line that later fails argument parsing still counts
/// under its verb, so the counter names are derived from the raw token,
/// not from a successfully parsed [`Request`].
pub fn verb_slug(line: &str) -> Option<&'static str> {
    match split_verb(line).0.to_ascii_uppercase().as_str() {
        "INFO" => Some("info"),
        "QUERY" => Some("query"),
        "PREDICT" => Some("predict"),
        "LOGITS" => Some("logits"),
        "SWAP" => Some("swap"),
        "STATS" => Some("stats"),
        "METRICS" => Some("metrics"),
        "TRACE" => Some("trace"),
        "HEALTH" => Some("health"),
        "DUMP" => Some("dump"),
        "SHUTDOWN" => Some("shutdown"),
        "QUIT" => Some("quit"),
        _ => None,
    }
}

/// Parses one request line into its typed [`Request`] form.
///
/// Verbs match case-insensitively. Argument errors render exactly the
/// documented rows: task-list errors surface before feature errors
/// (`PREDICT 0,0 : x` is `ERR duplicate task 0`, not a feature error),
/// and a missing `:` separator is the verb's own syntax row. An unknown
/// verb echoes the client's token verbatim (original case).
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let (verb_raw, rest) = split_verb(line);
    if verb_raw.is_empty() {
        return Err(WireError::EmptyRequest);
    }
    match verb_raw.to_ascii_uppercase().as_str() {
        "INFO" => Ok(Request::Info),
        "QUERY" => Ok(Request::Query {
            tasks: parse_tasks(rest)?,
        }),
        "PREDICT" => {
            let (tasks, features) = split_task_features(rest, WireError::PredictSyntax)?;
            Ok(Request::Predict { tasks, features })
        }
        "LOGITS" => {
            let (tasks, features) = split_task_features(rest, WireError::LogitsSyntax)?;
            Ok(Request::Logits { tasks, features })
        }
        "SWAP" => {
            if rest.is_empty() {
                return Err(WireError::SwapSyntax);
            }
            match rest.parse::<usize>() {
                Ok(task) => Ok(Request::Swap { task }),
                Err(_) => Err(WireError::BadTaskId(rest.to_string())),
            }
        }
        "STATS" => Ok(Request::Stats),
        "METRICS" => match rest.to_ascii_lowercase().as_str() {
            "" | "json" => Ok(Request::Metrics {
                format: MetricsFormat::Json,
            }),
            "openmetrics" => Ok(Request::Metrics {
                format: MetricsFormat::OpenMetrics,
            }),
            _ => Err(WireError::MetricsSyntax),
        },
        "TRACE" => match rest.to_ascii_lowercase().as_str() {
            "on" => Ok(Request::Trace { enabled: true }),
            "off" => Ok(Request::Trace { enabled: false }),
            _ => Err(WireError::TraceSyntax),
        },
        "DUMP" => Ok(Request::Dump),
        "HEALTH" => Ok(Request::Health),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "QUIT" => Ok(Request::Quit),
        _ => Err(WireError::UnknownVerb(verb_raw.to_string())),
    }
}

/// Splits `tasks : features` for `PREDICT`/`LOGITS`: the task list is
/// validated here; the features stay a raw (trimmed) string so the router
/// can forward them without knowing the input dimension.
fn split_task_features(
    rest: &str,
    on_missing: WireError,
) -> Result<(Vec<usize>, String), WireError> {
    let Some((task_part, feat_part)) = rest.split_once(':') else {
        return Err(on_missing);
    };
    Ok((parse_tasks(task_part.trim())?, feat_part.trim().to_string()))
}

/// Parses a comma-separated task list: non-empty, every token a
/// non-negative integer, no duplicates, at most [`MAX_QUERY_TASKS`] ids
/// (the cap is checked before each parse so an over-long list of garbage
/// is still refused as too many tasks, not as a bad id past the cap).
pub fn parse_tasks(s: &str) -> Result<Vec<usize>, WireError> {
    if s.is_empty() {
        return Err(WireError::NoTasks);
    }
    let mut tasks: Vec<usize> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for p in s.split(',') {
        if tasks.len() == MAX_QUERY_TASKS {
            return Err(WireError::TooManyTasks {
                max: MAX_QUERY_TASKS,
            });
        }
        let id: usize = p
            .trim()
            .parse()
            .map_err(|_| WireError::BadTaskId(p.to_string()))?;
        if !seen.insert(id) {
            return Err(WireError::DuplicateTask(id));
        }
        tasks.push(id);
    }
    Ok(tasks)
}

/// Parses the feature text of a `PREDICT`/`LOGITS` against the pool's
/// input dimension: whitespace-separated finite floats, exactly
/// `input_dim` of them. The shard-side half of the feature grammar — the
/// router never calls this (it forwards the raw text).
pub fn parse_features(features: &str, input_dim: usize) -> Result<Vec<f32>, WireError> {
    let mut parsed = Vec::new();
    for tok in features.split_whitespace() {
        match tok.parse::<f32>() {
            Ok(v) if v.is_finite() => parsed.push(v),
            _ => return Err(WireError::BadFeature(tok.to_string())),
        }
    }
    if parsed.len() != input_dim {
        return Err(WireError::FeatureCount {
            expected: input_dim,
            got: parsed.len(),
        });
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `docs/PROTOCOL.md` with its markdown-escaped backticks unescaped,
    /// so rendered error lines can be matched against table rows verbatim.
    fn protocol_doc() -> String {
        include_str!("../../../docs/PROTOCOL.md").replace("\\`", "`")
    }

    /// One sample of every variant: (constructed error, expected wire
    /// line, the `docs/PROTOCOL.md` table row it instantiates).
    fn samples() -> Vec<(WireError, &'static str, &'static str)> {
        vec![
            (
                WireError::EmptyRequest,
                "ERR empty request",
                "`ERR empty request`",
            ),
            (
                WireError::UnknownVerb("X".into()),
                "ERR unknown verb `X`",
                "`ERR unknown verb `X``",
            ),
            (
                WireError::NoTasks,
                "ERR no tasks given",
                "`ERR no tasks given`",
            ),
            (
                WireError::BadTaskId("X".into()),
                "ERR bad task id `X`",
                "`ERR bad task id `X``",
            ),
            (
                WireError::DuplicateTask(3),
                "ERR duplicate task 3",
                "`ERR duplicate task N`",
            ),
            (
                WireError::TooManyTasks { max: 4096 },
                "ERR too many tasks (max 4096)",
                "`ERR too many tasks (max 4096)`",
            ),
            (
                WireError::Query(QueryError::EmptyQuery),
                "ERR composite task is empty",
                "`ERR composite task is empty`",
            ),
            (
                WireError::Query(QueryError::UnknownTask(9)),
                "ERR unknown primitive task 9",
                "`ERR unknown primitive task N`",
            ),
            (
                WireError::Query(QueryError::DuplicateTask(2)),
                "ERR primitive task 2 listed twice",
                "`ERR primitive task N listed twice`",
            ),
            (
                WireError::Query(QueryError::MissingExpert(5)),
                "ERR no expert pooled for task 5",
                "`ERR no expert pooled for task N`",
            ),
            (
                WireError::Query(QueryError::ExpertLoad {
                    task: 4,
                    detail: "<detail>".into(),
                }),
                "ERR expert 4 failed to load: <detail>",
                "`ERR expert N failed to load: <detail>`",
            ),
            (
                WireError::SwapSyntax,
                "ERR SWAP needs a task id",
                "`ERR SWAP needs a task id`",
            ),
            (
                WireError::PredictSyntax,
                "ERR PREDICT needs `tasks : features`",
                "`ERR PREDICT needs `tasks : features``",
            ),
            (
                WireError::LogitsSyntax,
                "ERR LOGITS needs `tasks : features`",
                "`ERR LOGITS needs `tasks : features``",
            ),
            (
                WireError::BadFeature("X".into()),
                "ERR bad feature value `X`",
                "`ERR bad feature value `X``",
            ),
            (
                WireError::FeatureCount {
                    expected: 4,
                    got: 2,
                },
                "ERR expected 4 features, got 2",
                "`ERR expected N features, got M`",
            ),
            (
                WireError::TraceSyntax,
                "ERR TRACE needs `on` or `off`",
                "`ERR TRACE needs `on` or `off``",
            ),
            (
                WireError::MetricsSyntax,
                "ERR METRICS accepts `json` or `openmetrics`",
                "`ERR METRICS accepts `json` or `openmetrics``",
            ),
            (
                WireError::DumpFailed("<detail>".into()),
                "ERR dump failed: <detail>",
                "`ERR dump failed: <detail>`",
            ),
            (
                WireError::ShutdownNoServer,
                "ERR SHUTDOWN requires a running server",
                "`ERR SHUTDOWN requires a running server`",
            ),
            (
                WireError::NotReady("<detail>".into()),
                "ERR not ready: <detail>",
                "`ERR not ready: <detail>`",
            ),
            (
                WireError::Busy {
                    retry_after_ms: 100,
                },
                "ERR busy retry_after_ms=100",
                "`ERR busy retry_after_ms=<n>`",
            ),
            (
                WireError::LineTooLong { max_bytes: 64 },
                "ERR line too long (max 64 bytes)",
                "`ERR line too long (max N bytes)`",
            ),
            (
                WireError::IdleTimeout,
                "ERR idle timeout",
                "`ERR idle timeout`",
            ),
            (
                WireError::ConnRequestLimit,
                "ERR connection request limit reached",
                "`ERR connection request limit reached`",
            ),
            (
                WireError::ShuttingDown {
                    retry_after_ms: 100,
                },
                "ERR shutting down retry_after_ms=100",
                "`ERR shutting down retry_after_ms=<n>`",
            ),
            (
                WireError::BatchAborted,
                "ERR batch aborted",
                "`ERR batch aborted`",
            ),
            (
                WireError::ShardUnavailable {
                    shard: 2,
                    detail: "<detail>".into(),
                },
                "ERR shard 2 unavailable: <detail>",
                "`ERR shard N unavailable: <detail>`",
            ),
            (
                WireError::NoShardForTask(7),
                "ERR no shard for task 7",
                "`ERR no shard for task N`",
            ),
        ]
    }

    /// Every variant renders its documented form, and every rendered form
    /// has a matching row in `docs/PROTOCOL.md` — the doc and the enum
    /// cannot drift apart silently.
    #[test]
    fn every_variant_matches_a_protocol_row() {
        let doc = protocol_doc();
        for (err, rendered, doc_row) in samples() {
            assert_eq!(err.line(), rendered, "{err:?}");
            assert!(
                doc.contains(doc_row),
                "docs/PROTOCOL.md is missing the row {doc_row} for {err:?}"
            );
        }
    }

    #[test]
    fn close_family_matches_the_doc_table() {
        // Exactly the fault-tolerance table closes connections.
        let closing: Vec<WireError> = samples()
            .into_iter()
            .map(|(e, _, _)| e)
            .filter(WireError::closes_connection)
            .collect();
        assert_eq!(closing.len(), 6, "{closing:?}");
        assert!(!WireError::EmptyRequest.closes_connection());
        assert!(!WireError::Query(QueryError::EmptyQuery).closes_connection());
    }

    /// The router-facing rows keep the connection open: a degraded
    /// answer must not cost the client its session, so both
    /// `ERR shard N unavailable` and the `OK partial` success row (which
    /// is documented next to it) leave the connection usable.
    #[test]
    fn router_rows_do_not_close_the_connection() {
        assert!(!WireError::ShardUnavailable {
            shard: 0,
            detail: "x".into()
        }
        .closes_connection());
        assert!(!WireError::NoShardForTask(0).closes_connection());
        assert!(!WireError::LogitsSyntax.closes_connection());
        // `OK partial` is a success row, not a WireError; pin that the
        // doc documents it alongside the shard-unavailable row.
        let doc = protocol_doc();
        assert!(
            doc.contains("OK partial shards="),
            "docs/PROTOCOL.md must document the `OK partial` response row"
        );
    }

    #[test]
    fn query_errors_convert_losslessly() {
        let w: WireError = QueryError::MissingExpert(7).into();
        assert_eq!(w, WireError::Query(QueryError::MissingExpert(7)));
        assert_eq!(w.line(), "ERR no expert pooled for task 7");
    }

    /// One minimal valid request line per [`Request`] variant shape.
    fn request_samples() -> Vec<(&'static str, Request)> {
        vec![
            ("INFO", Request::Info),
            ("QUERY 1,3", Request::Query { tasks: vec![1, 3] }),
            (
                "PREDICT 1,3 : 0.25 -1.0",
                Request::Predict {
                    tasks: vec![1, 3],
                    features: "0.25 -1.0".into(),
                },
            ),
            (
                "LOGITS 0 : 1 2",
                Request::Logits {
                    tasks: vec![0],
                    features: "1 2".into(),
                },
            ),
            ("SWAP 2", Request::Swap { task: 2 }),
            ("STATS", Request::Stats),
            (
                "METRICS",
                Request::Metrics {
                    format: MetricsFormat::Json,
                },
            ),
            (
                "METRICS openmetrics",
                Request::Metrics {
                    format: MetricsFormat::OpenMetrics,
                },
            ),
            ("TRACE on", Request::Trace { enabled: true }),
            ("TRACE off", Request::Trace { enabled: false }),
            ("DUMP", Request::Dump),
            ("HEALTH", Request::Health),
            ("SHUTDOWN", Request::Shutdown),
            ("QUIT", Request::Quit),
        ]
    }

    /// The verbs named in the `docs/PROTOCOL.md` request-grammar rule
    /// (`verb = "INFO" | …`): every `"UPPERCASE"` token quoted in the
    /// grammar section.
    fn documented_verbs() -> std::collections::BTreeSet<String> {
        let doc = protocol_doc();
        let grammar = doc
            .split("## Request grammar")
            .nth(1)
            .expect("a Request grammar section")
            .split("## Verbs")
            .next()
            .unwrap();
        let mut verbs = std::collections::BTreeSet::new();
        for chunk in grammar.split('"').skip(1).step_by(2) {
            if !chunk.is_empty() && chunk.chars().all(|c| c.is_ascii_uppercase()) {
                verbs.insert(chunk.to_string());
            }
        }
        verbs
    }

    /// Both directions of the verb↔doc pin: every [`Request`] verb is in
    /// the documented grammar (and has a `### \`VERB\`` section), and
    /// every verb the grammar documents is a [`Request`] verb — the enum
    /// and the doc cannot drift apart silently.
    #[test]
    fn request_verbs_match_the_protocol_grammar() {
        let documented = documented_verbs();
        let implemented: std::collections::BTreeSet<String> =
            Request::VERBS.iter().map(|v| v.to_string()).collect();
        assert_eq!(documented, implemented);
        let doc = protocol_doc();
        for verb in Request::VERBS {
            assert!(
                doc.contains(&format!("### `{verb}")),
                "docs/PROTOCOL.md is missing a verb section for {verb}"
            );
        }
    }

    /// Every documented verb parses (case-insensitively) to the variant
    /// that reports the same verb name back.
    #[test]
    fn every_documented_verb_parses() {
        for (line, want) in request_samples() {
            let got = parse_request(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(got, want, "{line}");
            assert!(Request::VERBS.contains(&got.verb()));
            // Case-insensitive: the lowercase form parses identically.
            assert_eq!(parse_request(&line.to_lowercase()), Ok(want), "{line}");
        }
        // All twelve verbs are covered by the samples above.
        let covered: std::collections::BTreeSet<&str> = request_samples()
            .iter()
            .map(|(line, _)| split_verb(line).0)
            .collect();
        assert_eq!(covered.len(), Request::VERBS.len());
    }

    /// Argument errors surface in the documented order and shape.
    #[test]
    fn parse_request_renders_the_documented_errors() {
        let err = |line: &str| parse_request(line).unwrap_err();
        assert_eq!(err(""), WireError::EmptyRequest);
        assert_eq!(err("   "), WireError::EmptyRequest);
        assert_eq!(err("FROB 1"), WireError::UnknownVerb("FROB".into()));
        // Unknown verbs echo the client's token verbatim, original case.
        assert_eq!(err("frob 1"), WireError::UnknownVerb("frob".into()));
        assert_eq!(err("QUERY"), WireError::NoTasks);
        assert_eq!(err("QUERY 0,x"), WireError::BadTaskId("x".into()));
        assert_eq!(err("QUERY 0,1,0"), WireError::DuplicateTask(0));
        assert_eq!(err("PREDICT 0 1.0"), WireError::PredictSyntax);
        assert_eq!(err("LOGITS 0 1.0"), WireError::LogitsSyntax);
        // Task errors surface before any feature handling.
        assert_eq!(err("PREDICT 0,0 : x"), WireError::DuplicateTask(0));
        assert_eq!(err("SWAP"), WireError::SwapSyntax);
        assert_eq!(err("SWAP x"), WireError::BadTaskId("x".into()));
        assert_eq!(err("TRACE maybe"), WireError::TraceSyntax);
        assert_eq!(err("METRICS prometheus"), WireError::MetricsSyntax);
    }

    #[test]
    fn features_are_validated_shard_side() {
        assert_eq!(parse_features("1 2 3", 3), Ok(vec![1.0, 2.0, 3.0]));
        assert_eq!(
            parse_features("1 nan 3", 3),
            Err(WireError::BadFeature("nan".into()))
        );
        assert_eq!(
            parse_features("1 2", 3),
            Err(WireError::FeatureCount {
                expected: 3,
                got: 2
            })
        );
        // Feature-token errors win over the count mismatch.
        assert_eq!(
            parse_features("x", 3),
            Err(WireError::BadFeature("x".into()))
        );
    }

    #[test]
    fn verb_slug_names_known_verbs_only() {
        assert_eq!(verb_slug("QUERY 1,2"), Some("query"));
        assert_eq!(verb_slug("query 1,2"), Some("query"));
        assert_eq!(verb_slug("  METRICS openmetrics"), Some("metrics"));
        assert_eq!(verb_slug("FROB"), None);
        assert_eq!(verb_slug(""), None);
        for verb in Request::VERBS {
            assert_eq!(verb_slug(verb).unwrap(), verb.to_ascii_lowercase());
        }
    }

    #[test]
    fn data_verbs_are_the_degraded_refusal_set() {
        let data: Vec<&str> = request_samples()
            .iter()
            .filter(|(_, r)| r.is_data_verb())
            .map(|(l, _)| split_verb(l).0)
            .collect();
        assert_eq!(data, ["INFO", "QUERY", "PREDICT", "LOGITS", "SWAP"]);
    }
}
