//! Typed wire-protocol errors for `poe serve`.
//!
//! Every `ERR` line the server can emit is a [`WireError`] variant; the
//! single [`std::fmt::Display`] impl below is the one place the reason
//! strings are rendered, and each rendered form corresponds to exactly one
//! row of the error tables in `docs/PROTOCOL.md`. The
//! `every_variant_matches_a_protocol_row` test pins that correspondence:
//! adding a variant without documenting it (or editing a string without
//! updating the doc) fails the build's test gate.

use poe_core::pool::QueryError;
use std::fmt;

/// One protocol-level failure, rendered on the wire as `ERR <reason>`.
///
/// The first group of variants answers and keeps the connection open; the
/// variants for which [`WireError::closes_connection`] returns `true` are
/// the fault-tolerance rejections that answer one line and close.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Blank request line.
    EmptyRequest,
    /// First word of the line is not a known verb.
    UnknownVerb(String),
    /// `QUERY`/`PREDICT` with an empty task list.
    NoTasks,
    /// Task token that is not a non-negative integer.
    BadTaskId(String),
    /// The same task index appears twice in the request's task list.
    DuplicateTask(usize),
    /// Task list longer than the protocol cap.
    TooManyTasks {
        /// The cap ([`crate::serve::MAX_QUERY_TASKS`]).
        max: usize,
    },
    /// Consolidation refused the task set (service layer).
    Query(QueryError),
    /// `PREDICT` without the `:` separator.
    PredictSyntax,
    /// `LOGITS` without the `:` separator.
    LogitsSyntax,
    /// Feature token that is not a finite float.
    BadFeature(String),
    /// Feature count ≠ the pool's input dimension.
    FeatureCount {
        /// The pool's input dimension.
        expected: usize,
        /// Features actually supplied.
        got: usize,
    },
    /// `SWAP` without a task id argument.
    SwapSyntax,
    /// `TRACE` with an argument other than `on`/`off`.
    TraceSyntax,
    /// `METRICS` with a format argument other than `json`/`openmetrics`.
    MetricsSyntax,
    /// `DUMP` could not write the flight-recorder file.
    DumpFailed(String),
    /// `SHUTDOWN` sent to the library `respond` without a server.
    ShutdownNoServer,
    /// Data verb on a degraded server (pool failed to load).
    NotReady(String),
    /// Accept queue full: shed before any request was read.
    Busy {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// Request line exceeded the line cap.
    LineTooLong {
        /// The cap in bytes.
        max_bytes: usize,
    },
    /// No complete request line within the idle deadline.
    IdleTimeout,
    /// Per-connection request cap hit.
    ConnRequestLimit,
    /// Request arrived while the server is draining.
    ShuttingDown {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The micro-batch this request was parked in was lost to an internal
    /// failure; the request was *not* answered and may be retried.
    BatchAborted,
    /// Router only: a required shard (or, for `PREDICT`, every shard)
    /// failed past the retry budget. Non-closing — the client may retry
    /// on the same connection once the shard recovers.
    ShardUnavailable {
        /// Shard index in the router's map.
        shard: usize,
        /// Last failure observed against that shard's replicas.
        detail: String,
    },
    /// Router only: a requested task id falls outside every shard range.
    NoShardForTask(usize),
}

impl WireError {
    /// The full response line: `ERR <reason>`.
    pub fn line(&self) -> String {
        format!("ERR {self}")
    }

    /// Whether the server closes the connection after sending this error
    /// (the fault-tolerance rejection family in `docs/PROTOCOL.md`).
    pub fn closes_connection(&self) -> bool {
        matches!(
            self,
            WireError::Busy { .. }
                | WireError::LineTooLong { .. }
                | WireError::IdleTimeout
                | WireError::ConnRequestLimit
                | WireError::ShuttingDown { .. }
                | WireError::BatchAborted
        )
    }
}

impl From<QueryError> for WireError {
    fn from(e: QueryError) -> Self {
        WireError::Query(e)
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::EmptyRequest => write!(f, "empty request"),
            WireError::UnknownVerb(v) => write!(f, "unknown verb `{v}`"),
            WireError::NoTasks => write!(f, "no tasks given"),
            WireError::BadTaskId(tok) => write!(f, "bad task id `{tok}`"),
            WireError::DuplicateTask(t) => write!(f, "duplicate task {t}"),
            WireError::TooManyTasks { max } => write!(f, "too many tasks (max {max})"),
            WireError::Query(e) => write!(f, "{e}"),
            WireError::PredictSyntax => write!(f, "PREDICT needs `tasks : features`"),
            WireError::LogitsSyntax => write!(f, "LOGITS needs `tasks : features`"),
            WireError::BadFeature(tok) => write!(f, "bad feature value `{tok}`"),
            WireError::FeatureCount { expected, got } => {
                write!(f, "expected {expected} features, got {got}")
            }
            WireError::SwapSyntax => write!(f, "SWAP needs a task id"),
            WireError::TraceSyntax => write!(f, "TRACE needs `on` or `off`"),
            WireError::MetricsSyntax => write!(f, "METRICS accepts `json` or `openmetrics`"),
            WireError::DumpFailed(detail) => write!(f, "dump failed: {detail}"),
            WireError::ShutdownNoServer => write!(f, "SHUTDOWN requires a running server"),
            WireError::NotReady(detail) => write!(f, "not ready: {detail}"),
            WireError::Busy { retry_after_ms } => {
                write!(f, "busy retry_after_ms={retry_after_ms}")
            }
            WireError::LineTooLong { max_bytes } => {
                write!(f, "line too long (max {max_bytes} bytes)")
            }
            WireError::IdleTimeout => write!(f, "idle timeout"),
            WireError::ConnRequestLimit => write!(f, "connection request limit reached"),
            WireError::ShuttingDown { retry_after_ms } => {
                write!(f, "shutting down retry_after_ms={retry_after_ms}")
            }
            WireError::BatchAborted => write!(f, "batch aborted"),
            WireError::ShardUnavailable { shard, detail } => {
                write!(f, "shard {shard} unavailable: {detail}")
            }
            WireError::NoShardForTask(t) => write!(f, "no shard for task {t}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// `docs/PROTOCOL.md` with its markdown-escaped backticks unescaped,
    /// so rendered error lines can be matched against table rows verbatim.
    fn protocol_doc() -> String {
        include_str!("../../../docs/PROTOCOL.md").replace("\\`", "`")
    }

    /// One sample of every variant: (constructed error, expected wire
    /// line, the `docs/PROTOCOL.md` table row it instantiates).
    fn samples() -> Vec<(WireError, &'static str, &'static str)> {
        vec![
            (
                WireError::EmptyRequest,
                "ERR empty request",
                "`ERR empty request`",
            ),
            (
                WireError::UnknownVerb("X".into()),
                "ERR unknown verb `X`",
                "`ERR unknown verb `X``",
            ),
            (
                WireError::NoTasks,
                "ERR no tasks given",
                "`ERR no tasks given`",
            ),
            (
                WireError::BadTaskId("X".into()),
                "ERR bad task id `X`",
                "`ERR bad task id `X``",
            ),
            (
                WireError::DuplicateTask(3),
                "ERR duplicate task 3",
                "`ERR duplicate task N`",
            ),
            (
                WireError::TooManyTasks { max: 4096 },
                "ERR too many tasks (max 4096)",
                "`ERR too many tasks (max 4096)`",
            ),
            (
                WireError::Query(QueryError::EmptyQuery),
                "ERR composite task is empty",
                "`ERR composite task is empty`",
            ),
            (
                WireError::Query(QueryError::UnknownTask(9)),
                "ERR unknown primitive task 9",
                "`ERR unknown primitive task N`",
            ),
            (
                WireError::Query(QueryError::DuplicateTask(2)),
                "ERR primitive task 2 listed twice",
                "`ERR primitive task N listed twice`",
            ),
            (
                WireError::Query(QueryError::MissingExpert(5)),
                "ERR no expert pooled for task 5",
                "`ERR no expert pooled for task N`",
            ),
            (
                WireError::Query(QueryError::ExpertLoad {
                    task: 4,
                    detail: "<detail>".into(),
                }),
                "ERR expert 4 failed to load: <detail>",
                "`ERR expert N failed to load: <detail>`",
            ),
            (
                WireError::SwapSyntax,
                "ERR SWAP needs a task id",
                "`ERR SWAP needs a task id`",
            ),
            (
                WireError::PredictSyntax,
                "ERR PREDICT needs `tasks : features`",
                "`ERR PREDICT needs `tasks : features``",
            ),
            (
                WireError::LogitsSyntax,
                "ERR LOGITS needs `tasks : features`",
                "`ERR LOGITS needs `tasks : features``",
            ),
            (
                WireError::BadFeature("X".into()),
                "ERR bad feature value `X`",
                "`ERR bad feature value `X``",
            ),
            (
                WireError::FeatureCount {
                    expected: 4,
                    got: 2,
                },
                "ERR expected 4 features, got 2",
                "`ERR expected N features, got M`",
            ),
            (
                WireError::TraceSyntax,
                "ERR TRACE needs `on` or `off`",
                "`ERR TRACE needs `on` or `off``",
            ),
            (
                WireError::MetricsSyntax,
                "ERR METRICS accepts `json` or `openmetrics`",
                "`ERR METRICS accepts `json` or `openmetrics``",
            ),
            (
                WireError::DumpFailed("<detail>".into()),
                "ERR dump failed: <detail>",
                "`ERR dump failed: <detail>`",
            ),
            (
                WireError::ShutdownNoServer,
                "ERR SHUTDOWN requires a running server",
                "`ERR SHUTDOWN requires a running server`",
            ),
            (
                WireError::NotReady("<detail>".into()),
                "ERR not ready: <detail>",
                "`ERR not ready: <detail>`",
            ),
            (
                WireError::Busy {
                    retry_after_ms: 100,
                },
                "ERR busy retry_after_ms=100",
                "`ERR busy retry_after_ms=<n>`",
            ),
            (
                WireError::LineTooLong { max_bytes: 64 },
                "ERR line too long (max 64 bytes)",
                "`ERR line too long (max N bytes)`",
            ),
            (
                WireError::IdleTimeout,
                "ERR idle timeout",
                "`ERR idle timeout`",
            ),
            (
                WireError::ConnRequestLimit,
                "ERR connection request limit reached",
                "`ERR connection request limit reached`",
            ),
            (
                WireError::ShuttingDown {
                    retry_after_ms: 100,
                },
                "ERR shutting down retry_after_ms=100",
                "`ERR shutting down retry_after_ms=<n>`",
            ),
            (
                WireError::BatchAborted,
                "ERR batch aborted",
                "`ERR batch aborted`",
            ),
            (
                WireError::ShardUnavailable {
                    shard: 2,
                    detail: "<detail>".into(),
                },
                "ERR shard 2 unavailable: <detail>",
                "`ERR shard N unavailable: <detail>`",
            ),
            (
                WireError::NoShardForTask(7),
                "ERR no shard for task 7",
                "`ERR no shard for task N`",
            ),
        ]
    }

    /// Every variant renders its documented form, and every rendered form
    /// has a matching row in `docs/PROTOCOL.md` — the doc and the enum
    /// cannot drift apart silently.
    #[test]
    fn every_variant_matches_a_protocol_row() {
        let doc = protocol_doc();
        for (err, rendered, doc_row) in samples() {
            assert_eq!(err.line(), rendered, "{err:?}");
            assert!(
                doc.contains(doc_row),
                "docs/PROTOCOL.md is missing the row {doc_row} for {err:?}"
            );
        }
    }

    #[test]
    fn close_family_matches_the_doc_table() {
        // Exactly the fault-tolerance table closes connections.
        let closing: Vec<WireError> = samples()
            .into_iter()
            .map(|(e, _, _)| e)
            .filter(WireError::closes_connection)
            .collect();
        assert_eq!(closing.len(), 6, "{closing:?}");
        assert!(!WireError::EmptyRequest.closes_connection());
        assert!(!WireError::Query(QueryError::EmptyQuery).closes_connection());
    }

    /// The router-facing rows keep the connection open: a degraded
    /// answer must not cost the client its session, so both
    /// `ERR shard N unavailable` and the `OK partial` success row (which
    /// is documented next to it) leave the connection usable.
    #[test]
    fn router_rows_do_not_close_the_connection() {
        assert!(!WireError::ShardUnavailable {
            shard: 0,
            detail: "x".into()
        }
        .closes_connection());
        assert!(!WireError::NoShardForTask(0).closes_connection());
        assert!(!WireError::LogitsSyntax.closes_connection());
        // `OK partial` is a success row, not a WireError; pin that the
        // doc documents it alongside the shard-unavailable row.
        let doc = protocol_doc();
        assert!(
            doc.contains("OK partial shards="),
            "docs/PROTOCOL.md must document the `OK partial` response row"
        );
    }

    #[test]
    fn query_errors_convert_losslessly() {
        let w: WireError = QueryError::MissingExpert(7).into();
        assert_eq!(w, WireError::Query(QueryError::MissingExpert(7)));
        assert_eq!(w.line(), "ERR no expert pooled for task 7");
    }
}
