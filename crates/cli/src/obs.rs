//! `poe obs` — offline tooling for flight-recorder dumps, OpenMetrics
//! exposition files, and bench-report regression diffs.
//!
//! Four actions, all file-based so they work on artifacts copied off a
//! crashed host:
//!
//! * `poe obs dump --file PATH [--kind K] [--request N]` — pretty-print a
//!   recorder JSONL dump (header summary + one aligned line per event),
//!   optionally filtered by event kind or request id.
//! * `poe obs tail --file PATH [--last N]` — the last `N` events (default
//!   20): the "what happened right before the crash" view.
//! * `poe obs check --file PATH` — run the OpenMetrics line-by-line
//!   validator ([`poe_obs::openmetrics::check`]) over an exposition file
//!   (e.g. a captured `METRICS openmetrics` payload) and report the
//!   family/sample counts, or the first violation.
//! * `poe obs diff BASELINE.json CANDIDATE.json [--rel R] [--abs-ns N]
//!   [--count-floor C]` — schema-aware bench-report comparison
//!   ([`poe_obs::report::diff`]); prints the per-metric table and fails
//!   (nonzero exit) on any regression — the CI perf gate.
//!
//! `--file` may name a *directory* (e.g. a server's `--recorder-dir`):
//! `dump`/`tail` pick the newest `poe-flight-*.jsonl` dump inside it,
//! `check` the newest file of any name.
//!
//! Every function returns the rendered report as a `String` so tests can
//! assert on output without capturing stdout; the binary prints it.

use crate::args::Args;
use poe_obs::report::{diff, BenchReport, DiffOptions};
use poe_obs::FlightEvent;
use std::path::{Path, PathBuf};

/// Runs one `poe obs <action>` invocation. `tokens` is everything after
/// the `obs` word on the command line.
pub fn run_obs(tokens: &[String]) -> Result<String, String> {
    // `diff` takes two positional paths, which the flag parser rejects by
    // design — route it before Args::parse.
    if tokens.first().map(String::as_str) == Some("diff") {
        return run_diff(&tokens[1..]);
    }
    let args = match Args::parse(tokens.to_vec()) {
        Ok(a) => a,
        Err(crate::args::ArgError::MissingCommand) => {
            return Err("poe obs needs an action: dump | tail | check | diff".into())
        }
        Err(e) => return Err(e.to_string()),
    };
    let file = args.require("file").map_err(|e| e.to_string())?;
    let file = resolve_input(Path::new(file), &args.command)?;
    match args.command.as_str() {
        "dump" => dump(
            &file,
            args.get("kind"),
            args.get_parsed("request", 0u64, "u64")
                .map_err(|e| e.to_string())?,
        ),
        "tail" => tail(
            &file,
            args.get_parsed("last", 20usize, "usize")
                .map_err(|e| e.to_string())?,
        ),
        "check" => check(&file),
        other => Err(format!(
            "unknown obs action `{other}` (want dump | tail | check | diff)"
        )),
    }
}

/// Resolves `--file`: a plain file passes through; a directory resolves
/// to its newest matching artifact (`poe-flight-*.jsonl` for
/// `dump`/`tail`, any file for `check`) so `--recorder-dir` post-mortems
/// don't require knowing the dump's timestamped name.
fn resolve_input(path: &Path, action: &str) -> Result<PathBuf, String> {
    if !path.is_dir() {
        return Ok(path.to_path_buf());
    }
    let wants_dump = matches!(action, "dump" | "tail");
    let mut newest: Option<(std::time::SystemTime, PathBuf)> = None;
    let entries = std::fs::read_dir(path)
        .map_err(|e| format!("cannot read directory {}: {e}", path.display()))?;
    for entry in entries.flatten() {
        let p = entry.path();
        if !p.is_file() {
            continue;
        }
        if wants_dump {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !(name.starts_with("poe-flight-") && name.ends_with(".jsonl")) {
                continue;
            }
        }
        let modified = entry
            .metadata()
            .and_then(|m| m.modified())
            .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        // Ties (same mtime granularity) break toward the later name —
        // dump filenames carry a monotone counter.
        if newest
            .as_ref()
            .map(|(t, n)| (modified, &p) > (*t, n))
            .unwrap_or(true)
        {
            newest = Some((modified, p));
        }
    }
    newest.map(|(_, p)| p).ok_or_else(|| {
        format!(
            "no {} found in {}",
            if wants_dump {
                "poe-flight-*.jsonl dumps"
            } else {
                "files"
            },
            path.display()
        )
    })
}

/// `poe obs diff`: compare two bench reports; `Err` (nonzero exit) on
/// any regression or settings mismatch, with the table in the message.
fn run_diff(tokens: &[String]) -> Result<String, String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut opts = DiffOptions::default();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if let Some(flag) = t.strip_prefix("--") {
            let raw = tokens
                .get(i + 1)
                .ok_or_else(|| format!("--{flag} needs a value"))?;
            let value: f64 = raw
                .parse()
                .map_err(|_| format!("--{flag} wants a number, got `{raw}`"))?;
            match flag {
                "rel" => opts.rel = value,
                "abs-ns" => opts.abs_ns = value,
                "count-floor" => opts.count_floor = value,
                other => {
                    return Err(format!(
                        "unknown diff option --{other} (want --rel | --abs-ns | --count-floor)"
                    ))
                }
            }
            i += 2;
        } else {
            paths.push(t);
            i += 1;
        }
    }
    let [base_path, cand_path] = paths.as_slice() else {
        return Err(
            "poe obs diff needs exactly two reports: <baseline.json> <candidate.json>".into(),
        );
    };
    let load = |p: &str| -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
        BenchReport::parse(&text).map_err(|e| format!("{p}: {e}"))
    };
    let base = load(base_path)?;
    let cand = load(cand_path)?;
    let result = diff(&base, &cand, &opts);
    let table = format!(
        "baseline  {base_path}\ncandidate {cand_path}\n{}",
        result.render()
    );
    if result.passed() {
        Ok(table)
    } else {
        Err(table)
    }
}

/// Header fields of a recorder dump, scraped from its first JSONL line.
struct DumpHeader {
    unix_secs: u64,
    recorded: u64,
    dropped: u64,
    capacity: u64,
}

fn parse_header(line: &str) -> Option<DumpHeader> {
    if !line.contains("\"recorder\":\"poe-flight\"") {
        return None;
    }
    let field = |key: &str| -> Option<u64> {
        let pat = format!("\"{key}\":");
        let at = line.find(&pat)? + pat.len();
        let rest = &line[at..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    };
    Some(DumpHeader {
        unix_secs: field("unix_secs")?,
        recorded: field("recorded")?,
        dropped: field("dropped")?,
        capacity: field("capacity")?,
    })
}

/// Loads a recorder dump: `(header, events)`. The header is optional so
/// truncated files (crash mid-write) still yield their intact events.
fn load_dump(path: &Path) -> Result<(Option<DumpHeader>, Vec<FlightEvent>), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let header = text.lines().next().and_then(parse_header);
    let events: Vec<FlightEvent> = text.lines().filter_map(FlightEvent::parse_jsonl).collect();
    if header.is_none() && events.is_empty() {
        return Err(format!(
            "{} is not a flight-recorder dump (no header, no events)",
            path.display()
        ));
    }
    Ok((header, events))
}

fn render_header(out: &mut String, path: &Path, h: &Option<DumpHeader>, shown: usize) {
    out.push_str(&format!("flight recorder dump {}\n", path.display()));
    if let Some(h) = h {
        out.push_str(&format!(
            "  dumped at unix {}; {} recorded, {} dropped, capacity {}\n",
            h.unix_secs, h.recorded, h.dropped, h.capacity
        ));
    } else {
        out.push_str("  (no header line — truncated dump?)\n");
    }
    out.push_str(&format!("  {shown} event(s) shown\n"));
}

fn render_events(out: &mut String, events: &[FlightEvent]) {
    for e in events {
        out.push_str(&format!(
            "  #{:<6} {:>10.3}s req={:<6} {:<16} {}\n",
            e.seq, e.at_secs, e.request_id, e.kind, e.detail
        ));
    }
}

/// `poe obs dump`: the whole file, optionally filtered by kind prefix
/// (`--kind batch` matches `batch.flush` and `batch.abort`) and/or
/// request id (`--request 0` means "no filter").
pub fn dump(path: &Path, kind: Option<&str>, request: u64) -> Result<String, String> {
    let (header, mut events) = load_dump(path)?;
    if let Some(k) = kind {
        events.retain(|e| e.kind.starts_with(k));
    }
    if request != 0 {
        events.retain(|e| e.request_id == request);
    }
    let mut out = String::new();
    render_header(&mut out, path, &header, events.len());
    render_events(&mut out, &events);
    Ok(out)
}

/// `poe obs tail`: the last `n` events — the crash-adjacent view.
pub fn tail(path: &Path, n: usize) -> Result<String, String> {
    let (header, events) = load_dump(path)?;
    let tail = &events[events.len().saturating_sub(n.max(1))..];
    let mut out = String::new();
    render_header(&mut out, path, &header, tail.len());
    render_events(&mut out, tail);
    Ok(out)
}

/// `poe obs check`: validate an OpenMetrics exposition file.
pub fn check(path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    match poe_obs::openmetrics::check(&text) {
        Ok(s) => Ok(format!(
            "{} OK: {} families, {} samples\n",
            path.display(),
            s.families,
            s.samples
        )),
        Err(e) => Err(format!("{} FAILED: {e}", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_obs::FlightRecorder;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn write_dump(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(name);
        std::fs::remove_dir_all(&dir).ok();
        let rec = FlightRecorder::with_capacity(16);
        rec.record_for(1, "request.start", "verb=QUERY");
        rec.record_for(1, "request.end", "verb=QUERY ok=1 ms=0.120");
        rec.record_for(2, "batch.flush", "cause=full size=2 tasks=0 ids=2,3");
        rec.record_for(0, "worker.panic", "conn=4 contained=1");
        rec.dump_to_dir(&dir).unwrap()
    }

    #[test]
    fn dump_renders_header_and_events() {
        let path = write_dump("poe_obs_cmd_dump");
        let out = run_obs(&argv(&["dump", "--file", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("4 recorded, 0 dropped, capacity 16"), "{out}");
        assert!(out.contains("4 event(s) shown"), "{out}");
        assert!(out.contains("request.start"), "{out}");
        assert!(out.contains("worker.panic"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn dump_filters_by_kind_and_request() {
        let path = write_dump("poe_obs_cmd_filter");
        let file = path.to_str().unwrap();
        let by_kind = run_obs(&argv(&["dump", "--file", file, "--kind", "batch"])).unwrap();
        assert!(by_kind.contains("1 event(s) shown"), "{by_kind}");
        assert!(by_kind.contains("batch.flush"), "{by_kind}");
        let by_req = run_obs(&argv(&["dump", "--file", file, "--request", "1"])).unwrap();
        assert!(by_req.contains("2 event(s) shown"), "{by_req}");
        assert!(!by_req.contains("batch.flush"), "{by_req}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn tail_shows_the_last_events() {
        let path = write_dump("poe_obs_cmd_tail");
        let out = run_obs(&argv(&[
            "tail",
            "--file",
            path.to_str().unwrap(),
            "--last",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("2 event(s) shown"), "{out}");
        assert!(out.contains("worker.panic"), "{out}");
        assert!(!out.contains("request.start"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn check_accepts_valid_and_rejects_broken_exposition() {
        let dir = std::env::temp_dir().join("poe_obs_cmd_check");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.om");
        let reg = poe_obs::Registry::new();
        reg.counter("x").add(3);
        std::fs::write(&good, reg.snapshot().to_openmetrics()).unwrap();
        let out = run_obs(&argv(&["check", "--file", good.to_str().unwrap()])).unwrap();
        assert!(out.contains("OK: 1 families, 1 samples"), "{out}");
        let bad = dir.join("bad.om");
        std::fs::write(&bad, "poe_x_total 1\n# EOF\n").unwrap();
        let err = run_obs(&argv(&["check", "--file", bad.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("FAILED"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_are_specific() {
        assert!(run_obs(&[]).unwrap_err().contains("dump | tail | check"));
        assert!(run_obs(&argv(&["frob", "--file", "x"]))
            .unwrap_err()
            .contains("unknown obs action"));
        assert!(run_obs(&argv(&["dump"])).unwrap_err().contains("--file"));
        assert!(run_obs(&argv(&["dump", "--file", "/nonexistent/x.jsonl"]))
            .unwrap_err()
            .contains("cannot read"));
    }

    #[test]
    fn dump_and_tail_accept_a_directory() {
        let dir = std::env::temp_dir().join("poe_obs_cmd_dirres");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // A decoy non-dump file plus two dumps; the newest dump wins.
        std::fs::write(dir.join("notes.txt"), "not a dump").unwrap();
        let rec = FlightRecorder::with_capacity(8);
        rec.record_for(1, "request.end", "verb=QUERY ok=1 ms=0.5");
        let first = rec.dump_to_dir(&dir).unwrap();
        rec.record_for(2, "request.end", "verb=PREDICT ok=1 ms=0.7");
        let second = rec.dump_to_dir(&dir).unwrap();
        assert_ne!(first, second);
        let out = run_obs(&argv(&["dump", "--file", dir.to_str().unwrap()])).unwrap();
        assert!(
            out.contains(&second.file_name().unwrap().to_string_lossy().to_string()),
            "{out}"
        );
        assert!(out.contains("2 event(s) shown"), "{out}");
        let tail = run_obs(&argv(&[
            "tail",
            "--file",
            dir.to_str().unwrap(),
            "--last",
            "1",
        ]))
        .unwrap();
        assert!(tail.contains("1 event(s) shown"), "{tail}");
        // An empty directory is a specific error, not a panic.
        let empty = dir.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        let err = run_obs(&argv(&["dump", "--file", empty.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("no poe-flight-*.jsonl dumps"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_accepts_a_directory() {
        let dir = std::env::temp_dir().join("poe_obs_cmd_dircheck");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let reg = poe_obs::Registry::new();
        reg.counter("x").add(1);
        std::fs::write(dir.join("metrics.om"), reg.snapshot().to_openmetrics()).unwrap();
        let out = run_obs(&argv(&["check", "--file", dir.to_str().unwrap()])).unwrap();
        assert!(out.contains("OK: 1 families"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn write_loadgen_report(path: &Path, p99: f64, errors: u64) {
        let text = format!(
            "{{\n  \"report\": \"poe-bench\",\n  \"version\": 2,\n  \"benches\": [\n    {{\"name\": \"loadgen/steady\", \"iters\": 100, \"mean_ns\": 1000.0, \"samples_per_sec\": 5000.0, \"p50_ns\": 900.0, \"p95_ns\": 1500.0, \"p99_ns\": {p99:.1}, \"errors\": {errors}, \"shed\": 0, \"partial\": 0, \"slo_pass\": 1, \"warmup_ms\": 0, \"measure_ms\": 2000}}\n  ]\n}}\n"
        );
        std::fs::write(path, text).unwrap();
    }

    #[test]
    fn diff_passes_self_and_fails_injected_regression() {
        let dir = std::env::temp_dir().join("poe_obs_cmd_diff");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        write_loadgen_report(&base, 2000.0, 0);
        let b = base.to_str().unwrap();
        // Self vs self: exit zero (Ok), table says OK.
        let out = run_obs(&argv(&["diff", b, b])).unwrap();
        assert!(out.contains("diff: OK"), "{out}");
        // Injected p99 regression (past both rel and abs floors): Err.
        let worse = dir.join("worse.json");
        write_loadgen_report(&worse, 2_000_000.0, 0);
        let err = run_obs(&argv(&["diff", b, worse.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("REGRESSION"), "{err}");
        assert!(err.contains("p99_ns"), "{err}");
        // Injected error-count regression.
        let errs = dir.join("errs.json");
        write_loadgen_report(&errs, 2000.0, 7);
        let err = run_obs(&argv(&["diff", b, errs.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("errors"), "{err}");
        // A loose count floor forgives it.
        let ok = run_obs(&argv(&[
            "diff",
            b,
            errs.to_str().unwrap(),
            "--count-floor",
            "10",
        ]))
        .unwrap();
        assert!(ok.contains("diff: OK"), "{ok}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diff_argument_errors_are_specific() {
        assert!(run_obs(&argv(&["diff"]))
            .unwrap_err()
            .contains("exactly two reports"));
        assert!(run_obs(&argv(&["diff", "a.json"]))
            .unwrap_err()
            .contains("exactly two reports"));
        assert!(run_obs(&argv(&["diff", "a", "b", "--rel"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(run_obs(&argv(&["diff", "a", "b", "--rel", "x"]))
            .unwrap_err()
            .contains("wants a number"));
        assert!(run_obs(&argv(&["diff", "a", "b", "--frob", "1"]))
            .unwrap_err()
            .contains("unknown diff option"));
        assert!(run_obs(&argv(&[
            "diff",
            "/nonexistent/a.json",
            "/nonexistent/b.json"
        ]))
        .unwrap_err()
        .contains("cannot read"));
    }
}
