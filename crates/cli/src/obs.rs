//! `poe obs` — offline tooling for flight-recorder dumps and OpenMetrics
//! exposition files.
//!
//! Three actions, all file-based so they work on artifacts copied off a
//! crashed host:
//!
//! * `poe obs dump --file PATH [--kind K] [--request N]` — pretty-print a
//!   recorder JSONL dump (header summary + one aligned line per event),
//!   optionally filtered by event kind or request id.
//! * `poe obs tail --file PATH [--last N]` — the last `N` events (default
//!   20): the "what happened right before the crash" view.
//! * `poe obs check --file PATH` — run the OpenMetrics line-by-line
//!   validator ([`poe_obs::openmetrics::check`]) over an exposition file
//!   (e.g. a captured `METRICS openmetrics` payload) and report the
//!   family/sample counts, or the first violation.
//!
//! Every function returns the rendered report as a `String` so tests can
//! assert on output without capturing stdout; the binary prints it.

use crate::args::Args;
use poe_obs::FlightEvent;
use std::path::Path;

/// Runs one `poe obs <action>` invocation. `tokens` is everything after
/// the `obs` word on the command line.
pub fn run_obs(tokens: &[String]) -> Result<String, String> {
    let args = match Args::parse(tokens.to_vec()) {
        Ok(a) => a,
        Err(crate::args::ArgError::MissingCommand) => {
            return Err("poe obs needs an action: dump | tail | check".into())
        }
        Err(e) => return Err(e.to_string()),
    };
    let file = args.require("file").map_err(|e| e.to_string())?;
    match args.command.as_str() {
        "dump" => dump(
            Path::new(file),
            args.get("kind"),
            args.get_parsed("request", 0u64, "u64")
                .map_err(|e| e.to_string())?,
        ),
        "tail" => tail(
            Path::new(file),
            args.get_parsed("last", 20usize, "usize")
                .map_err(|e| e.to_string())?,
        ),
        "check" => check(Path::new(file)),
        other => Err(format!(
            "unknown obs action `{other}` (want dump | tail | check)"
        )),
    }
}

/// Header fields of a recorder dump, scraped from its first JSONL line.
struct DumpHeader {
    unix_secs: u64,
    recorded: u64,
    dropped: u64,
    capacity: u64,
}

fn parse_header(line: &str) -> Option<DumpHeader> {
    if !line.contains("\"recorder\":\"poe-flight\"") {
        return None;
    }
    let field = |key: &str| -> Option<u64> {
        let pat = format!("\"{key}\":");
        let at = line.find(&pat)? + pat.len();
        let rest = &line[at..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    };
    Some(DumpHeader {
        unix_secs: field("unix_secs")?,
        recorded: field("recorded")?,
        dropped: field("dropped")?,
        capacity: field("capacity")?,
    })
}

/// Loads a recorder dump: `(header, events)`. The header is optional so
/// truncated files (crash mid-write) still yield their intact events.
fn load_dump(path: &Path) -> Result<(Option<DumpHeader>, Vec<FlightEvent>), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let header = text.lines().next().and_then(parse_header);
    let events: Vec<FlightEvent> = text.lines().filter_map(FlightEvent::parse_jsonl).collect();
    if header.is_none() && events.is_empty() {
        return Err(format!(
            "{} is not a flight-recorder dump (no header, no events)",
            path.display()
        ));
    }
    Ok((header, events))
}

fn render_header(out: &mut String, path: &Path, h: &Option<DumpHeader>, shown: usize) {
    out.push_str(&format!("flight recorder dump {}\n", path.display()));
    if let Some(h) = h {
        out.push_str(&format!(
            "  dumped at unix {}; {} recorded, {} dropped, capacity {}\n",
            h.unix_secs, h.recorded, h.dropped, h.capacity
        ));
    } else {
        out.push_str("  (no header line — truncated dump?)\n");
    }
    out.push_str(&format!("  {shown} event(s) shown\n"));
}

fn render_events(out: &mut String, events: &[FlightEvent]) {
    for e in events {
        out.push_str(&format!(
            "  #{:<6} {:>10.3}s req={:<6} {:<16} {}\n",
            e.seq, e.at_secs, e.request_id, e.kind, e.detail
        ));
    }
}

/// `poe obs dump`: the whole file, optionally filtered by kind prefix
/// (`--kind batch` matches `batch.flush` and `batch.abort`) and/or
/// request id (`--request 0` means "no filter").
pub fn dump(path: &Path, kind: Option<&str>, request: u64) -> Result<String, String> {
    let (header, mut events) = load_dump(path)?;
    if let Some(k) = kind {
        events.retain(|e| e.kind.starts_with(k));
    }
    if request != 0 {
        events.retain(|e| e.request_id == request);
    }
    let mut out = String::new();
    render_header(&mut out, path, &header, events.len());
    render_events(&mut out, &events);
    Ok(out)
}

/// `poe obs tail`: the last `n` events — the crash-adjacent view.
pub fn tail(path: &Path, n: usize) -> Result<String, String> {
    let (header, events) = load_dump(path)?;
    let tail = &events[events.len().saturating_sub(n.max(1))..];
    let mut out = String::new();
    render_header(&mut out, path, &header, tail.len());
    render_events(&mut out, tail);
    Ok(out)
}

/// `poe obs check`: validate an OpenMetrics exposition file.
pub fn check(path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    match poe_obs::openmetrics::check(&text) {
        Ok(s) => Ok(format!(
            "{} OK: {} families, {} samples\n",
            path.display(),
            s.families,
            s.samples
        )),
        Err(e) => Err(format!("{} FAILED: {e}", path.display())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_obs::FlightRecorder;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn write_dump(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(name);
        std::fs::remove_dir_all(&dir).ok();
        let rec = FlightRecorder::with_capacity(16);
        rec.record_for(1, "request.start", "verb=QUERY");
        rec.record_for(1, "request.end", "verb=QUERY ok=1 ms=0.120");
        rec.record_for(2, "batch.flush", "cause=full size=2 tasks=0 ids=2,3");
        rec.record_for(0, "worker.panic", "conn=4 contained=1");
        rec.dump_to_dir(&dir).unwrap()
    }

    #[test]
    fn dump_renders_header_and_events() {
        let path = write_dump("poe_obs_cmd_dump");
        let out = run_obs(&argv(&["dump", "--file", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("4 recorded, 0 dropped, capacity 16"), "{out}");
        assert!(out.contains("4 event(s) shown"), "{out}");
        assert!(out.contains("request.start"), "{out}");
        assert!(out.contains("worker.panic"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn dump_filters_by_kind_and_request() {
        let path = write_dump("poe_obs_cmd_filter");
        let file = path.to_str().unwrap();
        let by_kind = run_obs(&argv(&["dump", "--file", file, "--kind", "batch"])).unwrap();
        assert!(by_kind.contains("1 event(s) shown"), "{by_kind}");
        assert!(by_kind.contains("batch.flush"), "{by_kind}");
        let by_req = run_obs(&argv(&["dump", "--file", file, "--request", "1"])).unwrap();
        assert!(by_req.contains("2 event(s) shown"), "{by_req}");
        assert!(!by_req.contains("batch.flush"), "{by_req}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn tail_shows_the_last_events() {
        let path = write_dump("poe_obs_cmd_tail");
        let out = run_obs(&argv(&[
            "tail",
            "--file",
            path.to_str().unwrap(),
            "--last",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("2 event(s) shown"), "{out}");
        assert!(out.contains("worker.panic"), "{out}");
        assert!(!out.contains("request.start"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn check_accepts_valid_and_rejects_broken_exposition() {
        let dir = std::env::temp_dir().join("poe_obs_cmd_check");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.om");
        let reg = poe_obs::Registry::new();
        reg.counter("x").add(3);
        std::fs::write(&good, reg.snapshot().to_openmetrics()).unwrap();
        let out = run_obs(&argv(&["check", "--file", good.to_str().unwrap()])).unwrap();
        assert!(out.contains("OK: 1 families, 1 samples"), "{out}");
        let bad = dir.join("bad.om");
        std::fs::write(&bad, "poe_x_total 1\n# EOF\n").unwrap();
        let err = run_obs(&argv(&["check", "--file", bad.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("FAILED"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_are_specific() {
        assert!(run_obs(&[]).unwrap_err().contains("dump | tail | check"));
        assert!(run_obs(&argv(&["frob", "--file", "x"]))
            .unwrap_err()
            .contains("unknown obs action"));
        assert!(run_obs(&argv(&["dump"])).unwrap_err().contains("--file"));
        assert!(run_obs(&argv(&["dump", "--file", "/nonexistent/x.jsonl"]))
            .unwrap_err()
            .contains("cannot read"));
    }
}
