//! `poe` — command-line front end for the Pool of Experts model database.
//!
//! ```text
//! poe preprocess --dataset balanced:8x3 --out /tmp/pool [--seed 42] [--epochs 25]
//! poe info       --pool /tmp/pool
//! poe query      --pool /tmp/pool --tasks 1,4,6 [--eval-dataset balanced:8x3 --seed 42]
//! poe diagnose   --pool /tmp/pool --dataset balanced:8x3 [--seed 42]
//! poe help
//! ```
//!
//! Dataset specs: `balanced:<tasks>x<classes>` (hierarchical Gaussian with
//! the standard renderer), `cifar100`, or `tiny-imagenet` (the two paper
//! analogs).

use poe_cli::args::{ArgError, Args};
use poe_cli::serve;
use poe_core::diagnostics::diagnose_pool;
use poe_core::pipeline::{preprocess, PipelineConfig};
use poe_core::service::QueryService;
use poe_core::store::{load_standalone, save_standalone, PoolSpec};
use poe_data::presets::{cifar100_sim, tiny_imagenet_sim, DatasetScale};
use poe_data::synth::{generate, GaussianHierarchyConfig};
use poe_data::{ClassHierarchy, SplitDataset};
use poe_models::WrnConfig;
use poe_tensor::ops::accuracy;
use std::process::ExitCode;

const HELP: &str = "\
poe — Pool of Experts model database (SIGMOD 2021 reproduction)

USAGE
  poe preprocess --dataset SPEC --out DIR [--seed N] [--epochs N] [--trace on]
                 [--quantize on]
      Train an oracle, extract the library and every expert, and persist a
      self-describing pool store to DIR. With --trace on, print a per-phase
      span summary (oracle / library / expert extraction) to stderr. With
      --quantize on, expert heads are stored as int8 row-wise weights
      (~4x smaller on disk, dequantized at assemble time; see
      docs/OPERATIONS.md for the accuracy trade-off).
  poe info --pool DIR
      Print the store's hierarchy, architectures, experts, and volumes,
      with per-expert version and residency (resident vs on-disk in the
      lazy segment store).
  poe query --pool DIR --tasks I,J,K [--eval-dataset SPEC --seed N]
      Consolidate a task-specific model (train-free) and report its size
      and assembly latency; optionally evaluate it on a regenerated test set.
  poe diagnose --pool DIR --dataset SPEC [--seed N]
      Per-expert calibration and logit-scale diagnostics.
  poe serve --pool DIR [--port P] [--max-requests N] [--workers N]
            [--trace on|off] [--trace-out PATH] [--slow-query-ms N]
            [--metrics-every N] [--idle-timeout-ms N] [--queue-capacity N]
            [--max-conn-requests N] [--drain-deadline-ms N]
            [--max-batch N] [--batch-delay-us N]
            [--recorder-events N] [--recorder-dir DIR]
            [--resident-experts N] [--net threads|epoll]
      TCP model-query server (line protocol: INFO / QUERY t,… /
      PREDICT t,… : f1 f2 … / SWAP t / STATS /
      METRICS [json|openmetrics] / TRACE on|off / DUMP / HEALTH /
      SHUTDOWN / QUIT — see docs/PROTOCOL.md). Port 0 picks an
      ephemeral port. Up to N
      connections are served concurrently (default 4) from a bounded
      accept queue (--queue-capacity, default 128); when the queue is
      full new connections are shed with `ERR busy`. Repeated task sets
      are answered from the consolidation cache, STATS reports
      assembly-latency percentiles, METRICS dumps the full JSON snapshot
      (or Prometheus/OpenMetrics text with `METRICS openmetrics`).
      --trace starts span collection enabled; --trace-out streams every
      finished span as JSONL to PATH; --slow-query-ms retains requests at
      or above N ms (0 = off); --metrics-every prints the metrics JSON to
      stderr every N seconds (0 = off). --idle-timeout-ms closes silent
      connections (default 30000, 0 = never), --max-conn-requests caps
      requests per connection (0 = no cap), --drain-deadline-ms bounds
      the graceful-shutdown drain (default 5000). PREDICTs from
      concurrent connections that name the same task set are coalesced
      into one batched inference: --max-batch caps the batch (default 32;
      ≤1 disables batching) and --batch-delay-us bounds how long the
      first request waits for company (default 1000). The always-on
      flight recorder keeps the last --recorder-events structured events
      (default 4096) and dumps them as JSONL to --recorder-dir on
      SHUTDOWN, on a panic, and on the DUMP verb (read dumps with
      `poe obs`). With a v4 segment store (experts.poem) experts load
      lazily on first query; --resident-experts caps how many stay in
      memory (LRU eviction, 0 = unlimited), and SWAP t hot-swaps one
      expert from a re-saved store without a restart (see
      docs/OPERATIONS.md § Expert lifecycle). If the pool store fails
      to load (e.g. checksum
      mismatch) the server starts degraded: HEALTH reports ready=0 with
      the load error and data verbs answer `ERR not ready`. Failure modes
      and the runbook live in docs/OPERATIONS.md. --net selects the
      connection backend: `threads` (default; one thread per
      connection, portable) or `epoll` (single readiness event loop
      over raw epoll, Linux only; scales to tens of thousands of idle
      connections). POE_NET=threads|epoll sets the default.
  poe route --shards SPEC [--port P] [--call-timeout-ms N] [--request-budget-ms N]
            [--retries N] [--backoff-base-ms N] [--backoff-cap-ms N]
            [--breaker-failures N] [--breaker-cooldown-ms N]
            [--hedge-ms N|auto|off] [--health-ttl-ms N] [--seed N]
            [--idle-timeout-ms N] [--drain-deadline-ms N] [--max-requests N]
            [--recorder-dir DIR] [--net threads|epoll]
      Sharded scatter/gather front tier over a fleet of `poe serve`
      backends. SPEC maps task-id ranges to replicated shard addresses,
      e.g. `0-9=10.0.0.1:7878|10.0.0.2:7878;10-19=10.0.0.3:7878`
      (ranges must cover each task exactly once; `|` separates replicas).
      Speaks the serve line protocol (INFO | QUERY | PREDICT | LOGITS |
      HEALTH | METRICS | DUMP | SHUTDOWN | QUIT); QUERY/PREDICT scatter
      across shards and concatenate logit slices at the edge, so a
      sharded pool answers like a single server. Per-call deadlines
      (--call-timeout-ms, default 1000) nest in a per-request budget
      (--request-budget-ms, default 3000); failures retry up to
      --retries times (default 3) with exponential backoff plus
      decorrelated jitter (--backoff-base-ms/--backoff-cap-ms, defaults
      20/500), honoring `retry_after_ms` hints. Each replica sits behind
      a circuit breaker (--breaker-failures consecutive transport
      failures open it, default 5; --breaker-cooldown-ms before the
      half-open probe, default 2000). --hedge-ms races a second replica
      after a fixed delay (`auto` derives it from the observed p99 shard
      latency; default off). When a shard stays down past its budget,
      PREDICT degrades to `OK partial` over the surviving slices. --seed
      pins the backoff jitter for reproducible runs. --net selects the
      connection backend (`threads`/`epoll`, as for `poe serve`). See
      docs/PROTOCOL.md § The router tier and the OPERATIONS.md runbook.
  poe loadgen --addr HOST:PORT [--duration-ms N] [--seed N] [--tenants SPEC]
              [--catalog N] [--zipf S] [--requests-per-conn N]
              [--report PATH] [--p99-ms MS] [--max-error-rate R]
      Closed-loop multi-tenant load generator against a running
      `poe serve` (or `poe route`). SPEC is `profile=connections`
      `;`-separated over the profiles steady | bursty | fanout |
      slowreader (default `steady=2;bursty=2;fanout=2;slowreader=1`).
      Task-set popularity is Zipf(--zipf, default 1.1) over a --catalog
      of task sets (default 32); the whole request schedule is expanded
      deterministically from --seed before the run, so the same seed
      replays the same requests. Runs --duration-ms (default 2000) of
      wall clock, then prints per-tenant p50/p95/p99, throughput,
      error/shed/partial counts, and an SLO verdict (--p99-ms /
      --max-error-rate override every tenant's targets). --report writes
      the rows as BENCH_loadgen.json-style poe-bench v2 JSON for
      `poe obs diff`. Exits nonzero when any tenant misses its SLO.
  poe obs dump --file PATH|DIR [--kind K] [--request N]
  poe obs tail --file PATH|DIR [--last N]
  poe obs check --file PATH|DIR
  poe obs diff BASELINE.json CANDIDATE.json [--rel R] [--abs-ns N]
              [--count-floor C]
      Flight-recorder, exposition, and bench-report tooling: `dump`
      pretty-prints a recorder JSONL file (filter by event kind or
      request id), `tail` shows the last N events (default 20), `check`
      validates an OpenMetrics exposition file line by line (exit 1 on
      violation). When --file names a directory (e.g. a server's
      --recorder-dir), dump/tail pick the newest poe-flight-*.jsonl in
      it and check picks the newest file. `diff` compares two poe-bench
      reports row by row with per-metric thresholds — latency (*_ns)
      regressions must exceed --rel (default 0.25) AND --abs-ns (default
      50000); throughput is lower-is-worse; error/shed/partial counts may
      grow by at most --count-floor (default 0); a passing slo_pass must
      not turn failing — and exits nonzero on any regression (the CI
      perf gate).
  poe help
      This text.

DATASET SPECS
  balanced:<tasks>x<classes>   e.g. balanced:8x3
  cifar100                     100 classes / 20 tasks (paper analog)
  tiny-imagenet                200 classes / 34 tasks (paper analog)
";

fn dataset_from_spec(spec: &str, seed: u64) -> Result<(SplitDataset, ClassHierarchy), String> {
    let scale = DatasetScale {
        train_per_class: 60,
        test_per_class: 15,
    };
    if spec == "cifar100" {
        return Ok(cifar100_sim(scale, seed));
    }
    if spec == "tiny-imagenet" {
        return Ok(tiny_imagenet_sim(scale, seed));
    }
    if let Some(rest) = spec.strip_prefix("balanced:") {
        let (t, c) = rest.split_once('x').ok_or_else(|| {
            format!("bad balanced spec `{spec}` (want balanced:<tasks>x<classes>)")
        })?;
        let tasks: usize = t
            .parse()
            .map_err(|_| format!("bad task count in `{spec}`"))?;
        let classes: usize = c
            .parse()
            .map_err(|_| format!("bad class count in `{spec}`"))?;
        if tasks == 0 || classes == 0 {
            return Err(format!("`{spec}` must have ≥1 task and class"));
        }
        let cfg = GaussianHierarchyConfig::balanced(tasks, classes)
            .with_renderer(32, 2)
            .with_samples(scale.train_per_class, scale.test_per_class)
            .with_seed(seed);
        return Ok(generate(&cfg));
    }
    Err(format!("unknown dataset spec `{spec}`"))
}

fn cmd_preprocess(a: &Args) -> Result<(), String> {
    let spec = a.require("dataset").map_err(|e| e.to_string())?;
    let out = a.require("out").map_err(|e| e.to_string())?;
    let seed = a
        .get_parsed("seed", 42u64, "u64")
        .map_err(|e| e.to_string())?;
    let epochs = a
        .get_parsed("epochs", 25usize, "usize")
        .map_err(|e| e.to_string())?;
    let trace_on = parse_trace_flag(a)?;
    let quantize = match a.get("quantize") {
        None => false,
        Some(v) if v.eq_ignore_ascii_case("on") => true,
        Some(v) if v.eq_ignore_ascii_case("off") => false,
        Some(v) => return Err(format!("--quantize `{v}` is not `on` or `off`")),
    };

    eprintln!("generating dataset `{spec}` (seed {seed}) …");
    let (split, hierarchy) = dataset_from_spec(spec, seed)?;
    let input_dim = split.train.sample_shape()[0];
    let mut pipe = PipelineConfig::defaults(
        WrnConfig::new(16, 4.0, 4.0, hierarchy.num_classes()),
        WrnConfig::new(16, 1.0, 1.0, hierarchy.num_classes()),
        epochs,
    );
    pipe.seed = seed ^ 0xC0DE;
    eprintln!(
        "preprocessing: oracle {} → library {} → {} experts …",
        pipe.oracle_arch.arch_string(),
        pipe.student_arch.arch_string(),
        hierarchy.num_primitives()
    );
    let pre = if trace_on {
        // Collect preprocessing spans (pipeline phases, per-epoch timings,
        // per-expert CKD runs) and summarize them by name.
        let collector = std::sync::Arc::new(poe_obs::TraceCollector::with_capacity(4096));
        collector.set_enabled(true);
        let pre = poe_obs::with_request(&collector, poe_obs::next_request_id(), || {
            preprocess(&split.train, &hierarchy, &pipe, None)
        });
        let mut by_name: std::collections::BTreeMap<&str, (u64, f64)> =
            std::collections::BTreeMap::new();
        for ev in collector.recent(usize::MAX) {
            let slot = by_name.entry(ev.name).or_insert((0, 0.0));
            slot.0 += 1;
            slot.1 += ev.duration_secs;
        }
        eprintln!(
            "preprocessing span summary ({} spans):",
            collector.spans_recorded()
        );
        for (name, (count, total)) in by_name {
            eprintln!("  {name:<26} ×{count:<5} {:.3} s total", total);
        }
        if collector.events_dropped() > 0 {
            eprintln!(
                "  ({} early spans evicted from the ring buffer)",
                collector.events_dropped()
            );
        }
        pre
    } else {
        preprocess(&split.train, &hierarchy, &pipe, None)
    };
    let poolspec = PoolSpec {
        student_arch: pipe.student_arch,
        expert_ks: pipe.expert_ks,
        library_groups: pipe.library_groups,
        input_dim,
    };
    let mut pre = pre;
    if quantize {
        let report = pre.pool.quantize_experts();
        eprintln!("{report}");
    }
    let bytes = save_standalone(&pre.pool, &poolspec, out).map_err(|e| e.to_string())?;
    println!(
        "pool written to {out}: {} experts, {bytes} bytes on disk",
        pre.pool.num_experts()
    );
    Ok(())
}

fn cmd_info(a: &Args) -> Result<(), String> {
    let dir = a.require("pool").map_err(|e| e.to_string())?;
    let (pool, spec) = load_standalone(dir).map_err(|e| e.to_string())?;
    let h = pool.hierarchy();
    println!("pool at {dir}");
    println!("  library:  {} ({} params)", pool.library_arch, {
        use poe_nn::Module;
        pool.library().param_count()
    });
    println!(
        "  experts:  {} of {} tasks pooled ({})",
        pool.num_experts(),
        h.num_primitives(),
        pool.expert_arch
    );
    println!(
        "  classes:  {} in {} primitive tasks (ℓ = {}, input dim {})",
        h.num_classes(),
        h.num_primitives(),
        spec.library_groups,
        spec.input_dim
    );
    let v = pool.volumes();
    let quantized = pool
        .pooled_tasks()
        .iter()
        .filter(|&&t| pool.is_quantized(t))
        .count();
    println!(
        "  volumes:  library {} B, mean expert {} B, total {} B{}",
        v.library_bytes,
        v.mean_expert_bytes(),
        v.total_bytes,
        if quantized > 0 {
            format!(" ({quantized} experts int8-quantized)")
        } else {
            String::new()
        }
    );
    println!(
        "  resident: {} of {} experts in memory ({})",
        pool.resident_experts(),
        pool.num_experts(),
        if pool.has_source() {
            "lazy segment store, loads on first query"
        } else {
            "eager per-file store, all loaded at open"
        }
    );
    for p in h.primitives() {
        let task = h.primitive_of_class(p.classes[0]);
        let (mark, state) = if !pool.has_expert(task) {
            ("✘", String::new())
        } else {
            let version = pool.expert_version(task).unwrap_or(0);
            let residency = if pool.is_resident(task) {
                "resident"
            } else {
                "on-disk"
            };
            ("✔", format!("  v{version} {residency}"))
        };
        println!("    [{mark}] {:<14} classes {:?}{state}", p.name, p.classes);
    }
    Ok(())
}

fn cmd_query(a: &Args) -> Result<(), String> {
    let dir = a.require("pool").map_err(|e| e.to_string())?;
    let tasks = a.get_usize_list("tasks").map_err(|e| e.to_string())?;
    let (pool, _) = load_standalone(dir).map_err(|e| e.to_string())?;
    let (model, stats) = pool.consolidate(&tasks).map_err(|e| e.to_string())?;
    println!(
        "M(Q) for tasks {tasks:?}: {} outputs, {} params, assembled in {:.3} ms",
        model.num_outputs(),
        stats.params,
        stats.assembly_secs * 1e3
    );
    if let Some(spec) = a.get("eval-dataset") {
        let seed = a
            .get_parsed("seed", 42u64, "u64")
            .map_err(|e| e.to_string())?;
        let (split, _) = dataset_from_spec(spec, seed)?;
        let view = split.test.task_view(&model.class_layout());
        let logits = model.infer(&view.inputs);
        let acc = accuracy(&logits, &view.labels);
        let cm = poe_nn::metrics::ConfusionMatrix::from_logits(&logits, &view.labels);
        println!(
            "accuracy on `{spec}` test split (seed {seed}): {:.1}% over {} samples \
             (macro-F1 {:.3})",
            acc * 100.0,
            view.len(),
            cm.macro_f1()
        );
        if let Some((a, p, c)) = cm.worst_confusion() {
            println!("worst confusion: true class {a} → predicted {p} ({c} samples)");
        }
    }
    Ok(())
}

fn cmd_diagnose(a: &Args) -> Result<(), String> {
    let dir = a.require("pool").map_err(|e| e.to_string())?;
    let spec = a.require("dataset").map_err(|e| e.to_string())?;
    let seed = a
        .get_parsed("seed", 42u64, "u64")
        .map_err(|e| e.to_string())?;
    let (pool, _) = load_standalone(dir).map_err(|e| e.to_string())?;
    let (split, _) = dataset_from_spec(spec, seed)?;
    let d = diagnose_pool(&pool, &split.test, 4);
    println!("{d}");
    Ok(())
}

/// Parses a `--net threads|epoll` value (absent = `POE_NET` env, then
/// `threads`). Shared by `poe serve` and `poe route`.
fn parse_net_flag(a: &Args) -> Result<serve::NetBackend, String> {
    match a.get("net") {
        None => Ok(serve::NetBackend::from_env()),
        Some(v) => serve::NetBackend::parse(v)
            .ok_or_else(|| format!("--net `{v}` is not `threads` or `epoll`")),
    }
}

/// Parses a `--trace on|off` value (absent = `false`).
fn parse_trace_flag(a: &Args) -> Result<bool, String> {
    match a.get("trace") {
        None => Ok(false),
        Some(v) if v.eq_ignore_ascii_case("on") => Ok(true),
        Some(v) if v.eq_ignore_ascii_case("off") => Ok(false),
        Some(v) => Err(format!("--trace `{v}` is not `on` or `off`")),
    }
}

fn cmd_serve(a: &Args) -> Result<(), String> {
    let dir = a.require("pool").map_err(|e| e.to_string())?;
    let port = a
        .get_parsed("port", 7878u16, "port number")
        .map_err(|e| e.to_string())?;
    let max_requests = a
        .get_parsed("max-requests", u64::MAX, "u64")
        .map_err(|e| e.to_string())?;
    let workers = a
        .get_parsed("workers", serve::DEFAULT_WORKERS, "usize")
        .map_err(|e| e.to_string())?;
    if workers == 0 {
        return Err("--workers must be ≥ 1".into());
    }
    let net = parse_net_flag(a)?;
    let trace_on = parse_trace_flag(a)?;
    let slow_ms = a
        .get_parsed("slow-query-ms", 0u64, "u64")
        .map_err(|e| e.to_string())?;
    let metrics_every = a
        .get_parsed("metrics-every", 0u64, "u64")
        .map_err(|e| e.to_string())?;
    let idle_timeout_ms = a
        .get_parsed("idle-timeout-ms", 30_000u64, "u64")
        .map_err(|e| e.to_string())?;
    let queue_capacity = a
        .get_parsed("queue-capacity", 128usize, "usize")
        .map_err(|e| e.to_string())?;
    let max_conn_requests = a
        .get_parsed("max-conn-requests", 0u64, "u64")
        .map_err(|e| e.to_string())?;
    let drain_deadline_ms = a
        .get_parsed("drain-deadline-ms", 5_000u64, "u64")
        .map_err(|e| e.to_string())?;
    let max_batch = a
        .get_parsed("max-batch", serve::DEFAULT_MAX_BATCH, "usize")
        .map_err(|e| e.to_string())?;
    let batch_delay_us = a
        .get_parsed("batch-delay-us", serve::DEFAULT_BATCH_DELAY_US, "u64")
        .map_err(|e| e.to_string())?;
    let recorder_events = a
        .get_parsed("recorder-events", poe_obs::DEFAULT_RECORDER_EVENTS, "usize")
        .map_err(|e| e.to_string())?;
    let recorder_dir = a.get("recorder-dir").map(std::path::PathBuf::from);
    let resident_experts = a
        .get_parsed("resident-experts", 0usize, "usize")
        .map_err(|e| e.to_string())?;
    // A `poe serve` process that panics outright (not a contained worker
    // panic) still leaves its black box behind: the hook dumps the global
    // flight recorder before the default panic message prints.
    if let Some(dir) = recorder_dir.clone() {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            match poe_obs::FlightRecorder::global().dump_to_dir(&dir) {
                Ok(path) => eprintln!("flight recorder dumped to {}", path.display()),
                Err(e) => eprintln!("flight recorder dump failed: {e}"),
            }
            previous(info);
        }));
    }
    // A pool that fails to load (corrupt store, version skew, missing
    // files) starts the server degraded instead of not at all: HEALTH
    // carries the typed load error as a non-ready state, so an operator
    // probing the port sees *why* instead of a connection refusal.
    let (service, input_dim, pool_error) = match load_standalone(dir) {
        Ok((mut pool, spec)) => {
            pool.set_resident_budget(resident_experts);
            poe_obs::FlightRecorder::global().record_for(
                0,
                "store.load",
                format!(
                    "dir={dir} experts={} resident_budget={resident_experts}",
                    pool.num_experts()
                ),
            );
            (
                std::sync::Arc::new(QueryService::builder(pool).build()),
                spec.input_dim,
                None,
            )
        }
        Err(e) => {
            eprintln!("warning: pool at {dir} failed to load: {e}");
            eprintln!("warning: serving DEGRADED — HEALTH reports ready=0, data verbs refuse");
            poe_obs::FlightRecorder::global().record_for(
                0,
                "store.degraded",
                format!("dir={dir} error={e}"),
            );
            let placeholder = poe_core::pool::ExpertPool::new(
                ClassHierarchy::contiguous(1, 1),
                poe_nn::layers::Sequential::new(),
            );
            (
                std::sync::Arc::new(QueryService::builder(placeholder).build()),
                0,
                Some(e.to_string()),
            )
        }
    };
    service.obs().trace.set_enabled(trace_on);
    if let Some(path) = a.get("trace-out") {
        // Stream every finished span as JSONL; implies tracing on (a
        // sink on a disabled collector would stay silent forever).
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create --trace-out {path}: {e}"))?;
        service
            .obs()
            .trace
            .set_sink(Box::new(std::io::BufWriter::new(file)));
        service.obs().trace.set_enabled(true);
    }
    if slow_ms > 0 {
        service
            .obs()
            .slow
            .set_threshold(Some(std::time::Duration::from_millis(slow_ms)));
    }
    if metrics_every > 0 {
        let svc = std::sync::Arc::clone(&service);
        poe_obs::spawn_flusher(std::time::Duration::from_secs(metrics_every), move || {
            eprintln!("METRICS {}", serve::metrics_json(&svc));
        });
    }
    let listener = std::net::TcpListener::bind(("127.0.0.1", port)).map_err(|e| e.to_string())?;
    println!(
        "serving pool {dir} on {} (input dim {input_dim}, {workers} workers, net={}, trace={}, \
         slow-query-ms={slow_ms}, idle-timeout-ms={idle_timeout_ms}, \
         queue-capacity={queue_capacity}) — protocol: INFO | QUERY t,… | \
         PREDICT t,… : f1 f2 … | STATS | METRICS | TRACE on|off | HEALTH | \
         SHUTDOWN | QUIT (docs/PROTOCOL.md)",
        listener.local_addr().map_err(|e| e.to_string())?,
        net.name(),
        if trace_on { "on" } else { "off" },
    );
    let server = serve::ServeConfig::builder()
        .workers(workers)
        .max_requests(max_requests)
        .idle_timeout(
            (idle_timeout_ms > 0).then(|| std::time::Duration::from_millis(idle_timeout_ms)),
        )
        .max_conn_requests(if max_conn_requests == 0 {
            u64::MAX
        } else {
            max_conn_requests
        })
        .queue_capacity(queue_capacity)
        .drain_deadline(std::time::Duration::from_millis(drain_deadline_ms))
        .pool_error(pool_error)
        .metrics_on_shutdown(true)
        .max_batch(max_batch)
        .batch_delay(std::time::Duration::from_micros(batch_delay_us))
        .recorder_events(recorder_events)
        .recorder_dir(recorder_dir)
        .net(net)
        .start(listener, std::sync::Arc::clone(&service), input_dim)
        .map_err(|e| e.to_string())?;
    let report = server.join().map_err(|e| e.to_string())?;
    // Flush the span sink so the trace file is complete on clean exit.
    service.obs().trace.flush_sink();
    println!(
        "served {} requests, shutting down{}",
        report.handled,
        if report.drain_timed_out {
            " (drain deadline hit; stragglers force-closed)"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_route(a: &Args) -> Result<(), String> {
    let spec = a.require("shards").map_err(|e| e.to_string())?;
    let map = poe_router::ShardMap::parse(spec)?;
    let port = a
        .get_parsed("port", 7879u16, "port number")
        .map_err(|e| e.to_string())?;
    let call_timeout_ms = a
        .get_parsed("call-timeout-ms", 1_000u64, "u64")
        .map_err(|e| e.to_string())?;
    let budget_ms = a
        .get_parsed("request-budget-ms", 3_000u64, "u64")
        .map_err(|e| e.to_string())?;
    let retries = a
        .get_parsed("retries", 3u32, "u32")
        .map_err(|e| e.to_string())?;
    if retries == 0 {
        return Err("--retries must be ≥ 1 (it counts total attempts)".into());
    }
    let backoff_base_ms = a
        .get_parsed("backoff-base-ms", 20u64, "u64")
        .map_err(|e| e.to_string())?;
    let backoff_cap_ms = a
        .get_parsed("backoff-cap-ms", 500u64, "u64")
        .map_err(|e| e.to_string())?;
    let breaker_failures = a
        .get_parsed("breaker-failures", 5u32, "u32")
        .map_err(|e| e.to_string())?;
    let breaker_cooldown_ms = a
        .get_parsed("breaker-cooldown-ms", 2_000u64, "u64")
        .map_err(|e| e.to_string())?;
    let health_ttl_ms = a
        .get_parsed("health-ttl-ms", 1_000u64, "u64")
        .map_err(|e| e.to_string())?;
    let seed = a
        .get_parsed("seed", 0u64, "u64")
        .map_err(|e| e.to_string())?;
    let idle_timeout_ms = a
        .get_parsed("idle-timeout-ms", 30_000u64, "u64")
        .map_err(|e| e.to_string())?;
    let drain_deadline_ms = a
        .get_parsed("drain-deadline-ms", 5_000u64, "u64")
        .map_err(|e| e.to_string())?;
    let max_requests = a
        .get_parsed("max-requests", u64::MAX, "u64")
        .map_err(|e| e.to_string())?;
    let recorder_dir = a.get("recorder-dir").map(std::path::PathBuf::from);
    let net = parse_net_flag(a)?;
    let hedge = match a.get("hedge-ms") {
        None => poe_router::Hedge::Off,
        Some(v) if v.eq_ignore_ascii_case("off") => poe_router::Hedge::Off,
        Some(v) if v.eq_ignore_ascii_case("auto") => {
            let floor = std::time::Duration::from_millis(2);
            // Tiny --call-timeout-ms would put the cap under the floor.
            let cap = std::time::Duration::from_millis(call_timeout_ms / 2).max(floor);
            poe_router::Hedge::Auto { floor, cap }
        }
        Some(v) => match v.parse::<u64>() {
            Ok(0) => poe_router::Hedge::Off,
            Ok(ms) => poe_router::Hedge::After(std::time::Duration::from_millis(ms)),
            Err(_) => {
                return Err(format!(
                    "--hedge-ms `{v}` is not a number, `auto`, or `off`"
                ))
            }
        },
    };
    let router_cfg = poe_router::RouterConfig {
        call_timeout: std::time::Duration::from_millis(call_timeout_ms),
        budget: std::time::Duration::from_millis(budget_ms),
        retry: poe_router::RetryPolicy {
            max_attempts: retries,
            base: std::time::Duration::from_millis(backoff_base_ms),
            cap: std::time::Duration::from_millis(backoff_cap_ms),
        },
        breaker_threshold: breaker_failures,
        breaker_cooldown: std::time::Duration::from_millis(breaker_cooldown_ms),
        hedge,
        health_ttl: std::time::Duration::from_millis(health_ttl_ms),
        seed,
    };
    let cfg = poe_cli::route::RouteConfig::builder()
        .router(router_cfg)
        .max_requests(max_requests)
        .idle_timeout(
            (idle_timeout_ms > 0).then(|| std::time::Duration::from_millis(idle_timeout_ms)),
        )
        .drain_deadline(std::time::Duration::from_millis(drain_deadline_ms))
        .recorder_dir(recorder_dir)
        .net(net)
        .build();
    let listener = std::net::TcpListener::bind(("127.0.0.1", port)).map_err(|e| e.to_string())?;
    println!(
        "routing {} shards on {} (net={}, hedge={:?}, retries={retries}, budget={budget_ms}ms) — \
         protocol: INFO | QUERY t,… | PREDICT t,… : f1 f2 … | LOGITS t,… : f1 f2 … | \
         HEALTH | METRICS | DUMP | SHUTDOWN | QUIT (docs/PROTOCOL.md)",
        map.num_shards(),
        listener.local_addr().map_err(|e| e.to_string())?,
        net.name(),
        cfg.router.hedge,
    );
    let server =
        poe_cli::route::RouteServer::start(listener, map, cfg).map_err(|e| e.to_string())?;
    let report = server.join().map_err(|e| e.to_string())?;
    println!(
        "routed {} requests, shutting down{}",
        report.handled,
        if report.drain_timed_out {
            " (drain deadline hit; stragglers force-closed)"
        } else {
            ""
        }
    );
    Ok(())
}

fn cmd_loadgen(a: &Args) -> Result<(), String> {
    let addr = a.require("addr").map_err(|e| e.to_string())?.to_string();
    let duration_ms = a
        .get_parsed("duration-ms", 2_000u64, "u64")
        .map_err(|e| e.to_string())?;
    let seed = a
        .get_parsed("seed", 42u64, "u64")
        .map_err(|e| e.to_string())?;
    let catalog_size = a
        .get_parsed("catalog", 32usize, "usize")
        .map_err(|e| e.to_string())?;
    let zipf_s = a
        .get_parsed("zipf", 1.1f64, "f64")
        .map_err(|e| e.to_string())?;
    let requests_per_conn = a
        .get_parsed("requests-per-conn", 256usize, "usize")
        .map_err(|e| e.to_string())?;
    let spec = a
        .get("tenants")
        .unwrap_or("steady=2;bursty=2;fanout=2;slowreader=1");
    let mut tenants = poe_loadgen::parse_tenants(spec)?;
    if let Some(p99) = a.get("p99-ms") {
        let p99: f64 = p99
            .parse()
            .map_err(|_| format!("--p99-ms wants a number, got `{p99}`"))?;
        for t in &mut tenants {
            t.slo.p99_ms = p99;
        }
    }
    if let Some(rate) = a.get("max-error-rate") {
        let rate: f64 = rate
            .parse()
            .map_err(|_| format!("--max-error-rate wants a number, got `{rate}`"))?;
        for t in &mut tenants {
            t.slo.max_error_rate = rate;
        }
    }

    let (num_tasks, input_dim) =
        poe_loadgen::probe(&addr).map_err(|e| format!("probe {addr}: {e}"))?;
    let plan_cfg = poe_loadgen::PlanConfig {
        seed,
        tenants,
        num_tasks,
        catalog_size,
        zipf_s,
        requests_per_conn,
    };
    let plan = poe_loadgen::Plan::build(&plan_cfg);
    eprintln!(
        "loadgen: {} conns over {} tenants against {addr} (tasks={num_tasks}, dim={input_dim}, \
         seed={seed}, zipf={zipf_s}, catalog={catalog_size}, {duration_ms}ms) …",
        plan.conns.len(),
        plan.tenants.len(),
    );
    let run_cfg = poe_loadgen::RunConfig {
        addr,
        duration: std::time::Duration::from_millis(duration_ms),
    };
    let report = poe_loadgen::run(&run_cfg, &plan, input_dim);

    println!(
        "{:<12} {:>8} {:>8} {:>6} {:>6} {:>8} {:>9} {:>9} {:>9} {:>10}  SLO",
        "tenant", "attempts", "ok", "err", "shed", "partial", "p50 ms", "p95 ms", "p99 ms", "req/s"
    );
    let mut failed: Vec<String> = Vec::new();
    for row in report.tenants.iter().chain(std::iter::once(&report.total)) {
        println!(
            "{:<12} {:>8} {:>8} {:>6} {:>6} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>10.1}  {}",
            row.tenant,
            row.attempts,
            row.ok,
            row.errors,
            row.shed,
            row.partial,
            row.p50_ns / 1e6,
            row.p95_ns / 1e6,
            row.p99_ns / 1e6,
            row.samples_per_sec,
            if row.slo_pass { "pass" } else { "FAIL" }
        );
        if !row.slo_pass && row.tenant != "total" {
            failed.push(row.tenant.clone());
        }
    }
    if let Some(path) = a.get("report") {
        poe_loadgen::write_report(path, &report).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("loadgen: wrote report to {path}");
    }
    if failed.is_empty() {
        Ok(())
    } else {
        Err(format!("SLO failed for tenants: {}", failed.join(", ")))
    }
}

fn run(tokens: Vec<String>) -> Result<(), String> {
    // `poe obs <action> …` nests a second command word, so it is routed
    // before the flat `Args` grammar sees the tokens.
    if tokens.first().is_some_and(|t| t == "obs") {
        return poe_cli::obs::run_obs(&tokens[1..]).map(|report| print!("{report}"));
    }
    let args = match Args::parse(tokens) {
        Ok(a) => a,
        Err(ArgError::MissingCommand) => {
            println!("{HELP}");
            return Ok(());
        }
        Err(e) => return Err(e.to_string()),
    };
    match args.command.as_str() {
        "preprocess" => cmd_preprocess(&args),
        "info" => cmd_info(&args),
        "query" => cmd_query(&args),
        "diagnose" => cmd_diagnose(&args),
        "serve" => cmd_serve(&args),
        "route" => cmd_route(&args),
        "loadgen" => cmd_loadgen(&args),
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}` (try `poe help`)")),
    }
}

fn main() -> ExitCode {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    match run(tokens) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_specs_parse() {
        assert!(dataset_from_spec("balanced:2x2", 1).is_ok());
        assert!(dataset_from_spec("balanced:2", 1).is_err());
        assert!(dataset_from_spec("balanced:0x2", 1).is_err());
        assert!(dataset_from_spec("nope", 1).is_err());
    }

    #[test]
    fn unknown_subcommand_is_an_error() {
        let r = run(vec!["frobnicate".into()]);
        assert!(r.unwrap_err().contains("unknown subcommand"));
    }

    #[test]
    fn obs_subcommand_is_routed_and_validates_its_action() {
        let err = run(vec!["obs".into()]).unwrap_err();
        assert!(err.contains("dump | tail | check"), "{err}");
        let err = run(argv(&["obs", "nope", "--file", "x"])).unwrap_err();
        assert!(err.contains("unknown obs action"), "{err}");
    }

    #[test]
    fn help_succeeds() {
        assert!(run(vec!["help".into()]).is_ok());
        assert!(run(vec![]).is_ok());
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    /// Full CLI lifecycle on a micro dataset: preprocess → info → query
    /// (+eval) → diagnose, all through the real command handlers.
    #[test]
    fn cli_lifecycle_round_trip() {
        let dir = std::env::temp_dir().join("poe_cli_lifecycle");
        std::fs::remove_dir_all(&dir).ok();
        let pool = dir.to_str().unwrap();

        run(argv(&[
            "preprocess",
            "--dataset",
            "balanced:3x2",
            "--out",
            pool,
            "--seed",
            "5",
            "--epochs",
            "4",
            "--trace",
            "on",
        ]))
        .expect("preprocess");

        run(argv(&["info", "--pool", pool])).expect("info");

        run(argv(&[
            "query",
            "--pool",
            pool,
            "--tasks",
            "0,2",
            "--eval-dataset",
            "balanced:3x2",
            "--seed",
            "5",
        ]))
        .expect("query");

        run(argv(&[
            "diagnose",
            "--pool",
            pool,
            "--dataset",
            "balanced:3x2",
            "--seed",
            "5",
        ]))
        .expect("diagnose");

        // Errors surface cleanly, not as panics.
        let err = run(argv(&["query", "--pool", pool, "--tasks", "9"])).unwrap_err();
        assert!(err.contains("unknown primitive task"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
