//! `poe route` — the sharded scatter/gather front tier.
//!
//! Speaks the same line protocol as `poe serve` (see docs/PROTOCOL.md
//! § The router tier), but answers by scattering sub-requests across a
//! static [`ShardMap`] of `poe serve` backends and merging the logit
//! slices at the edge. All the robustness machinery — retries, hedging,
//! circuit breakers, partial degradation — lives in `poe-router`
//! ([`Router`]); this module is the TCP shell around it: bounded line
//! reads, idle timeouts, graceful drain, and the verb → response-line
//! rendering.
//!
//! A router connection is handled by its own thread (the tier is
//! I/O-bound fan-out, not CPU work, so a worker pool buys nothing), and
//! `SHUTDOWN` drains in-flight scatters before the backend connections
//! are closed — a client mid-`PREDICT` gets its answer, then the
//! sockets go away.

use crate::serve::{jittered_retry_after_ms, parse_tasks, BoundedLineReader, ReadLine};
use crate::wire::WireError;
use poe_router::{join, GatherError, Router, RouterConfig, ShardMap};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Front-tier tuning knobs. The scatter/gather engine has its own
/// [`RouterConfig`] nested inside.
#[derive(Debug, Clone)]
pub struct RouteConfig {
    /// Engine knobs: deadlines, retries, breakers, hedging.
    pub router: RouterConfig,
    /// Shut down after this many requests (`u64::MAX` = run forever).
    pub max_requests: u64,
    /// Request-line byte cap (same hardening as `poe serve`).
    pub max_line_bytes: usize,
    /// Close a connection with no complete request line within this
    /// window (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// How long `SHUTDOWN` waits for in-flight requests before
    /// force-closing stragglers.
    pub drain_deadline: Duration,
    /// Base for the jittered `retry_after_ms` hint in drain refusals.
    pub retry_after_ms: u64,
    /// Dump the flight recorder here on shutdown (and for `DUMP`).
    pub recorder_dir: Option<PathBuf>,
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            router: RouterConfig::default(),
            max_requests: u64::MAX,
            max_line_bytes: 8192,
            idle_timeout: Some(Duration::from_millis(30_000)),
            drain_deadline: Duration::from_millis(5_000),
            retry_after_ms: 100,
            recorder_dir: None,
        }
    }
}

/// What `join` reports after a clean exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteReport {
    /// Requests answered over the server's lifetime.
    pub handled: u64,
    /// Whether the drain deadline was hit (stragglers force-closed).
    pub drain_timed_out: bool,
}

struct RouteShared {
    router: Router,
    cfg: RouteConfig,
    addr: SocketAddr,
    draining: AtomicBool,
    handled: AtomicU64,
    /// Requests currently between read and response-written (the drain
    /// waits for this to hit zero before closing backends).
    inflight: AtomicUsize,
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    conns_alive: AtomicUsize,
    accept_error: Mutex<Option<std::io::Error>>,
}

impl RouteShared {
    fn lock_conns(&self) -> std::sync::MutexGuard<'_, HashMap<u64, TcpStream>> {
        self.conns.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn trigger_shutdown(&self) {
        if self.draining.swap(true, Ordering::AcqRel) {
            return;
        }
        self.router
            .obs()
            .flight
            .record("router.drain.begin", String::new());
        // Wake the acceptor out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
    }

    fn force_close_conns(&self) {
        for stream in self.lock_conns().values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// A running router front tier: acceptor + one thread per connection.
pub struct RouteServer {
    shared: Arc<RouteShared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

/// A cloneable remote control for a [`RouteServer`].
#[derive(Clone)]
pub struct RouteHandle {
    shared: Arc<RouteShared>,
}

impl RouteHandle {
    /// Requests a graceful shutdown (idempotent, returns immediately;
    /// the drain happens in [`RouteServer::join`]).
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Whether a shutdown has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Requests answered so far.
    pub fn handled(&self) -> u64 {
        self.shared.handled.load(Ordering::Acquire)
    }
}

impl RouteServer {
    /// Binds the front tier to `listener` and starts accepting.
    pub fn start(
        listener: TcpListener,
        map: ShardMap,
        cfg: RouteConfig,
    ) -> std::io::Result<RouteServer> {
        let addr = listener.local_addr()?;
        let obs = poe_obs::Observability::new();
        let router = Router::new(map, cfg.router, obs);
        router.obs().flight.record(
            "router.start",
            format!("addr={addr} shards={}", router.map().num_shards()),
        );
        let shared = Arc::new(RouteShared {
            router,
            cfg,
            addr,
            draining: AtomicBool::new(false),
            handled: AtomicU64::new(0),
            inflight: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            conns_alive: AtomicUsize::new(0),
            accept_error: Mutex::new(None),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("poe-route-acceptor".into())
                .spawn(move || acceptor_loop(listener, shared))
                .expect("spawn route acceptor")
        };
        Ok(RouteServer {
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// A cloneable control handle (usable from other threads).
    pub fn handle(&self) -> RouteHandle {
        RouteHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The engine, for tests that inspect breaker or metric state.
    pub fn router(&self) -> &Router {
        &self.shared.router
    }

    /// Blocks until the request budget is spent or a shutdown is
    /// requested, then drains: in-flight requests finish (within the
    /// drain deadline), backend connections close, client connections
    /// close, threads join.
    pub fn join(mut self) -> std::io::Result<RouteReport> {
        while !self.shared.draining.load(Ordering::Acquire)
            && self.shared.handled.load(Ordering::Acquire) < self.shared.cfg.max_requests
            && self
                .shared
                .accept_error
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_none()
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.shared.trigger_shutdown();

        // Drain order matters: first let in-flight scatters finish (a
        // client mid-PREDICT gets its answer), only then close the
        // backend sockets, and last force the client connections shut.
        let deadline = Instant::now() + self.shared.cfg.drain_deadline;
        let mut drain_timed_out = false;
        while self.shared.inflight.load(Ordering::Acquire) > 0 {
            if Instant::now() >= deadline {
                drain_timed_out = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        self.shared.router.close_backends();
        self.shared.force_close_conns();
        while self.shared.conns_alive.load(Ordering::Acquire) > 0 {
            if Instant::now() >= deadline + Duration::from_millis(500) {
                break; // belt and braces; threads die with their sockets
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        let flight = &self.shared.router.obs().flight;
        flight.record(
            "router.shutdown",
            format!("handled={}", self.shared.handled.load(Ordering::Acquire)),
        );
        if let Some(dir) = &self.shared.cfg.recorder_dir {
            match flight.dump_to_dir(dir) {
                Ok(path) => eprintln!("flight recorder dumped to {}", path.display()),
                Err(e) => eprintln!("flight recorder dump failed: {e}"),
            }
        }
        if let Some(e) = self
            .shared
            .accept_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            return Err(e);
        }
        Ok(RouteReport {
            handled: self.shared.handled.load(Ordering::Acquire),
            drain_timed_out,
        })
    }
}

fn acceptor_loop(listener: TcpListener, shared: Arc<RouteShared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.draining.load(Ordering::Acquire) {
                    break; // the shutdown wake-up (or a late client)
                }
                shared.conns_alive.fetch_add(1, Ordering::AcqRel);
                let shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("poe-route-conn".into())
                    .spawn(move || {
                        handle_conn(stream, &shared);
                        shared.conns_alive.fetch_sub(1, Ordering::AcqRel);
                    });
            }
            Err(e) => {
                *shared
                    .accept_error
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner) = Some(e);
                break;
            }
        }
    }
}

/// One `write` syscall for payload + newline — a split write leaves the
/// trailing byte queued behind Nagle until the peer's delayed ACK.
fn send_line(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    writer.write_all(&buf)
}

fn handle_conn(stream: TcpStream, shared: &Arc<RouteShared>) {
    let cfg = &shared.cfg;
    let _ = stream.set_nodelay(true);
    if let Some(t) = cfg.idle_timeout {
        let _ = stream.set_read_timeout(Some(t));
        let _ = stream.set_write_timeout(Some(t));
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let conn_id = shared.next_conn.fetch_add(1, Ordering::AcqRel);
    if let Ok(registered) = stream.try_clone() {
        shared.lock_conns().insert(conn_id, registered);
    }
    let mut reader = BoundedLineReader::new(stream, cfg.max_line_bytes);
    loop {
        if shared.draining.load(Ordering::Acquire) {
            let refusal = WireError::ShuttingDown {
                retry_after_ms: jittered_retry_after_ms(cfg.retry_after_ms),
            };
            let _ = send_line(&mut writer, &refusal.line());
            break;
        }
        let line = match reader.read_line() {
            ReadLine::Line(l) => l,
            ReadLine::TooLong => {
                let oversize = WireError::LineTooLong {
                    max_bytes: cfg.max_line_bytes,
                };
                let _ = send_line(&mut writer, &oversize.line());
                break;
            }
            ReadLine::TimedOut => {
                let _ = send_line(&mut writer, &WireError::IdleTimeout.line());
                break;
            }
            ReadLine::Closed => break,
        };
        shared.inflight.fetch_add(1, Ordering::AcqRel);
        // Re-check after the increment is visible: a request being read
        // when the drain triggered can pass the loop-top check while
        // join() observes inflight==0 and starts closing backends; it
        // must refuse here rather than scatter against dying sockets.
        if shared.draining.load(Ordering::Acquire) {
            shared.inflight.fetch_sub(1, Ordering::AcqRel);
            let refusal = WireError::ShuttingDown {
                retry_after_ms: jittered_retry_after_ms(cfg.retry_after_ms),
            };
            let _ = send_line(&mut writer, &refusal.line());
            break;
        }
        let rid = poe_obs::next_request_id();
        let flight = Arc::clone(&shared.router.obs().flight);
        flight.record_for(rid, "request.start", format!("line={line}"));
        let action = respond_route(shared, &line, rid);
        let write_ok = send_line(&mut writer, action.line()).is_ok();
        flight.record_for(
            rid,
            "request.end",
            format!("outcome={}", action.line().split(' ').next().unwrap_or("?")),
        );
        shared.inflight.fetch_sub(1, Ordering::AcqRel);
        let handled = shared.handled.fetch_add(1, Ordering::AcqRel) + 1;
        if handled >= shared.cfg.max_requests {
            shared.trigger_shutdown();
        }
        match action {
            Action::Reply(_) if write_ok => {}
            Action::Reply(_) => break,
            Action::Close(_) => break,
            Action::Shutdown(_) => {
                shared.trigger_shutdown();
                break;
            }
        }
    }
    shared.lock_conns().remove(&conn_id);
}

/// One request's rendered outcome.
enum Action {
    /// Answer and keep the connection open.
    Reply(String),
    /// Answer and close this connection (`QUIT`).
    Close(String),
    /// Answer, then begin the drain (`SHUTDOWN`).
    Shutdown(String),
}

impl Action {
    fn line(&self) -> &str {
        match self {
            Action::Reply(l) | Action::Close(l) | Action::Shutdown(l) => l,
        }
    }
}

/// Renders one request line against the engine. Split out of the
/// connection loop so unit tests can drive verbs without sockets.
fn respond_route(shared: &RouteShared, line: &str, rid: u64) -> Action {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Action::Reply(WireError::EmptyRequest.line());
    }
    let (verb_raw, rest) = match trimmed.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (trimmed, ""),
    };
    let verb = verb_raw.to_ascii_uppercase();
    let router = &shared.router;
    let reply = match verb.as_str() {
        "INFO" => match router.info(rid) {
            Ok((tasks, experts, classes)) => {
                format!("OK tasks={tasks} experts={experts} classes={classes}")
            }
            Err(e) => gather_err_line(e),
        },
        "QUERY" => match parse_tasks(rest) {
            Err(e) => e.line(),
            Ok(tasks) => match router.query(&tasks, rid) {
                Ok(q) => format!(
                    "OK outputs={} params={} assembly_ms={:.3} cached={} classes={} tasks={}",
                    q.outputs,
                    q.params,
                    q.assembly_ms,
                    u8::from(q.cached),
                    join(&q.classes),
                    join(&q.tasks)
                ),
                Err(e) => gather_err_line(e),
            },
        },
        "PREDICT" => match split_features(rest, WireError::PredictSyntax) {
            Err(e) => e.line(),
            Ok((tasks, features)) => match router.predict(&tasks, features, rid) {
                Ok(p) if p.missing.is_empty() => format!(
                    "OK class={} task={} confidence={:.4}",
                    p.class, p.task, p.confidence
                ),
                Ok(p) => format!(
                    "OK partial shards={}/{} missing={} class={} task={} confidence={:.4}",
                    p.shards_ok,
                    p.shards_total,
                    join(&p.missing),
                    p.class,
                    p.task,
                    p.confidence
                ),
                Err(e) => gather_err_line(e),
            },
        },
        "LOGITS" => match split_features(rest, WireError::LogitsSyntax) {
            Err(e) => e.line(),
            Ok((tasks, features)) => match router.logits(&tasks, features, rid) {
                Ok(l) => format!(
                    "OK logits={} classes={} tasks={}",
                    l.logits
                        .iter()
                        .map(|v| format!("{v:.6}"))
                        .collect::<Vec<_>>()
                        .join(","),
                    join(&l.classes),
                    join(&l.tasks)
                ),
                Err(e) => gather_err_line(e),
            },
        },
        "HEALTH" => health_line(shared),
        "METRICS" => format!("OK {}", router.obs().registry.snapshot().to_json()),
        "DUMP" => {
            let flight = &router.obs().flight;
            let dir = shared
                .cfg
                .recorder_dir
                .clone()
                .unwrap_or_else(std::env::temp_dir);
            match flight.dump_to_dir(&dir) {
                Ok(path) => format!(
                    "OK dump path={} events={} dropped={}",
                    path.display(),
                    flight.len(),
                    flight.dropped()
                ),
                Err(e) => WireError::DumpFailed(e.to_string()).line(),
            }
        }
        "SHUTDOWN" => return Action::Shutdown("OK shutting down".into()),
        "QUIT" => return Action::Close("OK bye".into()),
        _ => WireError::UnknownVerb(verb_raw.to_string()).line(),
    };
    Action::Reply(reply)
}

/// Splits `tasks : features` for `PREDICT`/`LOGITS`; the features stay a
/// raw string — the shards validate them (the router has no input dim).
fn split_features(rest: &str, on_missing: WireError) -> Result<(Vec<usize>, &str), WireError> {
    let (lhs, rhs) = rest.split_once(':').ok_or(on_missing)?;
    Ok((parse_tasks(lhs.trim())?, rhs.trim()))
}

fn gather_err_line(e: GatherError) -> String {
    match e {
        GatherError::NoShardForTask(t) => WireError::NoShardForTask(t).line(),
        GatherError::ShardUnavailable(f) => WireError::ShardUnavailable {
            shard: f.shard,
            detail: f.detail,
        }
        .line(),
        GatherError::Protocol { shard, line } => WireError::ShardUnavailable {
            shard,
            detail: format!("unparseable response `{line}`"),
        }
        .line(),
        GatherError::Forwarded(line) => line,
    }
}

/// The router-flavored `HEALTH` line: same leading `live=`/`ready=`
/// fields as a shard (probes parse the prefix identically), then
/// `role=router` and the aggregate shard view.
fn health_line(shared: &RouteShared) -> String {
    let (up, total) = shared.router.shards_up();
    let draining = shared.draining.load(Ordering::Acquire);
    let ready = up == total && total > 0 && !draining;
    format!(
        "OK live=1 ready={} role=router shards={total} shards_up={up}/{total} draining={} inflight={}",
        u8::from(ready),
        u8::from(draining),
        shared.inflight.load(Ordering::Acquire)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_shared(spec: &str) -> RouteShared {
        let map = ShardMap::parse(spec).unwrap();
        let cfg = RouteConfig {
            router: RouterConfig {
                // Nothing listens on the test addresses: keep the
                // budget tiny so unavailability is decided fast.
                call_timeout: Duration::from_millis(50),
                budget: Duration::from_millis(100),
                retry: poe_router::RetryPolicy {
                    max_attempts: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        RouteShared {
            router: Router::new(map, cfg.router, poe_obs::Observability::new()),
            cfg,
            addr: "127.0.0.1:0".parse().unwrap(),
            draining: AtomicBool::new(false),
            handled: AtomicU64::new(0),
            inflight: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            conns_alive: AtomicUsize::new(0),
            accept_error: Mutex::new(None),
        }
    }

    #[test]
    fn syntax_errors_render_without_backends() {
        let s = test_shared("0-9=127.0.0.1:9");
        assert_eq!(respond_route(&s, "", 1).line(), "ERR empty request");
        assert!(respond_route(&s, "FROB 1", 1)
            .line()
            .starts_with("ERR unknown verb"));
        assert_eq!(
            respond_route(&s, "PREDICT 1 2 3", 1).line(),
            WireError::PredictSyntax.line()
        );
        assert_eq!(
            respond_route(&s, "LOGITS 1", 1).line(),
            WireError::LogitsSyntax.line()
        );
        assert_eq!(
            respond_route(&s, "QUERY 99", 1).line(),
            "ERR no shard for task 99"
        );
        assert!(matches!(respond_route(&s, "QUIT", 1), Action::Close(_)));
        assert!(matches!(
            respond_route(&s, "SHUTDOWN", 1),
            Action::Shutdown(_)
        ));
    }

    #[test]
    fn dead_shard_renders_the_documented_err_row() {
        let s = test_shared("0-9=127.0.0.1:9");
        let line = respond_route(&s, "QUERY 1,2", 7).line().to_string();
        assert!(line.starts_with("ERR shard 0 unavailable: "), "{line}");
    }

    #[test]
    fn health_reports_router_role_and_aggregate() {
        let s = test_shared("0-4=127.0.0.1:9;5-9=127.0.0.1:9");
        let line = health_line(&s);
        assert!(
            line.starts_with("OK live=1 ready=0 role=router shards=2"),
            "{line}"
        );
        assert!(line.contains("shards_up=0/2"), "{line}");
        assert!(line.contains("draining=0"), "{line}");
        s.draining.store(true, Ordering::Release);
        assert!(health_line(&s).contains("draining=1"));
    }

    #[test]
    fn partial_rendering_matches_the_protocol_doc() {
        // Render the partial row from a hand-built GatheredPredict so the
        // format stays pinned even without live shards.
        let p = poe_router::GatheredPredict {
            class: 3,
            task: 1,
            confidence: 0.875,
            shards_ok: 1,
            shards_total: 2,
            missing: vec![4, 5],
        };
        let line = format!(
            "OK partial shards={}/{} missing={} class={} task={} confidence={:.4}",
            p.shards_ok,
            p.shards_total,
            join(&p.missing),
            p.class,
            p.task,
            p.confidence
        );
        assert_eq!(
            line,
            "OK partial shards=1/2 missing=4,5 class=3 task=1 confidence=0.8750"
        );
    }
}
