//! `poe route` — the sharded scatter/gather front tier.
//!
//! Speaks the same line protocol as `poe serve` (see docs/PROTOCOL.md
//! § The router tier), but answers by scattering sub-requests across a
//! static [`ShardMap`] of `poe serve` backends and merging the logit
//! slices at the edge. All the robustness machinery — retries, hedging,
//! circuit breakers, partial degradation — lives in `poe-router`
//! ([`Router`]); this module is the TCP shell around it: bounded line
//! reads, idle timeouts, graceful drain, and the verb → response-line
//! rendering.
//!
//! A router connection is handled by its own thread (the tier is
//! I/O-bound fan-out, not CPU work, so a worker pool buys nothing), and
//! `SHUTDOWN` drains in-flight scatters before the backend connections
//! are closed — a client mid-`PREDICT` gets its answer, then the
//! sockets go away.

use crate::serve::{jittered_retry_after_ms, NetBackend};
use crate::wire::{self, MetricsFormat, Request, WireError};
use poe_net::{
    send_line, After, ConnToken, EventLoop, LineReader, LoopConfig, NetEvent, NetService,
    ReadOutcome, Refusal,
};
use poe_router::{join, GatherError, Router, RouterConfig, ShardMap};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Front-tier tuning knobs. The scatter/gather engine has its own
/// [`RouterConfig`] nested inside.
#[derive(Debug, Clone)]
pub struct RouteConfig {
    /// Engine knobs: deadlines, retries, breakers, hedging.
    pub router: RouterConfig,
    /// Shut down after this many requests (`u64::MAX` = run forever).
    pub max_requests: u64,
    /// Request-line byte cap (same hardening as `poe serve`).
    pub max_line_bytes: usize,
    /// Close a connection with no complete request line within this
    /// window (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// How long `SHUTDOWN` waits for in-flight requests before
    /// force-closing stragglers.
    pub drain_deadline: Duration,
    /// Base for the jittered `retry_after_ms` hint in drain refusals.
    pub retry_after_ms: u64,
    /// Dump the flight recorder here on shutdown (and for `DUMP`).
    pub recorder_dir: Option<PathBuf>,
    /// Transport backend (`--net threads|epoll`); the default honors
    /// `POE_NET`, same as `poe serve`.
    pub net: NetBackend,
    /// Dispatch worker threads for the epoll backend (the threads
    /// backend is one thread per connection and ignores this).
    pub workers: usize,
    /// Concurrent-connection cap for the epoll backend; excess
    /// connections are shed with `ERR busy`.
    pub max_conns: usize,
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            router: RouterConfig::default(),
            max_requests: u64::MAX,
            max_line_bytes: 8192,
            idle_timeout: Some(Duration::from_millis(30_000)),
            drain_deadline: Duration::from_millis(5_000),
            retry_after_ms: 100,
            recorder_dir: None,
            net: NetBackend::from_env(),
            workers: 8,
            max_conns: crate::serve::DEFAULT_MAX_CONNS,
        }
    }
}

impl RouteConfig {
    /// Starts a fluent build from the defaults:
    /// `RouteConfig::builder().router(engine_cfg).build()`.
    pub fn builder() -> RouteConfigBuilder {
        RouteConfigBuilder {
            cfg: RouteConfig::default(),
        }
    }
}

/// Fluent builder for [`RouteConfig`], mirroring
/// [`ServeConfig::builder`](crate::serve::ServeConfig::builder): every
/// knob is a named setter, unset knobs keep their [`Default`] values,
/// and [`RouteConfigBuilder::start`] builds and starts the front tier
/// in one call.
#[derive(Debug, Clone)]
pub struct RouteConfigBuilder {
    cfg: RouteConfig,
}

impl RouteConfigBuilder {
    /// Engine knobs: deadlines, retries, breakers, hedging.
    pub fn router(mut self, r: RouterConfig) -> Self {
        self.cfg.router = r;
        self
    }

    /// Shut down after this many requests (`u64::MAX` = run forever).
    pub fn max_requests(mut self, n: u64) -> Self {
        self.cfg.max_requests = n;
        self
    }

    /// Request-line byte cap.
    pub fn max_line_bytes(mut self, n: usize) -> Self {
        self.cfg.max_line_bytes = n;
        self
    }

    /// Idle-connection deadline; `None` disables it.
    pub fn idle_timeout(mut self, t: Option<Duration>) -> Self {
        self.cfg.idle_timeout = t;
        self
    }

    /// How long `SHUTDOWN` waits for in-flight requests.
    pub fn drain_deadline(mut self, t: Duration) -> Self {
        self.cfg.drain_deadline = t;
        self
    }

    /// Base for the jittered `retry_after_ms` hint in drain refusals.
    pub fn retry_after_ms(mut self, ms: u64) -> Self {
        self.cfg.retry_after_ms = ms;
        self
    }

    /// Dump the flight recorder here on shutdown (and for `DUMP`).
    pub fn recorder_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.cfg.recorder_dir = dir;
        self
    }

    /// Transport backend (`threads` or `epoll`).
    pub fn net(mut self, net: NetBackend) -> Self {
        self.cfg.net = net;
        self
    }

    /// Dispatch worker threads for the epoll backend (clamped to ≥ 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.cfg.workers = n.max(1);
        self
    }

    /// Concurrent-connection cap for the epoll backend.
    pub fn max_conns(mut self, n: usize) -> Self {
        self.cfg.max_conns = n;
        self
    }

    /// The finished configuration.
    pub fn build(self) -> RouteConfig {
        self.cfg
    }

    /// Builds the config and starts the router front tier in one call.
    pub fn start(self, listener: TcpListener, map: ShardMap) -> std::io::Result<RouteServer> {
        RouteServer::start(listener, map, self.build())
    }
}

/// What `join` reports after a clean exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteReport {
    /// Requests answered over the server's lifetime.
    pub handled: u64,
    /// Whether the drain deadline was hit (stragglers force-closed).
    pub drain_timed_out: bool,
}

struct RouteShared {
    router: Router,
    cfg: RouteConfig,
    addr: SocketAddr,
    draining: AtomicBool,
    handled: AtomicU64,
    /// Requests currently between read and response-written (the drain
    /// waits for this to hit zero before closing backends).
    inflight: AtomicUsize,
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    conns_alive: AtomicUsize,
    accept_error: Mutex<Option<std::io::Error>>,
    /// Set once when the epoll backend starts; shutdown and force-close
    /// route through the event loop instead of the conns map.
    net_handle: OnceLock<poe_net::LoopHandle>,
}

impl RouteShared {
    fn lock_conns(&self) -> std::sync::MutexGuard<'_, HashMap<u64, TcpStream>> {
        self.conns.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn trigger_shutdown(&self) {
        if self.draining.swap(true, Ordering::AcqRel) {
            return;
        }
        self.router
            .obs()
            .flight
            .record("router.drain.begin", String::new());
        if let Some(h) = self.net_handle.get() {
            h.shutdown();
        } else {
            // Wake the acceptor out of its blocking accept().
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn force_close_conns(&self) {
        if let Some(h) = self.net_handle.get() {
            h.force_close();
            return;
        }
        for stream in self.lock_conns().values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// A running router front tier: either an acceptor plus one thread per
/// connection (threads backend), or a `poe-net` event loop feeding a
/// dispatch pool (epoll backend).
pub struct RouteServer {
    shared: Arc<RouteShared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    event_loop: Option<EventLoop>,
    dispatchers: Vec<std::thread::JoinHandle<()>>,
    net_svc: Option<Arc<RouteNetService>>,
}

/// A cloneable remote control for a [`RouteServer`].
#[derive(Clone)]
pub struct RouteHandle {
    shared: Arc<RouteShared>,
}

impl RouteHandle {
    /// Requests a graceful shutdown (idempotent, returns immediately;
    /// the drain happens in [`RouteServer::join`]).
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Whether a shutdown has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Requests answered so far.
    pub fn handled(&self) -> u64 {
        self.shared.handled.load(Ordering::Acquire)
    }
}

impl RouteServer {
    /// Binds the front tier to `listener` and starts accepting.
    pub fn start(
        listener: TcpListener,
        map: ShardMap,
        cfg: RouteConfig,
    ) -> std::io::Result<RouteServer> {
        let addr = listener.local_addr()?;
        let obs = poe_obs::Observability::new();
        let net = if cfg.net == NetBackend::Epoll && poe_net::epoll_supported() {
            NetBackend::Epoll
        } else {
            NetBackend::Threads
        };
        let workers_n = cfg.workers.max(1);
        let router = Router::new(map, cfg.router, obs);
        router.obs().flight.record(
            "router.start",
            format!(
                "addr={addr} shards={} net={}",
                router.map().num_shards(),
                net.name()
            ),
        );
        let shared = Arc::new(RouteShared {
            router,
            cfg,
            addr,
            draining: AtomicBool::new(false),
            handled: AtomicU64::new(0),
            inflight: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            conns_alive: AtomicUsize::new(0),
            accept_error: Mutex::new(None),
            net_handle: OnceLock::new(),
        });
        if net == NetBackend::Epoll {
            return RouteServer::start_epoll(listener, shared, workers_n);
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("poe-route-acceptor".into())
                .spawn(move || acceptor_loop(listener, shared))
                .expect("spawn route acceptor")
        };
        Ok(RouteServer {
            shared,
            acceptor: Some(acceptor),
            event_loop: None,
            dispatchers: Vec::new(),
            net_svc: None,
        })
    }

    /// The epoll variant: the event loop owns every client socket; the
    /// dispatch pool runs the scatter/gather engine.
    fn start_epoll(
        listener: TcpListener,
        shared: Arc<RouteShared>,
        workers_n: usize,
    ) -> std::io::Result<RouteServer> {
        let obs = shared.router.obs();
        let loop_cfg = LoopConfig {
            max_line_bytes: shared.cfg.max_line_bytes,
            idle_timeout: shared.cfg.idle_timeout,
            max_conns: shared.cfg.max_conns.max(1),
            max_conn_requests: u64::MAX,
            drain_deadline: shared.cfg.drain_deadline,
            metrics: Some(poe_net::NetMetrics::register(&obs.registry)),
            flight: Some(Arc::clone(&obs.flight)),
        };
        let (tx, rx) = channel::<(ConnToken, String)>();
        let svc = Arc::new(RouteNetService {
            shared: Arc::clone(&shared),
            tx: Mutex::new(Some(tx)),
            completions: OnceLock::new(),
        });
        let event_loop = EventLoop::start(listener, svc.clone(), loop_cfg)?;
        let handle = event_loop.handle();
        svc.completions
            .set(handle.completions())
            .expect("completions set once");
        shared
            .net_handle
            .set(handle)
            .expect("one event loop per route server");
        let rx = Arc::new(Mutex::new(rx));
        let mut dispatchers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let rx = Arc::clone(&rx);
            let svc = Arc::clone(&svc);
            dispatchers.push(
                std::thread::Builder::new()
                    .name(format!("poe-route-dispatch-{i}"))
                    .spawn(move || route_dispatch_worker(rx, svc))
                    .expect("spawn route dispatch worker"),
            );
        }
        Ok(RouteServer {
            shared,
            acceptor: None,
            event_loop: Some(event_loop),
            dispatchers,
            net_svc: Some(svc),
        })
    }

    /// A cloneable control handle (usable from other threads).
    pub fn handle(&self) -> RouteHandle {
        RouteHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The engine, for tests that inspect breaker or metric state.
    pub fn router(&self) -> &Router {
        &self.shared.router
    }

    /// Blocks until the request budget is spent or a shutdown is
    /// requested, then drains: in-flight requests finish (within the
    /// drain deadline), backend connections close, client connections
    /// close, threads join.
    pub fn join(mut self) -> std::io::Result<RouteReport> {
        while !self.shared.draining.load(Ordering::Acquire)
            && self.shared.handled.load(Ordering::Acquire) < self.shared.cfg.max_requests
            && self
                .shared
                .accept_error
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_none()
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.shared.trigger_shutdown();

        let mut drain_timed_out = false;
        if let Some(event_loop) = self.event_loop.take() {
            // Epoll: the loop's own drain lets in-flight scatters finish
            // (a client mid-PREDICT gets its answer) and force-closes
            // stragglers at its deadline; only after it exits do the
            // backend sockets close and the dispatch pool stop.
            let report = event_loop.join();
            drain_timed_out = report.drain_timed_out;
            if let Some(msg) = report.accept_error {
                let mut slot = self
                    .shared
                    .accept_error
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                if slot.is_none() {
                    *slot = Some(std::io::Error::other(msg));
                }
            }
            self.shared.router.close_backends();
            if let Some(svc) = self.net_svc.take() {
                svc.close();
            }
            for d in self.dispatchers.drain(..) {
                let _ = d.join();
            }
        } else {
            // Threads drain order matters: first let in-flight scatters
            // finish, only then close the backend sockets, and last
            // force the client connections shut.
            let deadline = Instant::now() + self.shared.cfg.drain_deadline;
            while self.shared.inflight.load(Ordering::Acquire) > 0 {
                if Instant::now() >= deadline {
                    drain_timed_out = true;
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            self.shared.router.close_backends();
            self.shared.force_close_conns();
            while self.shared.conns_alive.load(Ordering::Acquire) > 0 {
                if Instant::now() >= deadline + Duration::from_millis(500) {
                    break; // belt and braces; threads die with their sockets
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        let flight = &self.shared.router.obs().flight;
        flight.record(
            "router.shutdown",
            format!("handled={}", self.shared.handled.load(Ordering::Acquire)),
        );
        if let Some(dir) = &self.shared.cfg.recorder_dir {
            match flight.dump_to_dir(dir) {
                Ok(path) => eprintln!("flight recorder dumped to {}", path.display()),
                Err(e) => eprintln!("flight recorder dump failed: {e}"),
            }
        }
        if let Some(e) = self
            .shared
            .accept_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            return Err(e);
        }
        Ok(RouteReport {
            handled: self.shared.handled.load(Ordering::Acquire),
            drain_timed_out,
        })
    }
}

fn acceptor_loop(listener: TcpListener, shared: Arc<RouteShared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.draining.load(Ordering::Acquire) {
                    break; // the shutdown wake-up (or a late client)
                }
                shared.conns_alive.fetch_add(1, Ordering::AcqRel);
                let shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("poe-route-conn".into())
                    .spawn(move || {
                        handle_conn(stream, &shared);
                        shared.conns_alive.fetch_sub(1, Ordering::AcqRel);
                    });
            }
            Err(e) => {
                *shared
                    .accept_error
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner) = Some(e);
                break;
            }
        }
    }
}

fn handle_conn(stream: TcpStream, shared: &Arc<RouteShared>) {
    let cfg = &shared.cfg;
    let _ = stream.set_nodelay(true);
    if let Some(t) = cfg.idle_timeout {
        let _ = stream.set_read_timeout(Some(t));
        let _ = stream.set_write_timeout(Some(t));
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let conn_id = shared.next_conn.fetch_add(1, Ordering::AcqRel);
    if let Ok(registered) = stream.try_clone() {
        shared.lock_conns().insert(conn_id, registered);
    }
    let mut reader = LineReader::new(stream, cfg.max_line_bytes);
    loop {
        if shared.draining.load(Ordering::Acquire) {
            let refusal = WireError::ShuttingDown {
                retry_after_ms: jittered_retry_after_ms(cfg.retry_after_ms),
            };
            let _ = send_line(&mut writer, &refusal.line());
            break;
        }
        let line = match reader.read_line() {
            ReadOutcome::Line(l) => l,
            ReadOutcome::TooLong => {
                let oversize = WireError::LineTooLong {
                    max_bytes: cfg.max_line_bytes,
                };
                let _ = send_line(&mut writer, &oversize.line());
                break;
            }
            ReadOutcome::TimedOut => {
                let _ = send_line(&mut writer, &WireError::IdleTimeout.line());
                break;
            }
            ReadOutcome::Closed => break,
        };
        shared.inflight.fetch_add(1, Ordering::AcqRel);
        // Re-check after the increment is visible: a request being read
        // when the drain triggered can pass the loop-top check while
        // join() observes inflight==0 and starts closing backends; it
        // must refuse here rather than scatter against dying sockets.
        if shared.draining.load(Ordering::Acquire) {
            shared.inflight.fetch_sub(1, Ordering::AcqRel);
            let refusal = WireError::ShuttingDown {
                retry_after_ms: jittered_retry_after_ms(cfg.retry_after_ms),
            };
            let _ = send_line(&mut writer, &refusal.line());
            break;
        }
        let rid = poe_obs::next_request_id();
        let flight = Arc::clone(&shared.router.obs().flight);
        flight.record_for(rid, "request.start", format!("line={line}"));
        let action = respond_route(shared, &line, rid);
        let write_ok = send_line(&mut writer, action.line()).is_ok();
        flight.record_for(
            rid,
            "request.end",
            format!("outcome={}", action.line().split(' ').next().unwrap_or("?")),
        );
        shared.inflight.fetch_sub(1, Ordering::AcqRel);
        let handled = shared.handled.fetch_add(1, Ordering::AcqRel) + 1;
        if handled >= shared.cfg.max_requests {
            shared.trigger_shutdown();
        }
        match action {
            Action::Reply(_) if write_ok => {}
            Action::Reply(_) => break,
            Action::Close(_) => break,
            Action::Shutdown(_) => {
                shared.trigger_shutdown();
                break;
            }
        }
    }
    shared.lock_conns().remove(&conn_id);
}

/// The router front tier seen from the `poe-net` event loop.
struct RouteNetService {
    shared: Arc<RouteShared>,
    /// Dispatch queue into the worker pool; dropped to stop the workers.
    tx: Mutex<Option<Sender<(ConnToken, String)>>>,
    completions: OnceLock<poe_net::Completions>,
}

impl RouteNetService {
    fn close(&self) {
        self.tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
    }

    fn completions(&self) -> &poe_net::Completions {
        self.completions.get().expect("loop started")
    }
}

impl NetService for RouteNetService {
    fn dispatch(&self, conn: ConnToken, line: String) {
        let sent = match &*self.tx.lock().unwrap_or_else(PoisonError::into_inner) {
            Some(tx) => tx.send((conn, line)).is_ok(),
            None => false,
        };
        if !sent {
            self.completions()
                .complete(conn, String::new(), After::Abort);
        }
    }

    fn refusal_line(&self, refusal: Refusal) -> String {
        let cfg = &self.shared.cfg;
        match refusal {
            Refusal::Busy => WireError::Busy {
                retry_after_ms: jittered_retry_after_ms(cfg.retry_after_ms),
            }
            .line(),
            Refusal::LineTooLong => WireError::LineTooLong {
                max_bytes: cfg.max_line_bytes,
            }
            .line(),
            Refusal::IdleTimeout => WireError::IdleTimeout.line(),
            Refusal::ConnRequestLimit => WireError::ConnRequestLimit.line(),
            Refusal::ShuttingDown => WireError::ShuttingDown {
                retry_after_ms: jittered_retry_after_ms(cfg.retry_after_ms),
            }
            .line(),
        }
    }

    fn on_event(&self, event: NetEvent) {
        if event == NetEvent::AcceptFailed {
            // The listener died: drain, and let `join` surface the loop
            // report's accept error.
            self.shared.trigger_shutdown();
        }
    }

    fn on_response_written(&self, _conn: ConnToken) {
        let shared = &self.shared;
        let handled = shared.handled.fetch_add(1, Ordering::AcqRel) + 1;
        if handled >= shared.cfg.max_requests {
            shared.trigger_shutdown();
        }
    }
}

/// One dispatch worker of the epoll route backend: runs the identical
/// per-request pipeline as `handle_conn` (flight events, scatter/gather,
/// drain re-check), scoped to a request instead of a connection.
fn route_dispatch_worker(rx: Arc<Mutex<Receiver<(ConnToken, String)>>>, svc: Arc<RouteNetService>) {
    let shared = &svc.shared;
    loop {
        let (conn, line) = {
            let rx = rx.lock().unwrap_or_else(PoisonError::into_inner);
            match rx.recv() {
                Ok(x) => x,
                Err(_) => break, // queue closed: server is done
            }
        };
        shared.inflight.fetch_add(1, Ordering::AcqRel);
        // A line dispatched just before the drain triggered must refuse
        // rather than scatter against closing backend sockets — the
        // same re-check the threads backend does after its increment.
        let (reply, after) = if shared.draining.load(Ordering::Acquire) {
            let refusal = WireError::ShuttingDown {
                retry_after_ms: jittered_retry_after_ms(shared.cfg.retry_after_ms),
            };
            (refusal.line(), After::Close)
        } else {
            let rid = poe_obs::next_request_id();
            let flight = Arc::clone(&shared.router.obs().flight);
            flight.record_for(rid, "request.start", format!("line={line}"));
            let action = respond_route(shared, &line, rid);
            flight.record_for(
                rid,
                "request.end",
                format!("outcome={}", action.line().split(' ').next().unwrap_or("?")),
            );
            match action {
                Action::Reply(l) => (l, After::Reply),
                Action::Close(l) => (l, After::Close),
                Action::Shutdown(l) => (l, After::Shutdown),
            }
        };
        shared.inflight.fetch_sub(1, Ordering::AcqRel);
        if after == After::Shutdown {
            shared.trigger_shutdown();
        }
        svc.completions().complete(conn, reply, after);
    }
}

/// One request's rendered outcome.
enum Action {
    /// Answer and keep the connection open.
    Reply(String),
    /// Answer and close this connection (`QUIT`).
    Close(String),
    /// Answer, then begin the drain (`SHUTDOWN`).
    Shutdown(String),
}

impl Action {
    fn line(&self) -> &str {
        match self {
            Action::Reply(l) | Action::Close(l) | Action::Shutdown(l) => l,
        }
    }
}

/// The subset of wire verbs the router front tier answers. Anything
/// outside this list — shard-local verbs like `STATS`/`TRACE`/`SWAP` —
/// stays `ERR unknown verb` here even though `parse_request` accepts it,
/// so a client can tell the tiers apart.
const ROUTER_VERBS: [&str; 9] = [
    "INFO", "QUERY", "PREDICT", "LOGITS", "HEALTH", "METRICS", "DUMP", "SHUTDOWN", "QUIT",
];

/// Renders one request line against the engine. Split out of the
/// connection loop so unit tests can drive verbs without sockets.
fn respond_route(shared: &RouteShared, line: &str, rid: u64) -> Action {
    // The router pre-filters on the raw verb token: shard-only verbs must
    // render `unknown verb` with the client's original casing, exactly as
    // an unrecognized token would.
    let verb_raw = wire::split_verb(line).0;
    if !verb_raw.is_empty() && !ROUTER_VERBS.contains(&verb_raw.to_ascii_uppercase().as_str()) {
        return Action::Reply(WireError::UnknownVerb(verb_raw.to_string()).line());
    }
    let request = match wire::parse_request(line) {
        Ok(r) => r,
        Err(e) => return Action::Reply(e.line()),
    };
    let router = &shared.router;
    let reply = match request {
        Request::Info => match router.info(rid) {
            Ok((tasks, experts, classes)) => {
                format!("OK tasks={tasks} experts={experts} classes={classes}")
            }
            Err(e) => gather_err_line(e),
        },
        Request::Query { tasks } => match router.query(&tasks, rid) {
            Ok(q) => format!(
                "OK outputs={} params={} assembly_ms={:.3} cached={} classes={} tasks={}",
                q.outputs,
                q.params,
                q.assembly_ms,
                u8::from(q.cached),
                join(&q.classes),
                join(&q.tasks)
            ),
            Err(e) => gather_err_line(e),
        },
        // Features stay the raw trimmed string — the shards validate them
        // (the router has no input dim).
        Request::Predict { tasks, features } => match router.predict(&tasks, &features, rid) {
            Ok(p) if p.missing.is_empty() => format!(
                "OK class={} task={} confidence={:.4}",
                p.class, p.task, p.confidence
            ),
            Ok(p) => format!(
                "OK partial shards={}/{} missing={} class={} task={} confidence={:.4}",
                p.shards_ok,
                p.shards_total,
                join(&p.missing),
                p.class,
                p.task,
                p.confidence
            ),
            Err(e) => gather_err_line(e),
        },
        Request::Logits { tasks, features } => match router.logits(&tasks, &features, rid) {
            Ok(l) => format!(
                "OK logits={} classes={} tasks={}",
                l.logits
                    .iter()
                    .map(|v| format!("{v:.6}"))
                    .collect::<Vec<_>>()
                    .join(","),
                join(&l.classes),
                join(&l.tasks)
            ),
            Err(e) => gather_err_line(e),
        },
        Request::Health => health_line(shared),
        Request::Metrics {
            format: MetricsFormat::Json,
        } => format!("OK {}", router.obs().registry.snapshot().to_json()),
        Request::Metrics {
            format: MetricsFormat::OpenMetrics,
        } => {
            // Same framing as the shard tier: a line count, then the
            // exposition text ending in `# EOF`.
            let text = router.obs().registry.snapshot().to_openmetrics();
            let body = text.trim_end_matches('\n');
            format!("OK openmetrics lines={}\n{body}", body.lines().count())
        }
        Request::Dump => {
            let flight = &router.obs().flight;
            let dir = shared
                .cfg
                .recorder_dir
                .clone()
                .unwrap_or_else(std::env::temp_dir);
            match flight.dump_to_dir(&dir) {
                Ok(path) => format!(
                    "OK dump path={} events={} dropped={}",
                    path.display(),
                    flight.len(),
                    flight.dropped()
                ),
                Err(e) => WireError::DumpFailed(e.to_string()).line(),
            }
        }
        Request::Shutdown => return Action::Shutdown("OK shutting down".into()),
        Request::Quit => return Action::Close("OK bye".into()),
        // Filtered above; unreachable by construction, but render the
        // documented error rather than panic if the filter drifts.
        Request::Stats | Request::Trace { .. } | Request::Swap { .. } => {
            WireError::UnknownVerb(verb_raw.to_string()).line()
        }
    };
    Action::Reply(reply)
}

fn gather_err_line(e: GatherError) -> String {
    match e {
        GatherError::NoShardForTask(t) => WireError::NoShardForTask(t).line(),
        GatherError::ShardUnavailable(f) => WireError::ShardUnavailable {
            shard: f.shard,
            detail: f.detail,
        }
        .line(),
        GatherError::Protocol { shard, line } => WireError::ShardUnavailable {
            shard,
            detail: format!("unparseable response `{line}`"),
        }
        .line(),
        GatherError::Forwarded(line) => line,
    }
}

/// The router-flavored `HEALTH` line: same leading `live=`/`ready=`
/// fields as a shard (probes parse the prefix identically), then
/// `role=router` and the aggregate shard view.
fn health_line(shared: &RouteShared) -> String {
    let (up, total) = shared.router.shards_up();
    let draining = shared.draining.load(Ordering::Acquire);
    let ready = up == total && total > 0 && !draining;
    format!(
        "OK live=1 ready={} role=router shards={total} shards_up={up}/{total} draining={} inflight={}",
        u8::from(ready),
        u8::from(draining),
        shared.inflight.load(Ordering::Acquire)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_shared(spec: &str) -> RouteShared {
        let map = ShardMap::parse(spec).unwrap();
        let cfg = RouteConfig {
            router: RouterConfig {
                // Nothing listens on the test addresses: keep the
                // budget tiny so unavailability is decided fast.
                call_timeout: Duration::from_millis(50),
                budget: Duration::from_millis(100),
                retry: poe_router::RetryPolicy {
                    max_attempts: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        RouteShared {
            router: Router::new(map, cfg.router, poe_obs::Observability::new()),
            cfg,
            addr: "127.0.0.1:0".parse().unwrap(),
            draining: AtomicBool::new(false),
            handled: AtomicU64::new(0),
            inflight: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            conns_alive: AtomicUsize::new(0),
            accept_error: Mutex::new(None),
            net_handle: OnceLock::new(),
        }
    }

    #[test]
    fn syntax_errors_render_without_backends() {
        let s = test_shared("0-9=127.0.0.1:9");
        assert_eq!(respond_route(&s, "", 1).line(), "ERR empty request");
        assert!(respond_route(&s, "FROB 1", 1)
            .line()
            .starts_with("ERR unknown verb"));
        assert_eq!(
            respond_route(&s, "PREDICT 1 2 3", 1).line(),
            WireError::PredictSyntax.line()
        );
        assert_eq!(
            respond_route(&s, "LOGITS 1", 1).line(),
            WireError::LogitsSyntax.line()
        );
        assert_eq!(
            respond_route(&s, "QUERY 99", 1).line(),
            "ERR no shard for task 99"
        );
        assert!(matches!(respond_route(&s, "QUIT", 1), Action::Close(_)));
        assert!(matches!(
            respond_route(&s, "SHUTDOWN", 1),
            Action::Shutdown(_)
        ));
    }

    #[test]
    fn dead_shard_renders_the_documented_err_row() {
        let s = test_shared("0-9=127.0.0.1:9");
        let line = respond_route(&s, "QUERY 1,2", 7).line().to_string();
        assert!(line.starts_with("ERR shard 0 unavailable: "), "{line}");
    }

    #[test]
    fn health_reports_router_role_and_aggregate() {
        let s = test_shared("0-4=127.0.0.1:9;5-9=127.0.0.1:9");
        let line = health_line(&s);
        assert!(
            line.starts_with("OK live=1 ready=0 role=router shards=2"),
            "{line}"
        );
        assert!(line.contains("shards_up=0/2"), "{line}");
        assert!(line.contains("draining=0"), "{line}");
        s.draining.store(true, Ordering::Release);
        assert!(health_line(&s).contains("draining=1"));
    }

    #[test]
    fn partial_rendering_matches_the_protocol_doc() {
        // Render the partial row from a hand-built GatheredPredict so the
        // format stays pinned even without live shards.
        let p = poe_router::GatheredPredict {
            class: 3,
            task: 1,
            confidence: 0.875,
            shards_ok: 1,
            shards_total: 2,
            missing: vec![4, 5],
        };
        let line = format!(
            "OK partial shards={}/{} missing={} class={} task={} confidence={:.4}",
            p.shards_ok,
            p.shards_total,
            join(&p.missing),
            p.class,
            p.task,
            p.confidence
        );
        assert_eq!(
            line,
            "OK partial shards=1/2 missing=4,5 class=3 task=1 confidence=0.8750"
        );
    }
}
