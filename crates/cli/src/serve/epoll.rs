//! The epoll transport for `poe serve`: glue between the `poe-net`
//! readiness event loop and the serve layer's dispatch stage.
//!
//! The event loop owns every socket — accept, the 8 KiB line cap, write
//! backpressure, idle deadlines, the connection cap, and drain are all
//! connection-state transitions inside `poe-net`. What remains here is
//! the dispatch stage: complete request lines are queued to the same
//! worker pool the threads backend uses, each worker runs the identical
//! `respond_action` pipeline (request ids, spans, per-verb counters,
//! micro-batch submit), and the response is completed back into the loop
//! with an [`After`] verdict mapped from the protocol [`Action`].
//!
//! Parity notes (the conformance suite pins these):
//! * Refusal lines (`ERR busy…`, `ERR line too long`, `ERR idle
//!   timeout`, `ERR connection request limit`, `ERR shutting down`) are
//!   rendered by the same [`WireError`] constructors as the threads
//!   backend, jittered hints included.
//! * A worker panic answers nothing and closes the connection
//!   ([`After::Abort`]), exactly like a threads worker dying on a
//!   connection — and is counted in `serve.worker_panics` the same way.
//! * `SHUTDOWN` flushes its `OK shutting down`, then the connection
//!   closes and the server-wide drain begins.

use super::{respond_action, Action, ServerShared};
use crate::wire::WireError;
use poe_net::{
    After, Completions, ConnToken, EventLoop, LoopConfig, NetEvent, NetService, Refusal,
};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// The running loop plus the service it drives; joined by `Server::join`.
pub(super) struct EpollParts {
    event_loop: EventLoop,
    svc: Arc<EpollService>,
}

impl EpollParts {
    /// Joins the loop thread (which performs the drain), then closes the
    /// dispatch queue so the worker pool can exit.
    pub(super) fn join(self, _shared: &Arc<ServerShared>) -> poe_net::LoopReport {
        let report = self.event_loop.join();
        self.svc.close();
        report
    }
}

/// Starts the event loop and its dispatch worker pool.
pub(super) fn start(
    listener: TcpListener,
    shared: Arc<ServerShared>,
    workers_n: usize,
) -> std::io::Result<(EpollParts, Vec<JoinHandle<()>>)> {
    let obs = shared.service.obs();
    let loop_cfg = LoopConfig {
        max_line_bytes: shared.cfg.max_line_bytes,
        idle_timeout: shared.cfg.idle_timeout,
        max_conns: shared.cfg.max_conns.max(1),
        max_conn_requests: shared.cfg.max_conn_requests,
        drain_deadline: shared.cfg.drain_deadline,
        metrics: Some(poe_net::NetMetrics::register(&obs.registry)),
        flight: Some(Arc::clone(&obs.flight)),
    };
    let (tx, rx) = channel::<(ConnToken, String)>();
    let svc = Arc::new(EpollService {
        shared: Arc::clone(&shared),
        tx: Mutex::new(Some(tx)),
        completions: OnceLock::new(),
    });
    let event_loop = EventLoop::start(listener, svc.clone(), loop_cfg)?;
    let handle = event_loop.handle();
    svc.completions
        .set(handle.completions())
        .expect("completions set once");
    shared
        .net_handle
        .set(handle)
        .expect("one event loop per server");
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(workers_n);
    for i in 0..workers_n {
        let rx = Arc::clone(&rx);
        let svc = Arc::clone(&svc);
        workers.push(
            std::thread::Builder::new()
                .name(format!("poe-serve-dispatch-{i}"))
                .spawn(move || dispatch_worker(rx, svc))
                .expect("spawn serve dispatch worker"),
        );
    }
    Ok((EpollParts { event_loop, svc }, workers))
}

/// The serve layer seen from the event loop.
struct EpollService {
    shared: Arc<ServerShared>,
    /// Dispatch queue into the worker pool; dropped to stop the workers.
    tx: Mutex<Option<Sender<(ConnToken, String)>>>,
    completions: OnceLock<Completions>,
}

impl EpollService {
    fn close(&self) {
        self.tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
    }

    fn completions(&self) -> &Completions {
        self.completions.get().expect("loop started")
    }

    /// Runs one request through the shared `respond_action` pipeline —
    /// panic-contained, exactly like a threads worker — and completes
    /// the response into the loop. Called from a dispatch worker, or
    /// inline on the loop thread for the control-verb fast path.
    fn serve_one(&self, conn: ConnToken, line: &str) {
        let shared = &self.shared;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            poe_chaos::maybe_panic(poe_chaos::sites::SERVE_WORKER_PANIC);
            respond_action(line, &shared.service, shared.input_dim, Some(shared))
        }));
        match outcome {
            Ok((response, action)) => {
                let after = match action {
                    Action::Continue => After::Reply,
                    Action::Close => After::Close,
                    Action::Shutdown => After::Shutdown,
                };
                self.completions().complete(conn, response, after);
                if matches!(action, Action::Shutdown) {
                    shared.trigger_shutdown();
                }
            }
            Err(_) => {
                shared.metrics.worker_panics.inc();
                shared.service.obs().flight.record_for(
                    0,
                    "worker.panic",
                    format!("conn={conn} contained=1"),
                );
                shared.cvar.notify_all();
                self.completions()
                    .complete(conn, String::new(), After::Abort);
            }
        }
    }
}

impl NetService for EpollService {
    fn dispatch(&self, conn: ConnToken, line: String) {
        // Control-verb fast path: `INFO` and `HEALTH` are non-blocking
        // in-memory reads, so they are answered inline on the loop
        // thread — the worker-pool hop (mpsc handoff plus eventfd
        // wakeup, two extra context switches) would roughly double
        // their round trip. Verbs that can block (micro-batching,
        // consolidation, recorder file I/O) still go to the pool.
        // `serve_one` keeps chaos/panic parity with the worker path.
        let verb = line.trim();
        if verb == "INFO" || verb == "HEALTH" {
            self.serve_one(conn, &line);
            return;
        }
        let sent = match &*self.tx.lock().unwrap_or_else(PoisonError::into_inner) {
            Some(tx) => tx.send((conn, line)).is_ok(),
            None => false,
        };
        if !sent {
            // Workers already gone (shutdown race): never leave a
            // dispatched connection waiting for a completion that cannot
            // come.
            self.completions()
                .complete(conn, String::new(), After::Abort);
        }
    }

    fn refusal_line(&self, refusal: Refusal) -> String {
        let cfg = &self.shared.cfg;
        match refusal {
            Refusal::Busy => {
                let retry_after_ms = super::jittered_retry_after_ms(cfg.retry_after_ms);
                self.shared.service.obs().flight.record_for(
                    0,
                    "shed",
                    format!("retry_after_ms={retry_after_ms}"),
                );
                WireError::Busy { retry_after_ms }.line()
            }
            Refusal::LineTooLong => WireError::LineTooLong {
                max_bytes: cfg.max_line_bytes,
            }
            .line(),
            Refusal::IdleTimeout => WireError::IdleTimeout.line(),
            Refusal::ConnRequestLimit => WireError::ConnRequestLimit.line(),
            Refusal::ShuttingDown => WireError::ShuttingDown {
                retry_after_ms: super::jittered_retry_after_ms(cfg.retry_after_ms),
            }
            .line(),
        }
    }

    fn on_event(&self, event: NetEvent) {
        let m = &self.shared.metrics;
        match event {
            NetEvent::Accepted => m.accepted.inc(),
            NetEvent::Shed => m.shed.inc(),
            NetEvent::IdleTimedOut => m.timeouts.inc(),
            NetEvent::Oversize => m.oversize.inc(),
            NetEvent::WriteError => m.write_errors.inc(),
            NetEvent::Closed => {}
            // The listener died: begin the drain and wake `join`, which
            // surfaces the loop report's accept error.
            NetEvent::AcceptFailed => self.shared.trigger_shutdown(),
        }
    }

    fn on_response_written(&self, _conn: ConnToken) {
        // The analog of the threads backend's post-`send_line`
        // accounting: a response only counts once the transport actually
        // flushed it.
        let shared = &self.shared;
        let n = {
            let mut st = shared.lock_state();
            st.handled += 1;
            st.handled
        };
        shared.cvar.notify_all();
        if n >= shared.cfg.max_requests {
            shared.trigger_shutdown();
        }
    }
}

/// One dispatch worker: the epoll-side sibling of `worker_loop`, scoped
/// to a request instead of a connection. Panics are contained per
/// request; the worker survives and the connection is aborted.
fn dispatch_worker(rx: Arc<Mutex<Receiver<(ConnToken, String)>>>, svc: Arc<EpollService>) {
    let shared = &svc.shared;
    loop {
        let (conn, line) = {
            let rx = rx.lock().unwrap_or_else(PoisonError::into_inner);
            match rx.recv() {
                Ok(x) => x,
                Err(_) => break, // queue closed: server is done
            }
        };
        svc.serve_one(conn, &line);
    }
    shared.workers_alive.fetch_sub(1, Ordering::AcqRel);
    shared.cvar.notify_all();
}
