//! `poe serve` — a minimal TCP model-query server over a pool store.
//!
//! The wire protocol (UTF-8, one request line → one response line; verbs
//! `INFO`, `QUERY`, `PREDICT`, `STATS`, `METRICS`, `TRACE`, `QUIT`) is
//! specified in full in `docs/PROTOCOL.md` at the repository root —
//! grammar, every `ERR` reason, cache semantics, and worked transcripts.
//! `docs/OPERATIONS.md` covers deployment and how to read the metrics.
//!
//! `PREDICT` consolidates the requested composite model (train-free — this
//! is the paper's realtime query) and classifies one feature vector.
//!
//! Connections are handled by a bounded pool of worker threads fed by a
//! dedicated acceptor, so a slow or idle client never blocks the others.
//! Every request line runs inside a [`poe_obs`] request context: it gets a
//! process-unique request ID, a `serve.request` span, a per-verb counter,
//! and a slow-log observation against the service's
//! [`poe_core::service::QueryService::obs`] bundle.

use poe_core::service::QueryService;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Default number of connection-handling worker threads.
pub const DEFAULT_WORKERS: usize = 4;

/// Progress shared between the acceptor, the workers, and `serve` itself.
struct ServeState {
    handled: u64,
    accept_error: Option<std::io::Error>,
}

type Shared = Arc<(Mutex<ServeState>, Condvar)>;

/// Serves requests until `max_requests` lines have been processed
/// (`u64::MAX` = run forever), with [`DEFAULT_WORKERS`] concurrent
/// connection handlers. Returns the number of requests handled.
#[cfg_attr(not(test), allow(dead_code))] // the binary passes --workers explicitly
pub fn serve(
    listener: TcpListener,
    service: Arc<QueryService>,
    input_dim: usize,
    max_requests: u64,
) -> std::io::Result<u64> {
    serve_with_workers(listener, service, input_dim, max_requests, DEFAULT_WORKERS)
}

/// [`serve`] with an explicit worker-pool size. Connections are accepted
/// eagerly and queued; up to `workers` of them are served concurrently.
pub fn serve_with_workers(
    listener: TcpListener,
    service: Arc<QueryService>,
    input_dim: usize,
    max_requests: u64,
    workers: usize,
) -> std::io::Result<u64> {
    let shared: Shared = Arc::new((
        Mutex::new(ServeState {
            handled: 0,
            accept_error: None,
        }),
        Condvar::new(),
    ));

    let (conn_tx, conn_rx) = channel::<TcpStream>();
    let conn_rx = Arc::new(Mutex::new(conn_rx));
    for _ in 0..workers.max(1) {
        let conn_rx: Arc<Mutex<Receiver<TcpStream>>> = Arc::clone(&conn_rx);
        let service = Arc::clone(&service);
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || loop {
            let stream = {
                let rx = match conn_rx.lock() {
                    Ok(rx) => rx,
                    Err(_) => break,
                };
                match rx.recv() {
                    Ok(s) => s,
                    Err(_) => break,
                }
            };
            handle_connection(stream, &service, input_dim, &shared, max_requests);
        });
    }

    // The acceptor owns the listener; it dies with the process (clients
    // connecting after the request budget is spent are queued but never
    // served — acceptable for this demonstration server).
    {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if conn_tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    let (lock, cvar) = &*shared;
                    if let Ok(mut st) = lock.lock() {
                        st.accept_error = Some(e);
                    }
                    cvar.notify_all();
                    break;
                }
            }
        });
    }

    let (lock, cvar) = &*shared;
    let mut st = lock.lock().unwrap();
    while st.handled < max_requests && st.accept_error.is_none() {
        st = cvar.wait(st).unwrap();
    }
    match st.accept_error.take() {
        Some(e) => Err(e),
        None => Ok(st.handled),
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &QueryService,
    input_dim: usize,
    shared: &Shared,
    max_requests: u64,
) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    let (lock, cvar) = &**shared;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let response = respond(&line, service, input_dim);
        let done = line.trim().eq_ignore_ascii_case("QUIT");
        if writeln!(writer, "{response}").is_err() {
            break;
        }
        let n = {
            let mut st = lock.lock().unwrap();
            st.handled += 1;
            st.handled
        };
        cvar.notify_all();
        if done || n >= max_requests {
            break;
        }
    }
}

/// Computes the response line for one request line (protocol core, kept
/// free of I/O so it is directly testable).
///
/// Wraps the dispatch in the request-level observability plumbing: a fresh
/// request ID, a `serve.request` span against the service's trace
/// collector, a `serve.requests.<verb>` counter, and a slow-log
/// observation (slow requests are also echoed to stderr so an operator
/// sees them without polling `METRICS`).
pub fn respond(line: &str, service: &QueryService, input_dim: usize) -> String {
    let obs = service.obs();
    let request_id = poe_obs::next_request_id();
    let start = Instant::now();
    let trimmed = line.trim();
    let verb = trimmed
        .split_whitespace()
        .next()
        .unwrap_or("")
        .to_ascii_uppercase();
    let counter_name = match verb.as_str() {
        "INFO" | "QUERY" | "PREDICT" | "STATS" | "METRICS" | "TRACE" | "QUIT" => {
            format!("serve.requests.{}", verb.to_ascii_lowercase())
        }
        _ => "serve.requests.other".to_string(),
    };
    obs.registry.counter(&counter_name).inc();
    let response = poe_obs::with_request(&obs.trace, request_id, || {
        let _span = poe_obs::span("serve.request");
        respond_inner(trimmed, service, input_dim)
    });
    let elapsed = start.elapsed();
    if obs.slow.observe(request_id, trimmed, elapsed) {
        eprintln!(
            "slow request #{request_id} ({:.3} ms): {trimmed}",
            elapsed.as_secs_f64() * 1e3
        );
    }
    response
}

fn respond_inner(line: &str, service: &QueryService, input_dim: usize) -> String {
    let mut parts = line.splitn(2, ' ');
    let verb = parts.next().unwrap_or("").to_ascii_uppercase();
    let rest = parts.next().unwrap_or("").trim();

    match verb.as_str() {
        "INFO" => service.with_pool(|p| {
            format!(
                "OK tasks={} experts={} classes={}",
                p.hierarchy().num_primitives(),
                p.num_experts(),
                p.hierarchy().num_classes()
            )
        }),
        "QUIT" => "OK bye".into(),
        "STATS" => {
            let s = service.stats();
            // An idle service has no latency distribution; `n/a` keeps the
            // field present without faking a 0 ms percentile.
            let ms = |v: Option<f64>| match v {
                Some(secs) => format!("{:.3}", secs * 1e3),
                None => "n/a".into(),
            };
            format!(
                "OK served={} rejected={} cache_hits={} cache_misses={} \
                 mean_ms={} p50_ms={} p95_ms={} p99_ms={}",
                s.queries_served,
                s.queries_rejected,
                s.cache_hits,
                s.cache_misses,
                ms(s.mean_assembly_secs()),
                ms(s.assembly_p50_secs()),
                ms(s.assembly_p95_secs()),
                ms(s.assembly_p99_secs()),
            )
        }
        "METRICS" => format!("OK {}", metrics_json(service)),
        "TRACE" => match rest.to_ascii_lowercase().as_str() {
            "on" => {
                service.obs().trace.set_enabled(true);
                "OK trace=on".into()
            }
            "off" => {
                service.obs().trace.set_enabled(false);
                "OK trace=off".into()
            }
            _ => "ERR TRACE needs `on` or `off`".into(),
        },
        "QUERY" => match parse_tasks(rest) {
            Err(e) => format!("ERR {e}"),
            Ok(tasks) => match service.query(&tasks) {
                Err(e) => format!("ERR {e}"),
                Ok(r) => format!(
                    "OK outputs={} params={} assembly_ms={:.3} cached={} classes={}",
                    r.class_layout.len(),
                    r.stats.params,
                    r.stats.assembly_secs * 1e3,
                    u8::from(r.stats.cache_hit),
                    join_usize(&r.class_layout),
                ),
            },
        },
        "PREDICT" => {
            let Some((task_part, feat_part)) = rest.split_once(':') else {
                return "ERR PREDICT needs `tasks : features`".into();
            };
            let tasks = match parse_tasks(task_part.trim()) {
                Ok(t) => t,
                Err(e) => return format!("ERR {e}"),
            };
            let mut features = Vec::new();
            for tok in feat_part.split_whitespace() {
                match tok.parse::<f32>() {
                    Ok(v) if v.is_finite() => features.push(v),
                    _ => return format!("ERR bad feature value `{tok}`"),
                }
            }
            if features.len() != input_dim {
                return format!("ERR expected {input_dim} features, got {}", features.len());
            }
            match service.query(&tasks) {
                Err(e) => format!("ERR {e}"),
                Ok(mut r) => {
                    let x = poe_tensor::Tensor::from_vec(features, [1, input_dim]);
                    let p = r.model.predict_with_provenance(&x)[0];
                    format!(
                        "OK class={} task={} confidence={:.4}",
                        p.class, p.task_index, p.confidence
                    )
                }
            }
        }
        "" => "ERR empty request".into(),
        other => format!("ERR unknown verb `{other}`"),
    }
}

/// Renders the full observability snapshot of `service` as one JSON line:
/// the service's own registry merged with the process-wide kernel/training
/// registry, plus tracing counters and the retained slow-query entries.
/// This is the payload of the `METRICS` verb and of the periodic
/// `--metrics-every` flush.
pub fn metrics_json(service: &QueryService) -> String {
    let obs = service.obs();
    let mut snap = obs.registry.snapshot();
    snap.merge(poe_obs::Registry::global().snapshot());
    let base = snap.to_json();
    let trace = &obs.trace;
    let slow: Vec<String> = obs
        .slow
        .entries()
        .iter()
        .map(|e| {
            format!(
                "{{\"request_id\":{},\"duration_ms\":{},\"line\":\"{}\"}}",
                e.request_id,
                poe_obs::json::fmt_f64(e.duration_secs * 1e3),
                poe_obs::json::json_escape(&e.detail)
            )
        })
        .collect();
    format!(
        "{},\"trace\":{{\"enabled\":{},\"spans_recorded\":{},\"events_dropped\":{}}},\
         \"slow_queries\":[{}]}}",
        &base[..base.len() - 1],
        trace.is_enabled(),
        trace.spans_recorded(),
        trace.events_dropped(),
        slow.join(",")
    )
}

fn parse_tasks(s: &str) -> Result<Vec<usize>, String> {
    if s.is_empty() {
        return Err("no tasks given".into());
    }
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad task id `{p}`"))
        })
        .collect()
}

fn join_usize(v: &[usize]) -> String {
    v.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_core::pool::{Expert, ExpertPool};
    use poe_data::ClassHierarchy;
    use poe_nn::layers::{Linear, Sequential};
    use poe_tensor::Prng;

    fn toy_service() -> Arc<QueryService> {
        let mut rng = Prng::seed_from_u64(1);
        let hierarchy = ClassHierarchy::contiguous(6, 3);
        let library = Sequential::new().push(Linear::new("lib", 4, 5, &mut rng));
        let mut pool = ExpertPool::new(hierarchy, library);
        for t in 0..3 {
            let classes = pool.hierarchy().primitive(t).classes.clone();
            let head =
                Sequential::new().push(Linear::new(&format!("e{t}"), 5, classes.len(), &mut rng));
            pool.insert_expert(Expert {
                task_index: t,
                classes,
                head,
            });
        }
        Arc::new(QueryService::new(pool))
    }

    #[test]
    fn protocol_responses() {
        let svc = toy_service();
        assert_eq!(respond("INFO", &svc, 4), "OK tasks=3 experts=3 classes=6");
        let q = respond("QUERY 0,2", &svc, 4);
        assert!(q.starts_with("OK outputs=4"), "{q}");
        assert!(q.contains("classes=0,1,4,5"), "{q}");
        let p = respond("PREDICT 0,2 : 0.5 -0.5 1.0 0.0", &svc, 4);
        assert!(p.starts_with("OK class="), "{p}");
        assert_eq!(respond("QUIT", &svc, 4), "OK bye");
    }

    #[test]
    fn protocol_errors_are_informative() {
        let svc = toy_service();
        assert!(respond("FROB", &svc, 4).starts_with("ERR unknown verb"));
        assert!(respond("QUERY", &svc, 4).starts_with("ERR no tasks"));
        assert!(respond("QUERY 0,x", &svc, 4).starts_with("ERR bad task id"));
        assert!(respond("QUERY 9", &svc, 4).starts_with("ERR unknown primitive task"));
        assert!(respond("PREDICT 0 : 1.0", &svc, 4).starts_with("ERR expected 4 features"));
        assert!(respond("PREDICT 0 1.0 2.0", &svc, 4).starts_with("ERR PREDICT needs"));
        assert!(respond("PREDICT 0 : 1.0 nan 0.0 0.0", &svc, 4).starts_with("ERR bad feature"));
        assert!(respond("", &svc, 4).starts_with("ERR empty"));
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead, BufReader, Write};
        let svc = toy_service();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(listener, svc, 4, 3).unwrap());

        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut ask = |req: &str| -> String {
            writeln!(writer, "{req}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line.trim_end().to_string()
        };
        assert_eq!(ask("INFO"), "OK tasks=3 experts=3 classes=6");
        assert!(ask("QUERY 1").starts_with("OK outputs=2"));
        assert!(ask("PREDICT 1 : 1 2 3 4").starts_with("OK class="));
        assert_eq!(server.join().unwrap(), 3);
    }

    #[test]
    fn stats_verb_reports_counters_and_percentiles() {
        let svc = toy_service();
        respond("QUERY 0", &svc, 4);
        respond("QUERY 0", &svc, 4); // cache hit
        respond("QUERY 9", &svc, 4); // rejected
        let s = respond("STATS", &svc, 4);
        assert!(
            s.starts_with("OK served=2 rejected=1 cache_hits=1 cache_misses=1"),
            "{s}"
        );
        assert!(s.contains("p50_ms="), "{s}");
        assert!(s.contains("p99_ms="), "{s}");
        assert!(!s.contains("n/a"), "{s}");
    }

    #[test]
    fn stats_verb_reports_na_before_first_query() {
        let svc = toy_service();
        let s = respond("STATS", &svc, 4);
        assert_eq!(
            s,
            "OK served=0 rejected=0 cache_hits=0 cache_misses=0 \
             mean_ms=n/a p50_ms=n/a p95_ms=n/a p99_ms=n/a"
        );
    }

    #[test]
    fn metrics_verb_returns_merged_json_snapshot() {
        let svc = toy_service();
        respond("QUERY 0", &svc, 4);
        respond("QUERY 0", &svc, 4); // hit
        let m = respond("METRICS", &svc, 4);
        assert!(m.starts_with("OK {\"counters\":{"), "{m}");
        let json = &m[3..];
        // Service-level counters and the assembly histogram.
        assert!(json.contains("\"service.queries_served\":2"), "{m}");
        assert!(json.contains("\"service.cache.hits\":1"), "{m}");
        assert!(json.contains("\"service.cache.misses\":1"), "{m}");
        assert!(
            json.contains("\"service.assembly_secs\":{\"count\":2"),
            "{m}"
        );
        // Per-verb request counters (METRICS counts itself).
        assert!(json.contains("\"serve.requests.query\":2"), "{m}");
        assert!(json.contains("\"serve.requests.metrics\":1"), "{m}");
        // Kernel-level instruments come from the merged global registry.
        // Consolidation alone copies weights without a matmul, so drive one
        // through PREDICT (Linear forward → matmul_a_bt → the shared
        // tensor.matmul.secs histogram).
        respond("PREDICT 0 : 1 2 3 4", &svc, 4);
        let m = respond("METRICS", &svc, 4);
        assert!(m.contains("\"tensor.matmul_a_bt.calls\":"), "{m}");
        assert!(m.contains("\"tensor.matmul.secs\":{\"count\":"), "{m}");
        // Trace and slow-query sections are always present.
        assert!(m.contains("\"trace\":{\"enabled\":false"), "{m}");
        assert!(m.contains("\"slow_queries\":[]"), "{m}");
    }

    #[test]
    fn trace_verb_toggles_span_collection() {
        let svc = toy_service();
        assert!(respond("TRACE maybe", &svc, 4).starts_with("ERR TRACE needs"));
        assert_eq!(respond("TRACE on", &svc, 4), "OK trace=on");
        assert!(svc.obs().trace.is_enabled());
        let before = svc.obs().trace.spans_recorded();
        respond("QUERY 0", &svc, 4); // miss: serve.request + service.query + pool.consolidate
        assert_eq!(svc.obs().trace.spans_recorded(), before + 3);
        respond("QUERY 0", &svc, 4); // hit: serve.request + service.query
        assert_eq!(svc.obs().trace.spans_recorded(), before + 5);
        let events = svc.obs().trace.recent(2);
        assert_eq!(events[0].name, "service.query");
        assert_eq!(events[1].name, "serve.request");
        assert_eq!(events[0].request_id, events[1].request_id);
        assert_eq!(respond("TRACE off", &svc, 4), "OK trace=off");
        let frozen = svc.obs().trace.spans_recorded();
        respond("QUERY 0", &svc, 4);
        assert_eq!(svc.obs().trace.spans_recorded(), frozen);
    }

    #[test]
    fn slow_queries_are_retained_and_reported() {
        let svc = toy_service();
        // Threshold 0 ns: every request qualifies as slow.
        svc.obs()
            .slow
            .set_threshold(Some(std::time::Duration::from_nanos(1)));
        respond("QUERY 0", &svc, 4);
        let entries = svc.obs().slow.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].detail, "QUERY 0");
        let m = respond("METRICS", &svc, 4);
        assert!(m.contains("\"slow_queries\":[{\"request_id\":"), "{m}");
        assert!(m.contains("\"line\":\"QUERY 0\""), "{m}");
    }

    /// Two clients interleaving QUERY and METRICS must never observe a torn
    /// snapshot: within one client the served counter is monotone and at
    /// least its own completed queries, and globally
    /// `cache_hits + cache_misses ≤ queries_served` in every snapshot.
    #[test]
    fn interleaved_query_and_metrics_see_consistent_counters() {
        const PER_CLIENT: u64 = 40;
        let svc = toy_service();
        svc.obs().trace.set_enabled(true);
        let extract = |json: &str, key: &str| -> u64 {
            let pat = format!("\"{key}\":");
            let at = json.find(&pat).unwrap_or_else(|| panic!("{key} in {json}")) + pat.len();
            json[at..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .unwrap()
        };
        let mut handles = Vec::new();
        for t in 0..2u64 {
            let svc = Arc::clone(&svc);
            handles.push(std::thread::spawn(move || {
                let mut last_served = 0u64;
                for i in 0..PER_CLIENT {
                    let task = (t + i) % 3;
                    let q = respond(&format!("QUERY {task}"), &svc, 4);
                    assert!(q.starts_with("OK"), "{q}");
                    let m = respond("METRICS", &svc, 4);
                    let served = extract(&m, "service.queries_served");
                    let hits = extract(&m, "service.cache.hits");
                    let misses = extract(&m, "service.cache.misses");
                    assert!(served >= last_served, "served counter went backwards");
                    assert!(served > i, "snapshot misses own completed queries");
                    assert!(
                        hits + misses <= served,
                        "torn snapshot: hits {hits} + misses {misses} > served {served}"
                    );
                    last_served = served;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = svc.stats();
        assert_eq!(s.queries_served, 2 * PER_CLIENT);
        assert_eq!(s.cache_hits + s.cache_misses, s.queries_served);
        // Span accounting: each QUERY is serve.request + service.query
        // (+ pool.consolidate per miss), each METRICS is serve.request.
        let expected = 2 * PER_CLIENT * 3 + s.cache_misses;
        assert_eq!(svc.obs().trace.spans_recorded(), expected);
    }

    /// Regression test for head-of-line blocking: the server used to join
    /// each connection thread right after accepting it, so an idle client
    /// stalled everyone behind it. Client A connects first and stays
    /// silent while client B completes its requests; under the old serial
    /// loop B's reads would time out.
    #[test]
    fn concurrent_clients_are_not_serialized() {
        use std::io::{BufRead, BufReader, Write};
        use std::time::Duration;
        let svc = toy_service();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server =
            std::thread::spawn(move || serve_with_workers(listener, svc, 4, 3, 4).unwrap());

        let ask = |writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str| {
            writeln!(writer, "{req}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line.trim_end().to_string()
        };

        // Client A: connects first, sends nothing yet.
        let a = TcpStream::connect(addr).unwrap();
        a.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut a_writer = a.try_clone().unwrap();
        let mut a_reader = BufReader::new(a);

        // Client B: connects second and must get served while A idles.
        let b = TcpStream::connect(addr).unwrap();
        b.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut b_writer = b.try_clone().unwrap();
        let mut b_reader = BufReader::new(b);
        assert_eq!(
            ask(&mut b_writer, &mut b_reader, "INFO"),
            "OK tasks=3 experts=3 classes=6"
        );
        assert!(ask(&mut b_writer, &mut b_reader, "QUERY 2").starts_with("OK outputs=2"));

        // Now A wakes up and spends the last request of the budget.
        assert_eq!(
            ask(&mut a_writer, &mut a_reader, "INFO"),
            "OK tasks=3 experts=3 classes=6"
        );
        assert_eq!(server.join().unwrap(), 3);
    }
}
