//! `poe serve` — a fault-tolerant TCP model-query server over a pool store.
//!
//! The wire protocol (UTF-8, one request line → one response line; verbs
//! `INFO`, `QUERY`, `PREDICT`, `STATS`, `METRICS [json|openmetrics]`,
//! `TRACE`, `DUMP`, `HEALTH`, `SHUTDOWN`, `QUIT`) is specified in full in
//! `docs/PROTOCOL.md` at the repository root — grammar, every `ERR`
//! reason, cache semantics, and worked transcripts. `METRICS openmetrics`
//! is the protocol's one multi-line response: a framing line followed by
//! Prometheus/OpenMetrics exposition text terminated by `# EOF`.
//! `docs/OPERATIONS.md` covers deployment, metrics, and the failure-modes
//! runbook.
//!
//! `PREDICT` consolidates the requested composite model (train-free — this
//! is the paper's realtime query) and classifies one feature vector.
//!
//! ## Cross-connection micro-batching
//!
//! Under a running [`Server`], `PREDICT` requests are not answered one by
//! one: each is parked in a per-task-set batch queue (keyed on the
//! *sorted* task set, exactly like the consolidation cache) and a
//! batch scheduler flushes a queue when it reaches
//! [`ServeConfig::max_batch`] samples or [`ServeConfig::batch_delay`]
//! elapses — whichever comes first. A flush runs **one** batched
//! inference through the shared CoW-assembled model
//! ([`poe_core::service::QueryService::predict_batch`]) and demultiplexes
//! the per-row predictions back to the waiting connections, so concurrent
//! clients asking for the same composite model amortize both the
//! consolidation and the matmuls. `SHUTDOWN` drains every parked queue
//! before the connection drain begins, so no parked request is lost.
//! Batching is invisible on the wire: same grammar, one response per
//! request line, responses on each connection in request order. Every
//! `ERR` line is a typed [`crate::wire::WireError`].
//!
//! ## Fault-tolerance architecture
//!
//! Connections are handled by a bounded pool of worker threads fed by a
//! **bounded** accept queue. The serving substrate degrades instead of
//! collapsing:
//!
//! * **Connection hardening** — every connection gets read/write
//!   deadlines ([`ServeConfig::idle_timeout`]); request lines are read
//!   through a bounded buffer that answers `ERR line too long` instead of
//!   growing without limit; a per-connection request cap bounds any
//!   single client's hold on a worker.
//! * **Load shedding** — when the accept queue is full the acceptor
//!   answers `ERR busy retry_after_ms=<n>` and closes immediately: shed,
//!   don't stall. Shed/timeout/oversize/write-error counters land in the
//!   service's [`poe_obs`] registry (`serve.*`, visible via `METRICS`).
//! * **Graceful lifecycle** — `HEALTH` reports liveness and readiness
//!   (pool loaded, workers alive, shed rate under threshold); `SHUTDOWN`
//!   (or [`ServerHandle::shutdown`]) stops accepting, drains in-flight
//!   requests within [`ServeConfig::drain_deadline`], force-closes
//!   stragglers past it, and joins every worker and acceptor thread
//!   before [`Server::join`] returns — no thread outlives the server.
//! * **Crash survival** — worker panics (including [`poe_chaos`]-injected
//!   ones) are caught per connection; the worker stays alive and the
//!   panic is counted (`serve.worker_panics`).
//!
//! Every request line runs inside a [`poe_obs`] request context: it gets a
//! process-unique request ID, a `serve.request` span, a per-verb counter,
//! and a slow-log observation against the service's
//! [`poe_core::service::QueryService::obs`] bundle.
//!
//! ## The flight recorder
//!
//! Every layer of the server also feeds the always-on
//! [`poe_obs::FlightRecorder`] black box: `request.start`/`request.end`
//! (and `request.panic` when a handler dies mid-request), `batch.flush`
//! with its cause, size, and the parked request ids, `batch.abort`, `shed`,
//! `worker.panic`, and the server lifecycle (`server.start`,
//! `server.drain`, `server.shutdown`). The ring is dumped to a timestamped
//! JSONL file on `SHUTDOWN` (when [`ServeConfig::recorder_dir`] is set), on
//! a `poe serve` panic, and on demand via the `DUMP` verb, so the last few
//! thousand events before a crash are always reconstructable.

mod epoll;

use crate::wire::{self, MetricsFormat, Request, WireError};
use poe_core::pool::QueryError;
use poe_core::service::QueryService;
use poe_models::Prediction;
use poe_tensor::Tensor;
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Default number of connection-handling worker threads.
pub const DEFAULT_WORKERS: usize = 4;

/// Default cap on one request line, in bytes.
pub const DEFAULT_MAX_LINE_BYTES: usize = 8 * 1024;

// The task-list cap and parser moved into the typed wire layer; both are
// re-exported here because they are serving-facing surface older callers
// (tests, the router front tier) reached through this module.
pub use crate::wire::{parse_tasks, MAX_QUERY_TASKS};

/// Default cap on samples coalesced into one batched `PREDICT` inference.
pub const DEFAULT_MAX_BATCH: usize = 32;

/// Default concurrent-connection cap for the epoll backend.
pub const DEFAULT_MAX_CONNS: usize = 16 * 1024;

/// Which transport backend serves connections.
///
/// Both speak the identical wire protocol (the conformance suite replays
/// one transcript against each and asserts byte-identical responses);
/// they differ only in how connections are multiplexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetBackend {
    /// Thread-per-connection over a bounded accept queue and worker
    /// pool. Portable everywhere; concurrency is capped by the pool, so
    /// it is also the differential-test oracle for the epoll backend.
    #[default]
    Threads,
    /// One `poe-net` readiness event loop owning every socket, with the
    /// same worker pool reduced to a dispatch stage. Scales to tens of
    /// thousands of idle connections; Linux (x86-64 / aarch64) only —
    /// elsewhere it falls back to [`NetBackend::Threads`] at startup.
    Epoll,
}

impl NetBackend {
    /// Parses a `--net` flag value.
    pub fn parse(s: &str) -> Option<NetBackend> {
        match s {
            "threads" => Some(NetBackend::Threads),
            "epoll" => Some(NetBackend::Epoll),
            _ => None,
        }
    }

    /// The default backend, overridable with `POE_NET=threads|epoll`
    /// (how CI runs the whole suite against the epoll loop).
    pub fn from_env() -> NetBackend {
        match std::env::var("POE_NET") {
            Ok(v) => NetBackend::parse(&v).unwrap_or_default(),
            Err(_) => NetBackend::Threads,
        }
    }

    /// The flag spelling (`threads` / `epoll`).
    pub fn name(self) -> &'static str {
        match self {
            NetBackend::Threads => "threads",
            NetBackend::Epoll => "epoll",
        }
    }
}

/// Default micro-batch window in microseconds: how long the first request
/// of a batch waits for company before a timeout flush.
pub const DEFAULT_BATCH_DELAY_US: u64 = 1000;

/// Tuning knobs of the serving substrate. `ServeConfig::default()` is a
/// sane lab setup; `docs/OPERATIONS.md` discusses sizing.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Connection-handling worker threads (min 1).
    pub workers: usize,
    /// Stop after this many requests (`u64::MAX` = run forever).
    pub max_requests: u64,
    /// Per-connection read/write deadline; `None` disables (a silent
    /// client can then pin a worker until shutdown force-closes it).
    pub idle_timeout: Option<Duration>,
    /// Reject request lines longer than this many bytes.
    pub max_line_bytes: usize,
    /// Close a connection after this many requests (`u64::MAX` = no cap).
    pub max_conn_requests: u64,
    /// Accepted connections queued ahead of the workers; beyond this the
    /// acceptor sheds (`ERR busy`) instead of queueing (min 1).
    pub queue_capacity: usize,
    /// Base for the `retry_after_ms` hint sent with `ERR busy` /
    /// shutdown sheds; each response jitters it into `[base/2, 3*base/2]`
    /// so shed clients don't retry in lockstep.
    pub retry_after_ms: u64,
    /// How long [`Server::join`] waits for in-flight connections to drain
    /// after shutdown starts before force-closing them.
    pub drain_deadline: Duration,
    /// `HEALTH` reports `ready=0` while the lifetime shed rate
    /// (`shed / (shed + accepted)`) exceeds this fraction.
    pub shed_rate_threshold: f64,
    /// When set, the pool failed to load (corrupt/truncated store): the
    /// server runs degraded — `HEALTH` reports `ready=0 pool=error` and
    /// data verbs answer `ERR not ready` — so an operator can probe what
    /// went wrong instead of facing a dead port.
    pub pool_error: Option<String>,
    /// Print a final `METRICS <json>` line to stderr when the server
    /// shuts down (the lifecycle's metrics flush).
    pub metrics_on_shutdown: bool,
    /// Micro-batching: flush a per-task-set `PREDICT` queue once it holds
    /// this many samples. Values ≤ 1 disable cross-connection batching
    /// (every `PREDICT` runs immediately, as a batch of one).
    pub max_batch: usize,
    /// Micro-batching: flush a non-empty queue this long after its first
    /// request arrived, even if it never fills (bounds added latency).
    pub batch_delay: Duration,
    /// Flight-recorder ring capacity (events retained); applied to the
    /// service's recorder when the server starts.
    pub recorder_events: usize,
    /// Where flight-recorder dumps land. When set, `SHUTDOWN` writes a
    /// final dump there as the server drains; `DUMP` writes there too
    /// (falling back to the OS temp dir when unset).
    pub recorder_dir: Option<PathBuf>,
    /// Transport backend (`--net threads|epoll`). The default honors the
    /// `POE_NET` environment variable so the whole test suite can be
    /// replayed against either backend without touching call sites.
    pub net: NetBackend,
    /// Concurrent-connection cap for the epoll backend; connections past
    /// it are shed with `ERR busy` (the threads backend's equivalent
    /// knob is `queue_capacity` + `workers`).
    pub max_conns: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: DEFAULT_WORKERS,
            max_requests: u64::MAX,
            idle_timeout: Some(Duration::from_secs(30)),
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            max_conn_requests: u64::MAX,
            queue_capacity: 128,
            retry_after_ms: 100,
            drain_deadline: Duration::from_secs(5),
            shed_rate_threshold: 0.5,
            pool_error: None,
            metrics_on_shutdown: false,
            max_batch: DEFAULT_MAX_BATCH,
            batch_delay: Duration::from_micros(DEFAULT_BATCH_DELAY_US),
            recorder_events: poe_obs::DEFAULT_RECORDER_EVENTS,
            recorder_dir: None,
            net: NetBackend::from_env(),
            max_conns: DEFAULT_MAX_CONNS,
        }
    }
}

impl ServeConfig {
    /// Starts a fluent build from the defaults:
    /// `ServeConfig::builder().workers(8).max_requests(100).build()`.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            cfg: ServeConfig::default(),
        }
    }
}

/// Fluent builder for [`ServeConfig`] — the embedding surface for
/// starting a server programmatically. Replaces the old positional
/// `serve(listener, svc, input_dim, max_requests, workers, …)`
/// entrypoints, which grew an argument per release; every knob is a
/// named setter here and unset knobs keep their [`Default`] values.
/// Out-of-range values are clamped to the nearest legal one (`workers`
/// and `queue_capacity` to ≥ 1) instead of erroring.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl ServeConfigBuilder {
    /// Connection-handling worker threads (clamped to ≥ 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.cfg.workers = n.max(1);
        self
    }

    /// Stop after this many requests (`u64::MAX` = run forever).
    pub fn max_requests(mut self, n: u64) -> Self {
        self.cfg.max_requests = n;
        self
    }

    /// Per-connection read/write deadline; `None` disables it.
    pub fn idle_timeout(mut self, t: Option<Duration>) -> Self {
        self.cfg.idle_timeout = t;
        self
    }

    /// Reject request lines longer than this many bytes.
    pub fn max_line_bytes(mut self, n: usize) -> Self {
        self.cfg.max_line_bytes = n;
        self
    }

    /// Close a connection after this many requests (`u64::MAX` = no cap).
    pub fn max_conn_requests(mut self, n: u64) -> Self {
        self.cfg.max_conn_requests = n;
        self
    }

    /// Accept-queue depth before the acceptor sheds (clamped to ≥ 1).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.cfg.queue_capacity = n.max(1);
        self
    }

    /// Base for the jittered `retry_after_ms` hint in shed responses.
    pub fn retry_after_ms(mut self, ms: u64) -> Self {
        self.cfg.retry_after_ms = ms;
        self
    }

    /// How long [`Server::join`] waits for in-flight connections before
    /// force-closing them.
    pub fn drain_deadline(mut self, t: Duration) -> Self {
        self.cfg.drain_deadline = t;
        self
    }

    /// `HEALTH` reports `ready=0` past this lifetime shed-rate fraction.
    pub fn shed_rate_threshold(mut self, f: f64) -> Self {
        self.cfg.shed_rate_threshold = f;
        self
    }

    /// Marks the pool as failed-to-load: the server runs degraded.
    pub fn pool_error(mut self, e: Option<String>) -> Self {
        self.cfg.pool_error = e;
        self
    }

    /// Print a final `METRICS <json>` line to stderr on shutdown.
    pub fn metrics_on_shutdown(mut self, on: bool) -> Self {
        self.cfg.metrics_on_shutdown = on;
        self
    }

    /// Micro-batch flush size (≤ 1 disables cross-connection batching).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.cfg.max_batch = n;
        self
    }

    /// Micro-batch flush delay after the first queued request.
    pub fn batch_delay(mut self, t: Duration) -> Self {
        self.cfg.batch_delay = t;
        self
    }

    /// Flight-recorder ring capacity (events retained).
    pub fn recorder_events(mut self, n: usize) -> Self {
        self.cfg.recorder_events = n;
        self
    }

    /// Where flight-recorder dumps land (`SHUTDOWN` and `DUMP`).
    pub fn recorder_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.cfg.recorder_dir = dir;
        self
    }

    /// Transport backend (`threads` or `epoll`).
    pub fn net(mut self, net: NetBackend) -> Self {
        self.cfg.net = net;
        self
    }

    /// Concurrent-connection cap for the epoll backend.
    pub fn max_conns(mut self, n: usize) -> Self {
        self.cfg.max_conns = n;
        self
    }

    /// The finished configuration.
    pub fn build(self) -> ServeConfig {
        self.cfg
    }

    /// Builds and starts the server in one call — the fluent replacement
    /// for the old `serve(listener, svc, …)` wrapper:
    /// `ServeConfig::builder().max_requests(3).start(listener, svc, 4)?`.
    pub fn start(
        self,
        listener: TcpListener,
        service: Arc<QueryService>,
        input_dim: usize,
    ) -> std::io::Result<Server> {
        Server::start(listener, service, input_dim, self.build())
    }
}

/// What [`Server::join`] reports after a clean exit.
#[derive(Debug, Clone, Copy)]
pub struct ServeReport {
    /// Requests answered successfully over the server's lifetime.
    pub handled: u64,
    /// Whether the drain deadline expired and stragglers were
    /// force-closed (also counted in `serve.drain_timeouts`).
    pub drain_timed_out: bool,
}

/// Serve-layer counters, registered in the service's metrics registry so
/// `METRICS` exports them alongside everything else.
struct ServeMetrics {
    accepted: Arc<poe_obs::Counter>,
    shed: Arc<poe_obs::Counter>,
    timeouts: Arc<poe_obs::Counter>,
    oversize: Arc<poe_obs::Counter>,
    write_errors: Arc<poe_obs::Counter>,
    worker_panics: Arc<poe_obs::Counter>,
    drain_timeouts: Arc<poe_obs::Counter>,
}

impl ServeMetrics {
    fn register(service: &QueryService) -> Self {
        let r = &service.obs().registry;
        ServeMetrics {
            accepted: r.counter("serve.accepted"),
            shed: r.counter("serve.shed"),
            timeouts: r.counter("serve.timeouts"),
            oversize: r.counter("serve.oversize"),
            write_errors: r.counter("serve.write_errors"),
            worker_panics: r.counter("serve.worker_panics"),
            drain_timeouts: r.counter("serve.drain_timeouts"),
        }
    }
}

/// Instruments of the micro-batch scheduler, registered alongside the
/// other `serve.*` metrics so `METRICS` exports them.
struct BatchMetrics {
    /// `serve.batch.size` — samples per flushed batch (count-valued
    /// histogram; the `.size` suffix makes exporters render raw counts).
    size: Arc<poe_obs::AtomicHistogram>,
    /// `serve.batch.queue_depth` — samples currently parked across all
    /// per-task-set queues.
    queue_depth: Arc<poe_obs::Gauge>,
    /// `serve.batch.flush.full` — flushes triggered by a full queue.
    flush_full: Arc<poe_obs::Counter>,
    /// `serve.batch.flush.timeout` — flushes triggered by the delay timer.
    flush_timeout: Arc<poe_obs::Counter>,
    /// `serve.batch.flush.drain` — flushes triggered by shutdown drain
    /// (including post-drain stragglers run as batches of one).
    flush_drain: Arc<poe_obs::Counter>,
    /// `serve.batch.aborted` — batches lost to a panic inside the batched
    /// inference; their requests answer `ERR batch aborted`.
    aborted: Arc<poe_obs::Counter>,
}

impl BatchMetrics {
    fn register(service: &QueryService) -> Self {
        let r = &service.obs().registry;
        BatchMetrics {
            size: r.histogram("serve.batch.size"),
            queue_depth: r.gauge("serve.batch.queue_depth"),
            flush_full: r.counter("serve.batch.flush.full"),
            flush_timeout: r.counter("serve.batch.flush.timeout"),
            flush_drain: r.counter("serve.batch.flush.drain"),
            aborted: r.counter("serve.batch.aborted"),
        }
    }
}

/// One `PREDICT` parked in a batch queue: its feature row and the
/// single-use channel its prediction comes back on. Dropping the sender
/// without sending wakes the parked request with [`WireError::BatchAborted`].
struct Parked {
    features: Vec<f32>,
    tx: SyncSender<Result<Prediction, QueryError>>,
    /// The parked request's id, captured at submit time so flush events in
    /// the flight recorder can name every row they answered (or lost).
    request_id: u64,
}

/// The rows accumulated for one task set, plus the deadline by which the
/// timer thread flushes them regardless of fill.
struct PendingBatch {
    rows: Vec<Parked>,
    deadline: Instant,
}

/// The cross-connection micro-batch scheduler.
///
/// `PREDICT` requests park in per-task-set queues (keyed on the *sorted*
/// task set, mirroring the consolidation cache, so permutations of the
/// same composite task share a batch). A queue flushes when it reaches
/// `max_batch` rows — inline, on the worker that filled it — or when
/// `delay` elapses since its first row, on the dedicated timer thread.
/// A flush runs one [`QueryService::predict_batch`] and demultiplexes the
/// per-row predictions back to the parked connections.
///
/// [`BatchScheduler::drain`] (shutdown) flushes every queue and marks the
/// scheduler drained; requests submitted after that run immediately as
/// batches of one, so nothing is ever lost or answered twice.
struct BatchScheduler {
    service: Arc<QueryService>,
    input_dim: usize,
    max_batch: usize,
    delay: Duration,
    /// `None` once drained; the timer thread exits when it sees that.
    queues: Mutex<Option<HashMap<Vec<usize>, PendingBatch>>>,
    cvar: Condvar,
    metrics: BatchMetrics,
}

impl BatchScheduler {
    fn new(service: Arc<QueryService>, input_dim: usize, cfg: &ServeConfig) -> Self {
        let metrics = BatchMetrics::register(&service);
        BatchScheduler {
            service,
            input_dim,
            max_batch: cfg.max_batch.max(2),
            delay: cfg.batch_delay,
            queues: Mutex::new(Some(HashMap::new())),
            cvar: Condvar::new(),
            metrics,
        }
    }

    fn lock_queues(&self) -> MutexGuard<'_, Option<HashMap<Vec<usize>, PendingBatch>>> {
        self.queues.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Parks one request and blocks until its batch is flushed, returning
    /// this row's prediction (or the whole batch's consolidation error).
    fn submit(&self, mut tasks: Vec<usize>, features: Vec<f32>) -> Result<Prediction, WireError> {
        tasks.sort_unstable(); // batch key = sorted task set, like the cache
        let request_id = poe_obs::current_request_id();
        let (rx, full) = {
            let mut guard = self.lock_queues();
            let Some(queues) = guard.as_mut() else {
                // Drained: no timer thread will come, so run immediately.
                drop(guard);
                return self.run_straggler(&tasks, features, request_id);
            };
            let (tx, rx) = sync_channel(1);
            let batch = queues.entry(tasks.clone()).or_insert_with(|| PendingBatch {
                rows: Vec::new(),
                deadline: Instant::now() + self.delay,
            });
            batch.rows.push(Parked {
                features,
                tx,
                request_id,
            });
            let full = if batch.rows.len() >= self.max_batch {
                queues.remove(&tasks)
            } else {
                None
            };
            self.metrics.queue_depth.set(depth_of(queues) as f64);
            (rx, full)
        };
        match full {
            Some(batch) => {
                // This request completed the batch: flush inline (the
                // sends below include our own row, so recv cannot block).
                self.flush(&tasks, batch, "full");
            }
            // A new row may have moved the earliest deadline: wake the
            // timer thread to re-arm.
            None => self.cvar.notify_all(),
        }
        match rx.recv() {
            Ok(Ok(p)) => Ok(p),
            Ok(Err(e)) => Err(WireError::Query(e)),
            Err(_) => Err(WireError::BatchAborted),
        }
    }

    /// Runs one batched inference and demultiplexes per-row results to
    /// every parked connection. `cause` names what triggered the flush
    /// (`full` / `timeout` / `drain`) and drives both the per-cause flush
    /// counter and the `batch.flush` flight-recorder event. A panic inside
    /// the model (a bug, or an injected chaos fault) is contained here:
    /// the senders drop, every waiter answers `ERR batch aborted`, a
    /// `batch.abort` event names the lost request ids, and the scheduler
    /// lives on.
    fn flush(&self, tasks: &[usize], batch: PendingBatch, cause: &'static str) {
        let rows = batch.rows;
        match cause {
            "full" => self.metrics.flush_full.inc(),
            "timeout" => self.metrics.flush_timeout.inc(),
            _ => self.metrics.flush_drain.inc(),
        }
        self.metrics.size.record_n(rows.len() as u64);
        let ids: Vec<u64> = rows.iter().map(|p| p.request_id).collect();
        self.service.obs().flight.record_for(
            ids.first().copied().unwrap_or(0),
            "batch.flush",
            format!(
                "cause={cause} size={} tasks={} ids={}",
                rows.len(),
                join_usize(tasks),
                join_u64(&ids)
            ),
        );
        let mut data = Vec::with_capacity(rows.len() * self.input_dim);
        for p in &rows {
            data.extend_from_slice(&p.features);
        }
        let x = Tensor::from_vec(data, [rows.len(), self.input_dim]);
        match catch_unwind(AssertUnwindSafe(|| {
            poe_chaos::maybe_panic(poe_chaos::sites::SERVE_BATCH_PANIC);
            self.service.predict_batch(tasks, &x)
        })) {
            Ok(Ok(preds)) => {
                for (p, parked) in preds.into_iter().zip(rows) {
                    let _ = parked.tx.send(Ok(p));
                }
            }
            Ok(Err(e)) => {
                for parked in rows {
                    let _ = parked.tx.send(Err(e.clone()));
                }
            }
            Err(_) => {
                self.metrics.aborted.inc();
                self.service.obs().flight.record_for(
                    ids.first().copied().unwrap_or(0),
                    "batch.abort",
                    format!(
                        "cause=panic size={} tasks={} ids={}",
                        ids.len(),
                        join_usize(tasks),
                        join_u64(&ids)
                    ),
                );
            }
        }
    }

    /// A post-drain request: run it alone, still through [`Self::flush`]
    /// so `service.batch.*` accounting and flight-recorder events stay
    /// complete.
    fn run_straggler(
        &self,
        tasks: &[usize],
        features: Vec<f32>,
        request_id: u64,
    ) -> Result<Prediction, WireError> {
        let (tx, rx) = sync_channel(1);
        let batch = PendingBatch {
            rows: vec![Parked {
                features,
                tx,
                request_id,
            }],
            deadline: Instant::now(),
        };
        self.flush(tasks, batch, "drain");
        match rx.recv() {
            Ok(Ok(p)) => Ok(p),
            Ok(Err(e)) => Err(WireError::Query(e)),
            Err(_) => Err(WireError::BatchAborted),
        }
    }

    /// Shutdown: flush every parked queue (no request is lost) and mark
    /// the scheduler drained so the timer thread exits. Idempotent.
    fn drain(&self) {
        let taken = self.lock_queues().take();
        self.cvar.notify_all();
        let Some(queues) = taken else { return };
        for (tasks, batch) in queues {
            self.flush(&tasks, batch, "drain");
        }
        self.metrics.queue_depth.set(0.0);
    }

    /// Parked rows across all queues and the number of non-empty queues —
    /// the `HEALTH` verb's `batch_queues`/`batch_depth` fields.
    fn queue_stats(&self) -> (usize, usize) {
        match self.lock_queues().as_ref() {
            Some(queues) => (queues.len(), depth_of(queues)),
            None => (0, 0),
        }
    }
}

fn depth_of(queues: &HashMap<Vec<usize>, PendingBatch>) -> usize {
    queues.values().map(|b| b.rows.len()).sum()
}

/// The timer thread: flushes batches whose delay window expired. Full-queue
/// flushes happen inline on worker threads; this thread only enforces the
/// latency bound and exits once [`BatchScheduler::drain`] runs.
fn batcher_loop(scheduler: Arc<BatchScheduler>) {
    let mut guard = scheduler.lock_queues();
    while let Some(queues) = guard.as_mut() {
        let now = Instant::now();
        let expired: Vec<Vec<usize>> = queues
            .iter()
            .filter(|(_, b)| b.deadline <= now)
            .map(|(k, _)| k.clone())
            .collect();
        if !expired.is_empty() {
            let batches: Vec<(Vec<usize>, PendingBatch)> = expired
                .into_iter()
                .filter_map(|k| queues.remove(&k).map(|b| (k, b)))
                .collect();
            scheduler.metrics.queue_depth.set(depth_of(queues) as f64);
            drop(guard);
            for (tasks, batch) in batches {
                scheduler.flush(&tasks, batch, "timeout");
            }
            guard = scheduler.lock_queues();
            continue;
        }
        guard = match queues.values().map(|b| b.deadline).min() {
            Some(deadline) => {
                let wait = deadline.saturating_duration_since(now);
                scheduler
                    .cvar
                    .wait_timeout(guard, wait)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0
            }
            None => scheduler
                .cvar
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner),
        };
    }
}

/// Progress shared between the acceptor, the workers, and `join`.
struct ServeState {
    handled: u64,
    accept_error: Option<std::io::Error>,
}

struct ServerShared {
    cfg: ServeConfig,
    service: Arc<QueryService>,
    input_dim: usize,
    addr: SocketAddr,
    state: Mutex<ServeState>,
    cvar: Condvar,
    draining: AtomicBool,
    workers_alive: AtomicUsize,
    /// In-flight connections, so shutdown can force-close stragglers
    /// (threads backend only; the epoll loop owns its own sockets).
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    metrics: ServeMetrics,
    /// The micro-batch scheduler; `None` when `cfg.max_batch ≤ 1`.
    batcher: Option<Arc<BatchScheduler>>,
    /// Set once when the epoll backend starts: `HEALTH`'s `inflight`,
    /// shutdown, and force-close route through the event loop instead of
    /// the `conns` map.
    net_handle: OnceLock<poe_net::LoopHandle>,
}

impl ServerShared {
    /// Locks `state`, surviving poisoning (a chaos-injected worker panic
    /// must not take the whole server down with it).
    fn lock_state(&self) -> MutexGuard<'_, ServeState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_conns(&self) -> MutexGuard<'_, HashMap<u64, TcpStream>> {
        self.conns.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Starts the drain: stop accepting, flush every parked batch, wake
    /// everyone. Idempotent.
    fn trigger_shutdown(&self) {
        if self.draining.swap(true, Ordering::AcqRel) {
            return;
        }
        self.service
            .obs()
            .flight
            .record_for(0, "server.drain", format!("addr={}", self.addr));
        // Flush parked PREDICT batches first, so every already-accepted
        // request is answered before the connection drain begins.
        if let Some(b) = &self.batcher {
            b.drain();
        }
        if let Some(h) = self.net_handle.get() {
            // Epoll backend: the loop refuses idle connections, finishes
            // in-flight ones, and force-closes at its drain deadline.
            h.shutdown();
        } else {
            // Wake the acceptor out of its blocking accept() so it can
            // see the flag and drop the queue sender.
            let _ = TcpStream::connect(self.addr);
        }
        self.cvar.notify_all();
    }

    fn force_close_conns(&self) {
        if let Some(h) = self.net_handle.get() {
            h.force_close();
            return;
        }
        for stream in self.lock_conns().values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Connections currently registered, whichever backend owns them.
    fn inflight(&self) -> usize {
        match self.net_handle.get() {
            Some(h) => h.connections(),
            None => self.lock_conns().len(),
        }
    }

    fn shed_rate(&self) -> f64 {
        let shed = self.metrics.shed.get();
        let accepted = self.metrics.accepted.get();
        if shed + accepted == 0 {
            0.0
        } else {
            shed as f64 / (shed + accepted) as f64
        }
    }
}

/// A running query server: acceptor + workers, all joined on shutdown.
///
/// [`Server::start`] returns immediately; [`Server::join`] blocks until
/// the request budget is spent, the listener dies, or a shutdown is
/// requested (the `SHUTDOWN` verb or [`ServerHandle::shutdown`]), then
/// drains and joins every thread. [`ServeConfigBuilder::start`] builds a
/// config and starts the server in one fluent call.
pub struct Server {
    shared: Arc<ServerShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    batcher: Option<std::thread::JoinHandle<()>>,
    /// The running event loop when the epoll backend is active.
    event_loop: Option<epoll::EpollParts>,
}

/// A cloneable remote control for a [`Server`] (shutdown, progress).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<ServerShared>,
}

impl ServerHandle {
    /// Requests a graceful shutdown: stop accepting, drain in-flight
    /// requests, join threads. Idempotent; returns immediately (the
    /// drain happens in [`Server::join`]).
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Whether a shutdown has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Requests answered so far.
    pub fn handled(&self) -> u64 {
        self.shared.lock_state().handled
    }
}

impl Server {
    /// Binds the serving threads to `listener` and starts accepting.
    pub fn start(
        listener: TcpListener,
        service: Arc<QueryService>,
        input_dim: usize,
        cfg: ServeConfig,
    ) -> std::io::Result<Server> {
        let addr = listener.local_addr()?;
        let workers_n = cfg.workers.max(1);
        let metrics = ServeMetrics::register(&service);
        let flight = &service.obs().flight;
        flight.set_capacity(cfg.recorder_events);
        // The epoll loop only exists on Linux x86-64/aarch64; elsewhere
        // (or when the loop cannot start) fall back to threads so `--net
        // epoll` degrades instead of failing.
        let mut net = cfg.net;
        if net == NetBackend::Epoll && !poe_net::epoll_supported() {
            flight.record_for(0, "server.net.fallback", "reason=unsupported".to_string());
            net = NetBackend::Threads;
        }
        flight.record_for(
            0,
            "server.start",
            format!(
                "addr={addr} workers={workers_n} max_batch={} net={}",
                cfg.max_batch,
                net.name()
            ),
        );
        let batch_scheduler = (cfg.max_batch > 1)
            .then(|| Arc::new(BatchScheduler::new(Arc::clone(&service), input_dim, &cfg)));
        let shared = Arc::new(ServerShared {
            cfg,
            service,
            input_dim,
            addr,
            state: Mutex::new(ServeState {
                handled: 0,
                accept_error: None,
            }),
            cvar: Condvar::new(),
            draining: AtomicBool::new(false),
            workers_alive: AtomicUsize::new(workers_n),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            metrics,
            batcher: batch_scheduler,
            net_handle: OnceLock::new(),
        });
        let batcher_thread = shared.batcher.as_ref().map(|b| {
            let b = Arc::clone(b);
            std::thread::Builder::new()
                .name("poe-serve-batcher".into())
                .spawn(move || batcher_loop(b))
                .expect("spawn serve batcher")
        });

        if net == NetBackend::Epoll {
            match epoll::start(listener, Arc::clone(&shared), workers_n) {
                Ok((parts, workers)) => {
                    return Ok(Server {
                        shared,
                        workers,
                        acceptor: None,
                        batcher: batcher_thread,
                        event_loop: Some(parts),
                    });
                }
                Err(e) => {
                    // Startup failed (epoll_create, eventfd, …): the
                    // listener was consumed, so this is fatal rather
                    // than a silent downgrade mid-flight.
                    return Err(e);
                }
            }
        }

        let (conn_tx, conn_rx) = sync_channel::<TcpStream>(shared.cfg.queue_capacity.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let conn_rx = Arc::clone(&conn_rx);
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("poe-serve-worker-{i}"))
                    .spawn(move || worker_loop(conn_rx, shared))
                    .expect("spawn serve worker"),
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("poe-serve-acceptor".into())
                .spawn(move || acceptor_loop(listener, conn_tx, shared))
                .expect("spawn serve acceptor")
        };
        Ok(Server {
            shared,
            workers,
            acceptor: Some(acceptor),
            batcher: batcher_thread,
            event_loop: None,
        })
    }

    /// A cloneable control handle (usable from other threads).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Connections currently being served (not queued ones).
    pub fn active_connections(&self) -> usize {
        self.shared.inflight()
    }

    /// The transport backend actually serving (after any fallback).
    pub fn net_backend(&self) -> NetBackend {
        if self.event_loop.is_some() {
            NetBackend::Epoll
        } else {
            NetBackend::Threads
        }
    }

    /// Blocks until the server finishes (budget spent, listener error, or
    /// shutdown requested), drains within the configured deadline, joins
    /// every thread, and reports.
    pub fn join(mut self) -> std::io::Result<ServeReport> {
        {
            let mut st = self.shared.lock_state();
            while st.handled < self.shared.cfg.max_requests
                && st.accept_error.is_none()
                && !self.shared.draining.load(Ordering::Acquire)
            {
                st = self
                    .shared
                    .cvar
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        self.shared.trigger_shutdown();

        let mut drain_timed_out = false;
        if let Some(parts) = self.event_loop.take() {
            // Epoll: the loop thread runs the drain itself — refuse idle
            // connections, finish in-flight ones, force-close stragglers
            // at its deadline — then exits and reports.
            let report = parts.join(&self.shared);
            drain_timed_out = report.drain_timed_out;
            if drain_timed_out {
                self.shared.metrics.drain_timeouts.inc();
            }
            if let Some(msg) = report.accept_error {
                let mut st = self.shared.lock_state();
                if st.accept_error.is_none() {
                    st.accept_error = Some(std::io::Error::other(msg));
                }
            }
        } else {
            // Threads: workers exit once the acceptor drops the queue
            // sender and their current connection ends. Past the
            // deadline, yank the remaining connections shut so blocked
            // reads/writes error out.
            let deadline = Instant::now() + self.shared.cfg.drain_deadline;
            while self.shared.workers_alive.load(Ordering::Acquire) > 0 {
                if Instant::now() >= deadline {
                    if !drain_timed_out {
                        drain_timed_out = true;
                        self.shared.metrics.drain_timeouts.inc();
                    }
                    self.shared.force_close_conns();
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // trigger_shutdown drained the batch queues; the timer thread saw
        // the drained marker and exited.
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
        }

        // The black box's shutdown entry, then the final dump (when a
        // recorder dir is configured) — the post-mortem file an operator
        // reads after an unexplained exit.
        let flight = &self.shared.service.obs().flight;
        flight.record_for(
            0,
            "server.shutdown",
            format!("handled={}", self.shared.lock_state().handled),
        );
        if let Some(dir) = &self.shared.cfg.recorder_dir {
            match flight.dump_to_dir(dir) {
                Ok(path) => eprintln!("flight recorder dumped to {}", path.display()),
                Err(e) => eprintln!("flight recorder dump failed: {e}"),
            }
        }
        if self.shared.cfg.metrics_on_shutdown {
            eprintln!("METRICS {}", metrics_json(&self.shared.service));
        }
        let mut st = self.shared.lock_state();
        if let Some(e) = st.accept_error.take() {
            return Err(e);
        }
        Ok(ServeReport {
            handled: st.handled,
            drain_timed_out,
        })
    }
}

fn acceptor_loop(listener: TcpListener, conn_tx: SyncSender<TcpStream>, shared: Arc<ServerShared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.draining.load(Ordering::Acquire) {
                    break; // the shutdown wake-up (or a late client)
                }
                match conn_tx.try_send(stream) {
                    Ok(()) => shared.metrics.accepted.inc(),
                    Err(TrySendError::Full(stream)) => shed(stream, &shared),
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(e) => {
                shared.lock_state().accept_error = Some(e);
                shared.cvar.notify_all();
                break;
            }
        }
    }
    // Dropping conn_tx here lets workers drain the queue and exit.
}

/// Load shedding: the queue is full, so answer `ERR busy` and close —
/// a fast refusal the client can retry, instead of an unbounded queue.
fn shed(mut stream: TcpStream, shared: &ServerShared) {
    shared.metrics.shed.inc();
    // The hint is jittered per response: a fixed constant would march
    // every shed client back in lockstep and re-stampede the queue.
    let retry_after_ms = jittered_retry_after_ms(shared.cfg.retry_after_ms);
    shared
        .service
        .obs()
        .flight
        .record_for(0, "shed", format!("retry_after_ms={retry_after_ms}"));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let busy = WireError::Busy { retry_after_ms };
    let _ = writeln!(stream, "{}", busy.line());
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn worker_loop(conn_rx: Arc<Mutex<Receiver<TcpStream>>>, shared: Arc<ServerShared>) {
    loop {
        let stream = {
            let rx = conn_rx.lock().unwrap_or_else(PoisonError::into_inner);
            match rx.recv() {
                Ok(s) => s,
                Err(_) => break, // acceptor gone and queue drained
            }
        };
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.lock_conns().insert(conn_id, clone);
        }
        // A panic while serving one connection (a bug — or an injected
        // chaos fault) kills that connection, not the worker: the thread
        // survives to serve the next client.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            poe_chaos::maybe_panic(poe_chaos::sites::SERVE_WORKER_PANIC);
            handle_connection(stream, &shared);
        }));
        shared.lock_conns().remove(&conn_id);
        if outcome.is_err() {
            shared.metrics.worker_panics.inc();
            shared.service.obs().flight.record_for(
                0,
                "worker.panic",
                format!("conn={conn_id} contained=1"),
            );
            shared.cvar.notify_all();
        }
    }
    shared.workers_alive.fetch_sub(1, Ordering::AcqRel);
    shared.cvar.notify_all();
}

/// Writes one response line through the shared [`poe_net::send_line`]
/// single-syscall framing helper, behind this server's chaos write-fault
/// site.
fn send_line(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    if let Some(e) = poe_chaos::fail_io(poe_chaos::sites::SERVE_WRITE_IO) {
        return Err(e);
    }
    poe_net::send_line(writer, line)
}

fn handle_connection(stream: TcpStream, shared: &Arc<ServerShared>) {
    let cfg = &shared.cfg;
    let _ = stream.set_nodelay(true);
    if let Some(t) = cfg.idle_timeout {
        let _ = stream.set_read_timeout(Some(t));
        let _ = stream.set_write_timeout(Some(t));
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = poe_net::LineReader::new(stream, cfg.max_line_bytes)
        .with_stall_site(poe_chaos::sites::SERVE_READ_STALL);
    let mut conn_requests = 0u64;
    loop {
        if shared.draining.load(Ordering::Acquire) {
            // The drain covers the request in flight; subsequent ones on
            // a kept-alive connection are refused with a retry hint.
            let refusal = WireError::ShuttingDown {
                retry_after_ms: jittered_retry_after_ms(cfg.retry_after_ms),
            };
            let _ = send_line(&mut writer, &refusal.line());
            break;
        }
        let line = match reader.read_line() {
            poe_net::ReadOutcome::Line(l) => l,
            poe_net::ReadOutcome::TooLong => {
                shared.metrics.oversize.inc();
                let oversize = WireError::LineTooLong {
                    max_bytes: cfg.max_line_bytes,
                };
                let _ = send_line(&mut writer, &oversize.line());
                break;
            }
            poe_net::ReadOutcome::TimedOut => {
                shared.metrics.timeouts.inc();
                let _ = send_line(&mut writer, &WireError::IdleTimeout.line());
                break;
            }
            poe_net::ReadOutcome::Closed => break,
        };
        let (response, action) =
            respond_action(&line, &shared.service, shared.input_dim, Some(shared));
        if send_line(&mut writer, &response).is_err() {
            // The client is gone (or chaos says so): the request was NOT
            // answered, so it is not counted as handled.
            shared.metrics.write_errors.inc();
            break;
        }
        conn_requests += 1;
        let n = {
            let mut st = shared.lock_state();
            st.handled += 1;
            st.handled
        };
        shared.cvar.notify_all();
        match action {
            Action::Shutdown => {
                shared.trigger_shutdown();
                break;
            }
            Action::Close => break,
            Action::Continue => {}
        }
        if n >= cfg.max_requests {
            break;
        }
        if conn_requests >= cfg.max_conn_requests {
            let _ = send_line(&mut writer, &WireError::ConnRequestLimit.line());
            break;
        }
    }
}

/// What the connection loop should do after writing a response.
enum Action {
    Continue,
    Close,
    Shutdown,
}

/// Computes the response line for one request line (protocol core, kept
/// free of I/O so it is directly testable). Server-lifecycle verbs
/// (`HEALTH` readiness details, `SHUTDOWN`) report degenerate values
/// without a running [`Server`]; everything else is self-contained.
///
/// Wraps the dispatch in the request-level observability plumbing: a fresh
/// request ID, a `serve.request` span against the service's trace
/// collector, a `serve.requests.<verb>` counter, and a slow-log
/// observation (slow requests are also echoed to stderr so an operator
/// sees them without polling `METRICS`).
pub fn respond(line: &str, service: &QueryService, input_dim: usize) -> String {
    respond_action(line, service, input_dim, None).0
}

fn respond_action(
    line: &str,
    service: &QueryService,
    input_dim: usize,
    server: Option<&ServerShared>,
) -> (String, Action) {
    let obs = service.obs();
    let request_id = poe_obs::next_request_id();
    let start = Instant::now();
    let trimmed = line.trim();
    // A router-originated request carries an `@<id>` correlation prefix
    // (the router's request id); stripping it here and echoing it as
    // `origin=` in the start event joins one request's flight events
    // across the router and shard processes. A malformed prefix is left
    // in place and falls through to the unknown-verb error.
    let (origin, trimmed) = match trimmed
        .strip_prefix('@')
        .and_then(|rest| rest.split_once(char::is_whitespace))
        .and_then(|(id, tail)| id.parse::<u64>().ok().map(|id| (id, tail.trim())))
    {
        Some((id, tail)) => (Some(id), tail),
        None => (None, trimmed),
    };
    let verb = wire::split_verb(trimmed).0.to_ascii_uppercase();
    // Per-verb counters count attempts, so the name comes from the raw
    // verb token — a QUERY with a bad task list still counts as a QUERY.
    let counter_name = match wire::verb_slug(trimmed) {
        Some(slug) => format!("serve.requests.{slug}"),
        None => "serve.requests.other".to_string(),
    };
    obs.registry.counter(&counter_name).inc();
    let start_detail = match origin {
        Some(o) => format!("verb={verb} origin={o}"),
        None => format!("verb={verb}"),
    };
    obs.flight
        .record_for(request_id, "request.start", start_detail);
    let response = poe_obs::with_request(&obs.trace, request_id, || {
        let _span = poe_obs::span("serve.request");
        // The sentinel records `request.panic` with this request's id if
        // the handler unwinds — the request context is torn down before
        // the worker's catch_unwind sees the panic, so this is the only
        // place the id is still known.
        let _sentinel = PanicSentinel {
            flight: obs.flight.as_ref(),
            request_id,
            verb: &verb,
        };
        respond_inner(trimmed, service, input_dim, server)
    });
    let elapsed = start.elapsed();
    // End-to-end request latency as a histogram; `METRICS openmetrics`
    // annotates its buckets with request-id exemplars sourced from the
    // matching `request.end` flight events.
    obs.registry
        .histogram("serve.request_secs")
        .record(elapsed.as_secs_f64());
    obs.flight.record_for(
        request_id,
        "request.end",
        format!(
            "verb={verb} ok={} ms={:.3}",
            u8::from(response.0.starts_with("OK")),
            elapsed.as_secs_f64() * 1e3
        ),
    );
    if obs.slow.observe(request_id, trimmed, elapsed) {
        eprintln!(
            "slow request #{request_id} ({:.3} ms): {trimmed}",
            elapsed.as_secs_f64() * 1e3
        );
    }
    response
}

/// Records a `request.panic` flight event on unwind; a normal return drops
/// it silently (the drop hook checks [`std::thread::panicking`]).
struct PanicSentinel<'a> {
    flight: &'a poe_obs::FlightRecorder,
    request_id: u64,
    verb: &'a str,
}

impl Drop for PanicSentinel<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.flight.record_for(
                self.request_id,
                "request.panic",
                format!("verb={}", self.verb),
            );
        }
    }
}

fn respond_inner(
    line: &str,
    service: &QueryService,
    input_dim: usize,
    server: Option<&ServerShared>,
) -> (String, Action) {
    // A degraded server (pool failed to load) refuses data verbs but
    // keeps answering lifecycle/observability ones, so an operator can
    // see *why* it is not ready. The check runs on the raw verb token,
    // before argument parsing — a degraded server reports its load error
    // even for a malformed QUERY.
    if let Some(s) = server {
        if let Some(detail) = &s.cfg.pool_error {
            if matches!(
                wire::split_verb(line).0.to_ascii_uppercase().as_str(),
                "INFO" | "QUERY" | "PREDICT" | "LOGITS" | "SWAP"
            ) {
                return (WireError::NotReady(detail.clone()).line(), Action::Continue);
            }
        }
    }

    let request = match wire::parse_request(line) {
        Ok(r) => r,
        Err(e) => return (e.line(), Action::Continue),
    };
    let text = match request {
        Request::Info => service.with_pool(|p| {
            format!(
                "OK tasks={} experts={} classes={}",
                p.hierarchy().num_primitives(),
                p.num_experts(),
                p.hierarchy().num_classes()
            )
        }),
        Request::Quit => return ("OK bye".into(), Action::Close),
        Request::Health => health_line(service, server),
        Request::Shutdown => match server {
            Some(_) => return ("OK shutting down".into(), Action::Shutdown),
            None => WireError::ShutdownNoServer.line(),
        },
        Request::Stats => {
            let s = service.stats();
            // An idle service has no latency distribution; `n/a` keeps the
            // field present without faking a 0 ms percentile.
            let ms = |v: Option<f64>| match v {
                Some(secs) => format!("{:.3}", secs * 1e3),
                None => "n/a".into(),
            };
            format!(
                "OK served={} rejected={} cache_hits={} cache_misses={} \
                 mean_ms={} p50_ms={} p95_ms={} p99_ms={}",
                s.queries_served,
                s.queries_rejected,
                s.cache_hits,
                s.cache_misses,
                ms(s.mean_assembly_secs()),
                ms(s.assembly_p50_secs()),
                ms(s.assembly_p95_secs()),
                ms(s.assembly_p99_secs()),
            )
        }
        Request::Metrics {
            format: MetricsFormat::Json,
        } => format!("OK {}", metrics_json(service)),
        Request::Metrics {
            format: MetricsFormat::OpenMetrics,
        } => {
            // The protocol's one multi-line response: a framing line
            // with the payload's line count, then the exposition text
            // whose `# EOF` terminator doubles as the end marker.
            let text = metrics_openmetrics(service);
            let body = text.trim_end_matches('\n');
            format!("OK openmetrics lines={}\n{body}", body.lines().count())
        }
        Request::Dump => {
            let flight = &service.obs().flight;
            let dir = server
                .and_then(|s| s.cfg.recorder_dir.clone())
                .unwrap_or_else(std::env::temp_dir);
            match flight.dump_to_dir(&dir) {
                Ok(path) => format!(
                    "OK dump path={} events={} dropped={}",
                    path.display(),
                    flight.len(),
                    flight.dropped()
                ),
                Err(e) => WireError::DumpFailed(e.to_string()).line(),
            }
        }
        Request::Trace { enabled } => {
            service.obs().trace.set_enabled(enabled);
            if enabled {
                "OK trace=on"
            } else {
                "OK trace=off"
            }
            .into()
        }
        Request::Query { tasks } => match service.query(&tasks) {
            Err(e) => WireError::from(e).line(),
            Ok(r) => format!(
                "OK outputs={} params={} assembly_ms={:.3} cached={} classes={} tasks={}",
                r.class_layout.len(),
                r.stats.params,
                r.stats.assembly_secs * 1e3,
                u8::from(r.stats.cache_hit),
                join_usize(&r.class_layout),
                join_usize(&column_tasks(&r.model)),
            ),
        },
        // The router's scatter verb: raw logit slices for the requested
        // tasks, with per-column class and task provenance, so the merge
        // (concat + one softmax) can happen at the edge. Runs unbatched —
        // the router is the only intended caller and already batches by
        // fanning out.
        Request::Logits { tasks, features } => match wire::parse_features(&features, input_dim) {
            Err(e) => e.line(),
            Ok(features) => match service.query(&tasks) {
                Err(e) => WireError::from(e).line(),
                Ok(r) => {
                    let x = Tensor::from_vec(features, [1, input_dim]);
                    let logits = r.model.infer(&x);
                    format!(
                        "OK logits={} classes={} tasks={}",
                        join_f32(logits.row(0)),
                        join_usize(&r.class_layout),
                        join_usize(&column_tasks(&r.model)),
                    )
                }
            },
        },
        Request::Swap { task } => match service.reload_expert(task) {
            Ok(version) => format!("OK swap task={task} version={version}"),
            Err(e) => WireError::from(e).line(),
        },
        Request::Predict { tasks, features } => {
            match wire::parse_features(&features, input_dim) {
                Err(e) => e.line(),
                Ok(features) => {
                    // Under a running server, park in the micro-batch queue
                    // for this task set; standalone (or with batching off),
                    // run immediately as a batch of one.
                    let result = match server.and_then(|s| s.batcher.as_deref()) {
                        Some(b) => b.submit(tasks, features),
                        None => direct_predict(service, &tasks, features, input_dim),
                    };
                    match result {
                        Ok(p) => format!(
                            "OK class={} task={} confidence={:.4}",
                            p.class, p.task_index, p.confidence
                        ),
                        Err(e) => {
                            let action = if e.closes_connection() {
                                Action::Close
                            } else {
                                Action::Continue
                            };
                            return (e.line(), action);
                        }
                    }
                }
            }
        }
    };
    (text, Action::Continue)
}

/// Owning task per output column, in logit order — the provenance the
/// router needs to stitch shard slices back into request order.
fn column_tasks(model: &poe_models::BranchedModel) -> Vec<usize> {
    model
        .branches()
        .flat_map(|b| std::iter::repeat_n(b.task_index, b.classes.len()))
        .collect()
}

/// The unbatched `PREDICT` path (library `respond` without a server, or
/// batching disabled): consolidate through the shared cache and classify
/// the one row.
fn direct_predict(
    service: &QueryService,
    tasks: &[usize],
    features: Vec<f32>,
    input_dim: usize,
) -> Result<Prediction, WireError> {
    let r = service.query(tasks).map_err(WireError::from)?;
    let x = Tensor::from_vec(features, [1, input_dim]);
    Ok(r.model.predict_with_provenance(&x)[0])
}

/// Renders the `HEALTH` response: liveness is implicit in answering at
/// all; readiness requires a loaded pool, live workers, no drain in
/// progress, and a shed rate under the configured threshold. The tail
/// fields surface queueing and recorder backpressure: `batch_queues` /
/// `batch_depth` count non-empty per-task-set batch queues and the rows
/// parked across them, and `recorder_dropped` is the flight recorder's
/// evicted-event count (a large value means the ring is too small for the
/// event rate — size up `--recorder-events`).
fn health_line(service: &QueryService, server: Option<&ServerShared>) -> String {
    let recorder_dropped = service.obs().flight.dropped();
    let simd = poe_tensor::simd::level_name();
    let Some(s) = server else {
        // Library/test use without a running server: trivially ready.
        return format!(
            "OK live=1 ready=1 pool=ok workers=0/0 inflight=0 shed_rate=0.000 draining=0 \
             batch_queues=0 batch_depth=0 recorder_dropped={recorder_dropped} simd={simd} \
             role=shard"
        );
    };
    let pool_ok = s.cfg.pool_error.is_none();
    let alive = s.workers_alive.load(Ordering::Acquire);
    let total = s.cfg.workers.max(1);
    let draining = s.draining.load(Ordering::Acquire);
    let rate = s.shed_rate();
    let ready = pool_ok && !draining && alive > 0 && rate <= s.cfg.shed_rate_threshold;
    let (batch_queues, batch_depth) = s
        .batcher
        .as_deref()
        .map_or((0, 0), BatchScheduler::queue_stats);
    // `role=` rides at the tail (new fields append, never reorder — see
    // PROTOCOL.md): a `poe serve` process is always the shard role; the
    // router renders its own HEALTH with `role=router`.
    let mut line = format!(
        "OK live=1 ready={} pool={} workers={}/{} inflight={} shed_rate={:.3} draining={} \
         batch_queues={batch_queues} batch_depth={batch_depth} \
         recorder_dropped={recorder_dropped} simd={simd} role=shard",
        u8::from(ready),
        if pool_ok { "ok" } else { "error" },
        alive,
        total,
        s.inflight(),
        rate,
        u8::from(draining),
    );
    if let Some(detail) = &s.cfg.pool_error {
        line.push_str(" detail=");
        line.push_str(detail);
    }
    line
}

/// Renders the full observability snapshot of `service` as one JSON line:
/// the service's own registry merged with the process-wide kernel/training
/// registry, plus tracing counters and the retained slow-query entries.
/// This is the payload of the `METRICS` verb and of the periodic
/// `--metrics-every` flush.
pub fn metrics_json(service: &QueryService) -> String {
    let obs = service.obs();
    let mut snap = obs.registry.snapshot();
    snap.merge(poe_obs::Registry::global().snapshot());
    let base = snap.to_json();
    let trace = &obs.trace;
    let slow: Vec<String> = obs
        .slow
        .entries()
        .iter()
        .map(|e| {
            format!(
                "{{\"request_id\":{},\"duration_ms\":{},\"line\":\"{}\"}}",
                e.request_id,
                poe_obs::json::fmt_f64(e.duration_secs * 1e3),
                poe_obs::json::json_escape(&e.detail)
            )
        })
        .collect();
    format!(
        "{},\"trace\":{{\"enabled\":{},\"spans_recorded\":{},\"events_dropped\":{}}},\
         \"slow_queries\":[{}]}}",
        &base[..base.len() - 1],
        trace.is_enabled(),
        trace.spans_recorded(),
        trace.events_dropped(),
        slow.join(",")
    )
}

/// Renders the same merged snapshot as [`metrics_json`] in the
/// OpenMetrics/Prometheus text format (the `METRICS openmetrics` payload).
/// Recorder and trace health ride along as first-class counter families so
/// a scraper sees black-box backpressure without speaking the protocol.
pub fn metrics_openmetrics(service: &QueryService) -> String {
    let obs = service.obs();
    let mut snap = obs.registry.snapshot();
    snap.merge(poe_obs::Registry::global().snapshot());
    snap.counters
        .insert("obs.flight.recorded".into(), obs.flight.recorded());
    snap.counters
        .insert("obs.flight.dropped".into(), obs.flight.dropped());
    snap.counters.insert(
        "obs.trace.spans_recorded".into(),
        obs.trace.spans_recorded(),
    );
    snap.counters.insert(
        "obs.trace.events_dropped".into(),
        obs.trace.events_dropped(),
    );
    snap.to_openmetrics_with_exemplars(&request_exemplars(&obs.flight))
}

/// Builds `serve.request_secs` bucket exemplars from the flight
/// recorder's retained `request.end` events, so each annotated bucket
/// line names a real request id that `poe obs dump --request N` can
/// expand into the full event trail. The newest event per bucket wins;
/// events without a parseable `ms=` token (or with the reserved id 0)
/// are skipped.
fn request_exemplars(flight: &poe_obs::FlightRecorder) -> poe_obs::openmetrics::ExemplarMap {
    let epoch = flight.epoch_unix_secs();
    let mut per_bucket: std::collections::BTreeMap<usize, poe_obs::openmetrics::Exemplar> =
        std::collections::BTreeMap::new();
    for e in flight.snapshot() {
        if e.kind != "request.end" || e.request_id == 0 {
            continue;
        }
        let Some(ms) = e
            .detail
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("ms="))
            .and_then(|v| v.parse::<f64>().ok())
        else {
            continue;
        };
        let secs = ms / 1e3;
        per_bucket.insert(
            poe_obs::bucket_of_secs(secs),
            poe_obs::openmetrics::Exemplar {
                labels: vec![("request_id".to_string(), e.request_id.to_string())],
                value: secs,
                timestamp: Some(epoch + e.at_secs),
            },
        );
    }
    let mut map = poe_obs::openmetrics::ExemplarMap::new();
    if !per_bucket.is_empty() {
        map.insert("serve.request_secs".to_string(), per_bucket);
    }
    map
}

fn join_usize(v: &[usize]) -> String {
    v.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn join_u64(v: &[u64]) -> String {
    v.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Comma-joined logits. Six significant decimals keeps the line compact
/// while leaving softmax ordering at the router numerically intact.
fn join_f32(v: &[f32]) -> String {
    v.iter()
        .map(|x| format!("{x:.6}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Jitters a retry hint into `[base/2, 3*base/2]` so a cohort of shed
/// clients doesn't re-arrive in one synchronized wave. The range is
/// pinned by `jittered_retry_hint_stays_in_range`.
pub(crate) fn jittered_retry_after_ms(base: u64) -> u64 {
    use std::sync::OnceLock;
    static RNG: OnceLock<Mutex<poe_tensor::Prng>> = OnceLock::new();
    if base == 0 {
        return 0;
    }
    let mut rng = RNG
        .get_or_init(|| {
            let seed = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
                .unwrap_or(0x5EED);
            Mutex::new(poe_tensor::Prng::seed_from_u64(
                seed ^ std::process::id() as u64,
            ))
        })
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    base / 2 + rng.next_u64() % (base + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_core::pool::{Expert, ExpertPool};
    use poe_data::ClassHierarchy;
    use poe_nn::layers::{Linear, Sequential};
    use poe_tensor::Prng;
    use std::io::{BufRead, BufReader};

    fn toy_service() -> Arc<QueryService> {
        let mut rng = Prng::seed_from_u64(1);
        let hierarchy = ClassHierarchy::contiguous(6, 3);
        let library = Sequential::new().push(Linear::new("lib", 4, 5, &mut rng));
        let mut pool = ExpertPool::new(hierarchy, library);
        for t in 0..3 {
            let classes = pool.hierarchy().primitive(t).classes.clone();
            let head =
                Sequential::new().push(Linear::new(&format!("e{t}"), 5, classes.len(), &mut rng));
            pool.insert_expert(Expert {
                task_index: t,
                classes,
                head,
            });
        }
        Arc::new(QueryService::builder(pool).build())
    }

    fn start(cfg: ServeConfig) -> (Server, Arc<QueryService>, SocketAddr) {
        let svc = toy_service();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = Server::start(listener, Arc::clone(&svc), 4, cfg).unwrap();
        let addr = server.local_addr();
        (server, svc, addr)
    }

    fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
        for _ in 0..2500 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("timed out waiting for: {what}");
    }

    fn ask(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> String {
        writeln!(writer, "{req}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    fn client(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    #[test]
    fn protocol_responses() {
        let svc = toy_service();
        assert_eq!(respond("INFO", &svc, 4), "OK tasks=3 experts=3 classes=6");
        let q = respond("QUERY 0,2", &svc, 4);
        assert!(q.starts_with("OK outputs=4"), "{q}");
        assert!(q.contains("classes=0,1,4,5"), "{q}");
        let p = respond("PREDICT 0,2 : 0.5 -0.5 1.0 0.0", &svc, 4);
        assert!(p.starts_with("OK class="), "{p}");
        assert_eq!(respond("QUIT", &svc, 4), "OK bye");
    }

    /// `QUERY` responses carry per-column task provenance (`tasks=`) so a
    /// router can stitch shard slices back into request order.
    #[test]
    fn query_reports_per_column_task_provenance() {
        let svc = toy_service();
        let q = respond("QUERY 0,2", &svc, 4);
        assert!(q.contains("classes=0,1,4,5"), "{q}");
        assert!(q.contains("tasks=0,0,2,2"), "{q}");
        let q = respond("QUERY 2,0", &svc, 4);
        assert!(q.contains("tasks=2,2,0,0"), "{q}");
    }

    /// `LOGITS` returns the raw slice whose softmax-argmax equals the
    /// `PREDICT` answer — the invariant the router's edge merge rests on.
    #[test]
    fn logits_verb_agrees_with_predict() {
        let svc = toy_service();
        let l = respond("LOGITS 0,2 : 0.5 -0.5 1.0 0.0", &svc, 4);
        assert!(l.starts_with("OK logits="), "{l}");
        let field = |key: &str| {
            l.split_whitespace()
                .find_map(|tok| tok.strip_prefix(key))
                .unwrap()
                .to_string()
        };
        let logits: Vec<f32> = field("logits=")
            .split(',')
            .map(|v| v.parse().unwrap())
            .collect();
        let classes: Vec<usize> = field("classes=")
            .split(',')
            .map(|v| v.parse().unwrap())
            .collect();
        let tasks: Vec<usize> = field("tasks=")
            .split(',')
            .map(|v| v.parse().unwrap())
            .collect();
        assert_eq!(classes, vec![0, 1, 4, 5]);
        assert_eq!(tasks, vec![0, 0, 2, 2]);
        assert_eq!(logits.len(), 4);
        let best = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        let p = respond("PREDICT 0,2 : 0.5 -0.5 1.0 0.0", &svc, 4);
        assert!(
            p.contains(&format!("class={}", classes[best])),
            "PREDICT {p} disagrees with LOGITS argmax class {}",
            classes[best]
        );
        // Same validation rows as PREDICT, plus its own syntax row.
        assert!(respond("LOGITS 0 1.0", &svc, 4).starts_with("ERR LOGITS needs"));
        assert!(respond("LOGITS 0 : 1.0", &svc, 4).starts_with("ERR expected 4 features"));
    }

    /// An `@<id>` correlation prefix is stripped before verb dispatch and
    /// echoed as `origin=` in the request's flight-recorder start event.
    #[test]
    fn origin_prefix_is_stripped_and_recorded() {
        let svc = toy_service();
        let with = respond("@4242 QUERY 0,2", &svc, 4);
        // Same answer as an unprefixed request (modulo timing/cache
        // fields, which legitimately differ between the two calls).
        assert!(with.contains("classes=0,1,4,5"), "{with}");
        assert!(with.contains("tasks=0,0,2,2"), "{with}");
        let start = svc
            .obs()
            .flight
            .snapshot()
            .into_iter()
            .rev()
            .filter(|e| e.kind == "request.start")
            .find(|e| e.detail.contains("origin="))
            .expect("a request.start event with origin=");
        assert_eq!(start.detail, "verb=QUERY origin=4242");
        // A malformed prefix is not stripped: it reads as an unknown verb.
        assert!(respond("@nope QUERY 0", &svc, 4).starts_with("ERR unknown verb"));
    }

    /// Pins the shed-hint jitter range `[base/2, 3*base/2]` and that the
    /// hint actually varies — a fixed constant re-stampedes the server.
    #[test]
    fn jittered_retry_hint_stays_in_range() {
        let draws: Vec<u64> = (0..200).map(|_| jittered_retry_after_ms(100)).collect();
        assert!(draws.iter().all(|&d| (50..=150).contains(&d)), "{draws:?}");
        let distinct: std::collections::HashSet<_> = draws.iter().collect();
        assert!(distinct.len() >= 3, "hint is not jittered: {draws:?}");
        assert_eq!(jittered_retry_after_ms(0), 0);
    }

    #[test]
    fn protocol_errors_are_informative() {
        let svc = toy_service();
        assert!(respond("FROB", &svc, 4).starts_with("ERR unknown verb"));
        assert!(respond("QUERY", &svc, 4).starts_with("ERR no tasks"));
        assert!(respond("QUERY 0,x", &svc, 4).starts_with("ERR bad task id"));
        assert!(respond("QUERY 9", &svc, 4).starts_with("ERR unknown primitive task"));
        assert!(respond("PREDICT 0 : 1.0", &svc, 4).starts_with("ERR expected 4 features"));
        assert!(respond("PREDICT 0 1.0 2.0", &svc, 4).starts_with("ERR PREDICT needs"));
        assert!(respond("PREDICT 0 : 1.0 nan 0.0 0.0", &svc, 4).starts_with("ERR bad feature"));
        assert!(respond("", &svc, 4).starts_with("ERR empty"));
    }

    #[test]
    fn swap_verb_validates_and_reports_load_failures() {
        let svc = toy_service();
        assert_eq!(respond("SWAP", &svc, 4), "ERR SWAP needs a task id");
        assert_eq!(respond("SWAP x", &svc, 4), "ERR bad task id `x`");
        assert_eq!(respond("SWAP 9", &svc, 4), "ERR unknown primitive task 9");
        // The toy pool is memory-only: a swap has no store to reload from,
        // and the typed load error reaches the wire.
        assert_eq!(
            respond("SWAP 0", &svc, 4),
            "ERR expert 0 failed to load: pool has no segment store attached"
        );
        // The failed swap left the pool serving.
        assert!(respond("QUERY 0", &svc, 4).starts_with("OK outputs="));
    }

    #[test]
    fn duplicate_and_oversized_task_lists_are_rejected() {
        let svc = toy_service();
        assert_eq!(respond("QUERY 0,1,0", &svc, 4), "ERR duplicate task 0");
        assert_eq!(
            respond("PREDICT 2,2 : 1 2 3 4", &svc, 4),
            "ERR duplicate task 2"
        );
        let ok: Vec<String> = (0..MAX_QUERY_TASKS).map(|i| i.to_string()).collect();
        assert_eq!(parse_tasks(&ok.join(",")).unwrap().len(), MAX_QUERY_TASKS);
        let over: Vec<String> = (0..=MAX_QUERY_TASKS).map(|i| i.to_string()).collect();
        assert_eq!(
            parse_tasks(&over.join(",")).unwrap_err(),
            WireError::TooManyTasks {
                max: MAX_QUERY_TASKS
            }
        );
    }

    #[test]
    fn tcp_round_trip() {
        let svc = toy_service();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            ServeConfig::builder()
                .max_requests(3)
                .start(listener, svc, 4)
                .unwrap()
                .join()
                .unwrap()
                .handled
        });

        let (mut writer, mut reader) = client(addr);
        assert_eq!(
            ask(&mut writer, &mut reader, "INFO"),
            "OK tasks=3 experts=3 classes=6"
        );
        assert!(ask(&mut writer, &mut reader, "QUERY 1").starts_with("OK outputs=2"));
        assert!(ask(&mut writer, &mut reader, "PREDICT 1 : 1 2 3 4").starts_with("OK class="));
        assert_eq!(server.join().unwrap(), 3);
    }

    #[test]
    fn stats_verb_reports_counters_and_percentiles() {
        let svc = toy_service();
        respond("QUERY 0", &svc, 4);
        respond("QUERY 0", &svc, 4); // cache hit
        respond("QUERY 9", &svc, 4); // rejected
        let s = respond("STATS", &svc, 4);
        assert!(
            s.starts_with("OK served=2 rejected=1 cache_hits=1 cache_misses=1"),
            "{s}"
        );
        assert!(s.contains("p50_ms="), "{s}");
        assert!(s.contains("p99_ms="), "{s}");
        assert!(!s.contains("n/a"), "{s}");
    }

    #[test]
    fn stats_verb_reports_na_before_first_query() {
        let svc = toy_service();
        let s = respond("STATS", &svc, 4);
        assert_eq!(
            s,
            "OK served=0 rejected=0 cache_hits=0 cache_misses=0 \
             mean_ms=n/a p50_ms=n/a p95_ms=n/a p99_ms=n/a"
        );
    }

    #[test]
    fn metrics_verb_returns_merged_json_snapshot() {
        let svc = toy_service();
        respond("QUERY 0", &svc, 4);
        respond("QUERY 0", &svc, 4); // hit
        let m = respond("METRICS", &svc, 4);
        assert!(m.starts_with("OK {\"counters\":{"), "{m}");
        let json = &m[3..];
        // Service-level counters and the assembly histogram.
        assert!(json.contains("\"service.queries_served\":2"), "{m}");
        assert!(json.contains("\"service.cache.hits\":1"), "{m}");
        assert!(json.contains("\"service.cache.misses\":1"), "{m}");
        assert!(
            json.contains("\"service.assembly_secs\":{\"count\":2"),
            "{m}"
        );
        // Per-verb request counters (METRICS counts itself).
        assert!(json.contains("\"serve.requests.query\":2"), "{m}");
        assert!(json.contains("\"serve.requests.metrics\":1"), "{m}");
        // Kernel-level instruments come from the merged global registry.
        // Consolidation alone copies weights without a matmul, so drive one
        // through PREDICT (Linear forward → matmul_a_bt → the shared
        // tensor.matmul.secs histogram).
        respond("PREDICT 0 : 1 2 3 4", &svc, 4);
        let m = respond("METRICS", &svc, 4);
        assert!(m.contains("\"tensor.matmul_a_bt.calls\":"), "{m}");
        assert!(m.contains("\"tensor.matmul.secs\":{\"count\":"), "{m}");
        // Trace and slow-query sections are always present.
        assert!(m.contains("\"trace\":{\"enabled\":false"), "{m}");
        assert!(m.contains("\"slow_queries\":[]"), "{m}");
    }

    #[test]
    fn metrics_openmetrics_passes_the_self_check() {
        let svc = toy_service();
        respond("QUERY 0", &svc, 4);
        respond("PREDICT 0 : 1 2 3 4", &svc, 4);
        let m = respond("METRICS openmetrics", &svc, 4);
        let (frame, body) = m.split_once('\n').expect("multi-line response");
        let lines: usize = frame
            .strip_prefix("OK openmetrics lines=")
            .unwrap_or_else(|| panic!("bad framing line: {frame}"))
            .parse()
            .unwrap();
        assert_eq!(body.lines().count(), lines, "{frame}");
        assert!(body.ends_with("# EOF"), "exposition must end with # EOF");
        let summary = poe_obs::openmetrics::check(&format!("{body}\n")).unwrap();
        assert!(summary.families > 10, "{summary:?}");
        // Spot checks: a service counter, a serve counter, a histogram
        // family, and the recorder/trace rides-along.
        // QUERY serves one query; PREDICT consolidates (serves) one more.
        assert!(
            body.contains("poe_service_queries_served_total 2\n"),
            "{body}"
        );
        assert!(
            body.contains("# TYPE poe_serve_requests_metrics counter\n"),
            "{body}"
        );
        assert!(
            body.contains("poe_service_assembly_secs_bucket{le=\"+Inf\"}"),
            "{body}"
        );
        assert!(body.contains("poe_obs_flight_recorded_total "), "{body}");
        assert!(
            body.contains("poe_obs_trace_spans_recorded_total "),
            "{body}"
        );
        // `json` and bare METRICS stay the one-line JSON form.
        assert!(respond("METRICS json", &svc, 4).starts_with("OK {\"counters\":{"));
        assert_eq!(
            respond("METRICS prometheus", &svc, 4),
            "ERR METRICS accepts `json` or `openmetrics`"
        );
    }

    #[test]
    fn openmetrics_exemplars_join_the_flight_recorder() {
        let svc = toy_service();
        respond("QUERY 0", &svc, 4);
        respond("PREDICT 0 : 1 2 3 4", &svc, 4);
        let m = respond("METRICS openmetrics", &svc, 4);
        let (_frame, body) = m.split_once('\n').expect("multi-line response");
        poe_obs::openmetrics::check(&format!("{body}\n"))
            .expect("exemplar-annotated exposition passes the self check");
        // The request-latency histogram must carry at least one
        // request-id exemplar on a bucket line.
        let ex_line = body
            .lines()
            .find(|l| {
                l.starts_with("poe_serve_request_secs_bucket{") && l.contains(" # {request_id=\"")
            })
            .expect("an exemplar-annotated request_secs bucket line");
        let id: u64 = ex_line
            .split("request_id=\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .and_then(|id| id.parse().ok())
            .unwrap_or_else(|| panic!("unparseable exemplar id in {ex_line}"));
        assert_ne!(id, 0, "{ex_line}");
        // The id joins the flight recorder: `poe obs dump --request N`
        // can expand the exemplified request into its full event trail.
        let events = svc.obs().flight.snapshot();
        assert!(
            events
                .iter()
                .any(|e| e.kind == "request.end" && e.request_id == id),
            "exemplar id {id} has no request.end flight event"
        );
    }

    #[test]
    fn dump_verb_writes_a_parseable_flight_file() {
        let dir = std::env::temp_dir().join("poe_dump_verb_test");
        std::fs::remove_dir_all(&dir).ok();
        let (server, _svc, addr) = start(ServeConfig {
            recorder_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        let (mut w, mut r) = client(addr);
        assert!(ask(&mut w, &mut r, "QUERY 1").starts_with("OK outputs="));
        let d = ask(&mut w, &mut r, "DUMP");
        assert!(d.starts_with("OK dump path="), "{d}");
        let path = d
            .split_whitespace()
            .find_map(|f| f.strip_prefix("path="))
            .unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        let mut lines = text.lines();
        assert!(
            lines
                .next()
                .unwrap()
                .contains("\"recorder\":\"poe-flight\""),
            "{text}"
        );
        let events: Vec<poe_obs::FlightEvent> = lines
            .filter_map(poe_obs::FlightEvent::parse_jsonl)
            .collect();
        // The ring is process-global, so other tests' events may be
        // present too; this connection's QUERY must be there with
        // matching start/end ids.
        let start_ev = events
            .iter()
            .rev()
            .find(|e| e.kind == "request.start" && e.detail == "verb=QUERY")
            .expect("request.start for the QUERY");
        assert!(
            events.iter().any(|e| e.kind == "request.end"
                && e.request_id == start_ev.request_id
                && e.detail.contains("ok=1")),
            "request.end with the same id"
        );
        assert!(
            events.iter().any(|e| e.kind == "server.start"),
            "server.start lifecycle event"
        );
        server.handle().shutdown();
        server.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Batch flushes leave `batch.flush` flight events whose ids match the
    /// parked requests' `request.start` events.
    #[test]
    fn batch_flush_events_name_their_parked_request_ids() {
        let (server, svc, addr) = start(ServeConfig {
            workers: 4,
            max_batch: 2,
            batch_delay: Duration::from_secs(10),
            ..ServeConfig::default()
        });
        let before = svc.obs().flight.recorded();
        let mut handles = Vec::new();
        for i in 0..2 {
            handles.push(std::thread::spawn(move || {
                let (mut w, mut r) = client(addr);
                ask(&mut w, &mut r, &format!("PREDICT 1 : {i} 2 3 4"))
            }));
        }
        for h in handles {
            assert!(h.join().unwrap().starts_with("OK class="));
        }
        let events: Vec<_> = svc
            .obs()
            .flight
            .snapshot()
            .into_iter()
            .filter(|e| e.seq > before)
            .collect();
        let flush = events
            .iter()
            .find(|e| e.kind == "batch.flush" && e.detail.contains("cause=full"))
            .expect("full-queue batch.flush event");
        assert!(flush.detail.contains("size=2"), "{flush:?}");
        assert!(flush.detail.contains("tasks=1"), "{flush:?}");
        let ids: Vec<u64> = flush
            .detail
            .split_whitespace()
            .find_map(|f| f.strip_prefix("ids="))
            .unwrap()
            .split(',')
            .map(|s| s.parse().unwrap())
            .collect();
        assert_eq!(ids.len(), 2, "{flush:?}");
        for id in ids {
            assert!(
                events
                    .iter()
                    .any(|e| e.kind == "request.start" && e.request_id == id),
                "flush id {id} must match a request.start"
            );
        }
        server.handle().shutdown();
        server.join().unwrap();
    }

    #[test]
    fn trace_verb_toggles_span_collection() {
        let svc = toy_service();
        assert!(respond("TRACE maybe", &svc, 4).starts_with("ERR TRACE needs"));
        assert_eq!(respond("TRACE on", &svc, 4), "OK trace=on");
        assert!(svc.obs().trace.is_enabled());
        let before = svc.obs().trace.spans_recorded();
        respond("QUERY 0", &svc, 4); // miss: serve.request + service.query + pool.consolidate
        assert_eq!(svc.obs().trace.spans_recorded(), before + 3);
        respond("QUERY 0", &svc, 4); // hit: serve.request + service.query
        assert_eq!(svc.obs().trace.spans_recorded(), before + 5);
        let events = svc.obs().trace.recent(2);
        assert_eq!(events[0].name, "service.query");
        assert_eq!(events[1].name, "serve.request");
        assert_eq!(events[0].request_id, events[1].request_id);
        assert_eq!(respond("TRACE off", &svc, 4), "OK trace=off");
        let frozen = svc.obs().trace.spans_recorded();
        respond("QUERY 0", &svc, 4);
        assert_eq!(svc.obs().trace.spans_recorded(), frozen);
    }

    #[test]
    fn slow_queries_are_retained_and_reported() {
        let svc = toy_service();
        // Threshold 1 ns: every request qualifies as slow.
        svc.obs()
            .slow
            .set_threshold(Some(std::time::Duration::from_nanos(1)));
        respond("QUERY 0", &svc, 4);
        let entries = svc.obs().slow.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].detail, "QUERY 0");
        let m = respond("METRICS", &svc, 4);
        assert!(m.contains("\"slow_queries\":[{\"request_id\":"), "{m}");
        assert!(m.contains("\"line\":\"QUERY 0\""), "{m}");
    }

    /// Two clients interleaving QUERY and METRICS must never observe a torn
    /// snapshot: within one client the served counter is monotone and at
    /// least its own completed queries, and globally
    /// `cache_hits + cache_misses ≤ queries_served` in every snapshot.
    #[test]
    fn interleaved_query_and_metrics_see_consistent_counters() {
        const PER_CLIENT: u64 = 40;
        let svc = toy_service();
        svc.obs().trace.set_enabled(true);
        let extract = |json: &str, key: &str| -> u64 {
            let pat = format!("\"{key}\":");
            let at = json.find(&pat).unwrap_or_else(|| panic!("{key} in {json}")) + pat.len();
            json[at..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .unwrap()
        };
        let mut handles = Vec::new();
        for t in 0..2u64 {
            let svc = Arc::clone(&svc);
            handles.push(std::thread::spawn(move || {
                let mut last_served = 0u64;
                for i in 0..PER_CLIENT {
                    let task = (t + i) % 3;
                    let q = respond(&format!("QUERY {task}"), &svc, 4);
                    assert!(q.starts_with("OK"), "{q}");
                    let m = respond("METRICS", &svc, 4);
                    let served = extract(&m, "service.queries_served");
                    let hits = extract(&m, "service.cache.hits");
                    let misses = extract(&m, "service.cache.misses");
                    assert!(served >= last_served, "served counter went backwards");
                    assert!(served > i, "snapshot misses own completed queries");
                    assert!(
                        hits + misses <= served,
                        "torn snapshot: hits {hits} + misses {misses} > served {served}"
                    );
                    last_served = served;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = svc.stats();
        assert_eq!(s.queries_served, 2 * PER_CLIENT);
        assert_eq!(s.cache_hits + s.cache_misses, s.queries_served);
        // Span accounting: each QUERY is serve.request + service.query
        // (+ pool.consolidate per miss), each METRICS is serve.request.
        let expected = 2 * PER_CLIENT * 3 + s.cache_misses;
        assert_eq!(svc.obs().trace.spans_recorded(), expected);
    }

    /// Regression test for head-of-line blocking: the server used to join
    /// each connection thread right after accepting it, so an idle client
    /// stalled everyone behind it. Client A connects first and stays
    /// silent while client B completes its requests; under the old serial
    /// loop B's reads would time out.
    #[test]
    fn concurrent_clients_are_not_serialized() {
        let svc = toy_service();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            ServeConfig::builder()
                .workers(4)
                .max_requests(3)
                .start(listener, svc, 4)
                .unwrap()
                .join()
                .unwrap()
                .handled
        });

        // Client A: connects first, sends nothing yet.
        let (mut a_writer, mut a_reader) = client(addr);

        // Client B: connects second and must get served while A idles.
        let (mut b_writer, mut b_reader) = client(addr);
        assert_eq!(
            ask(&mut b_writer, &mut b_reader, "INFO"),
            "OK tasks=3 experts=3 classes=6"
        );
        assert!(ask(&mut b_writer, &mut b_reader, "QUERY 2").starts_with("OK outputs=2"));

        // Now A wakes up and spends the last request of the budget.
        assert_eq!(
            ask(&mut a_writer, &mut a_reader, "INFO"),
            "OK tasks=3 experts=3 classes=6"
        );
        assert_eq!(server.join().unwrap(), 3);
    }

    /// Regression test for the worker-thread leak: the server used to
    /// detach its worker and acceptor threads, leaving them parked on
    /// the channel after returning. Now they are all joined and the
    /// listener is closed, so a late connect is refused.
    #[test]
    fn server_threads_are_joined_when_budget_is_spent() {
        let svc = toy_service();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            ServeConfig::builder()
                .workers(2)
                .max_requests(1)
                .start(listener, svc, 4)?
                .join()
                .map(|r| r.handled)
        });
        let (mut w, mut r) = client(addr);
        assert!(ask(&mut w, &mut r, "INFO").starts_with("OK"));
        assert_eq!(server.join().unwrap().unwrap(), 1);
        // All threads joined ⇒ the listener is dropped ⇒ refused.
        assert!(TcpStream::connect(addr).is_err());
    }

    #[test]
    fn oversized_request_lines_are_rejected_without_buffering() {
        let (server, svc, addr) = start(ServeConfig {
            max_line_bytes: 64,
            ..ServeConfig::default()
        });
        let (mut w, mut r) = client(addr);
        writeln!(w, "QUERY {}", "9".repeat(200)).unwrap();
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "ERR line too long (max 64 bytes)");
        // The connection is closed after the rejection.
        line.clear();
        assert_eq!(r.read_line(&mut line).unwrap(), 0);
        assert_eq!(svc.obs().registry.counter("serve.oversize").get(), 1);
        server.handle().shutdown();
        server.join().unwrap();
    }

    #[test]
    fn idle_connections_time_out() {
        let (server, svc, addr) = start(ServeConfig {
            idle_timeout: Some(Duration::from_millis(50)),
            ..ServeConfig::default()
        });
        let (_w, mut r) = client(addr);
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "ERR idle timeout");
        line.clear();
        assert_eq!(r.read_line(&mut line).unwrap(), 0);
        assert_eq!(svc.obs().registry.counter("serve.timeouts").get(), 1);
        server.handle().shutdown();
        server.join().unwrap();
    }

    #[test]
    fn full_accept_queue_sheds_with_busy() {
        // Threads-specific: the accept queue only exists on the threads
        // backend (epoll sheds at `max_conns` instead, pinned by the
        // poe-net suite and the conformance tests).
        let (server, svc, addr) = start(ServeConfig {
            net: NetBackend::Threads,
            workers: 1,
            queue_capacity: 1,
            drain_deadline: Duration::from_millis(200),
            ..ServeConfig::default()
        });
        let accepted = svc.obs().registry.counter("serve.accepted");
        // A occupies the only worker; B fills the one queue slot.
        let (a_w, _a_r) = client(addr);
        wait_until("client A in service", || server.active_connections() == 1);
        let (b_w, _b_r) = client(addr);
        wait_until("client B queued", || accepted.get() == 2);
        // C finds the queue full: shed with a retry hint, then closed.
        let (_c_w, mut c_r) = client(addr);
        let mut line = String::new();
        c_r.read_line(&mut line).unwrap();
        // The hint is jittered around the configured base of 100 ms
        // (range pinned by `jittered_retry_hint_stays_in_range`).
        let hint: u64 = line
            .trim_end()
            .strip_prefix("ERR busy retry_after_ms=")
            .expect(&line)
            .parse()
            .unwrap();
        assert!(
            (50..=150).contains(&hint),
            "hint {hint} outside jitter range"
        );
        line.clear();
        assert_eq!(c_r.read_line(&mut line).unwrap(), 0);
        assert_eq!(svc.obs().registry.counter("serve.shed").get(), 1);
        drop(a_w);
        drop(b_w);
        server.handle().shutdown();
        server.join().unwrap();
    }

    #[test]
    fn per_connection_request_cap_closes_connection() {
        let (server, _svc, addr) = start(ServeConfig {
            max_conn_requests: 2,
            ..ServeConfig::default()
        });
        let (mut w, mut r) = client(addr);
        assert!(ask(&mut w, &mut r, "INFO").starts_with("OK"));
        assert!(ask(&mut w, &mut r, "INFO").starts_with("OK"));
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "ERR connection request limit reached");
        line.clear();
        assert_eq!(r.read_line(&mut line).unwrap(), 0);
        server.handle().shutdown();
        server.join().unwrap();
    }

    #[test]
    fn health_verb_reports_readiness() {
        // Standalone (no server): trivially ready, and SHUTDOWN refuses.
        let svc = toy_service();
        let h = respond("HEALTH", &svc, 4);
        assert!(
            h.starts_with(
                "OK live=1 ready=1 pool=ok workers=0/0 inflight=0 shed_rate=0.000 draining=0 \
                 batch_queues=0 batch_depth=0 recorder_dropped="
            ),
            "{h}"
        );
        assert_eq!(
            respond("SHUTDOWN", &svc, 4),
            "ERR SHUTDOWN requires a running server"
        );
        // Against a live server: real worker/in-flight numbers.
        let (server, _svc, addr) = start(ServeConfig::default());
        let (mut w, mut r) = client(addr);
        let h = ask(&mut w, &mut r, "HEALTH");
        assert!(
            h.starts_with("OK live=1 ready=1 pool=ok workers=4/4 inflight=1"),
            "{h}"
        );
        assert!(h.contains(" draining=0 "), "{h}");
        assert!(h.contains(" batch_queues=0 batch_depth=0 "), "{h}");
        assert!(h.contains(" recorder_dropped="), "{h}");
        assert_eq!(ask(&mut w, &mut r, "QUIT"), "OK bye");
        server.handle().shutdown();
        server.join().unwrap();
    }

    /// `HEALTH` sees rows parked in the batch queues while they wait for
    /// the delay timer.
    #[test]
    fn health_reports_parked_batch_depth() {
        let (server, svc, addr) = start(ServeConfig {
            workers: 4,
            max_batch: 8,
            batch_delay: Duration::from_secs(30), // timer never fires
            ..ServeConfig::default()
        });
        let depth = svc.obs().registry.gauge("serve.batch.queue_depth");
        let mut handles = Vec::new();
        for i in 0..2 {
            handles.push(std::thread::spawn(move || {
                let (mut w, mut r) = client(addr);
                ask(&mut w, &mut r, &format!("PREDICT 0 : {i} 1 2 3"))
            }));
        }
        wait_until("2 requests parked", || depth.get() == 2.0);
        let (mut w, mut r) = client(addr);
        let h = ask(&mut w, &mut r, "HEALTH");
        assert!(h.contains(" batch_queues=1 batch_depth=2 "), "{h}");
        server.handle().shutdown();
        for h in handles {
            assert!(h.join().unwrap().starts_with("OK class="));
        }
        server.join().unwrap();
    }

    /// SHUTDOWN drains within the deadline even with an idle client
    /// pinning a worker: the straggler is force-closed, every thread is
    /// joined, and the listener is released.
    #[test]
    fn shutdown_verb_drains_within_deadline() {
        // Threads-specific: only a thread blocked in read() needs the
        // force-close hammer. The epoll loop refuses idle connections
        // outright at drain start, so its drain never times out here
        // (covered by `epoll_drain_refuses_idle_connections`).
        let (server, svc, addr) = start(ServeConfig {
            net: NetBackend::Threads,
            workers: 2,
            idle_timeout: None, // the idle client would block forever
            drain_deadline: Duration::from_millis(300),
            ..ServeConfig::default()
        });
        let (_idle_w, mut idle_r) = client(addr);
        wait_until("idle client in service", || {
            server.active_connections() == 1
        });
        let (mut w, mut r) = client(addr);
        assert_eq!(ask(&mut w, &mut r, "SHUTDOWN"), "OK shutting down");
        let begin = Instant::now();
        let report = server.join().unwrap();
        assert!(
            begin.elapsed() < Duration::from_secs(3),
            "drain exceeded deadline by far: {:?}",
            begin.elapsed()
        );
        assert_eq!(report.handled, 1);
        assert!(report.drain_timed_out, "idle client should be force-closed");
        assert_eq!(svc.obs().registry.counter("serve.drain_timeouts").get(), 1);
        // The idle client observes its connection being closed.
        let mut line = String::new();
        let _ = idle_r.read_line(&mut line);
        // Listener released: a new connect is refused.
        assert!(TcpStream::connect(addr).is_err());
    }

    /// The epoll drain: idle connections are refused with `ERR shutting
    /// down` at drain start, in-flight ones finish, and the drain
    /// completes without the force-close hammer (contrast with the
    /// threads-only `shutdown_verb_drains_within_deadline`).
    #[test]
    fn epoll_drain_refuses_idle_connections() {
        if !poe_net::epoll_supported() {
            return;
        }
        let (server, _svc, addr) = start(ServeConfig {
            net: NetBackend::Epoll,
            idle_timeout: None,
            ..ServeConfig::default()
        });
        assert_eq!(server.net_backend(), NetBackend::Epoll);
        let (_idle_w, mut idle_r) = client(addr);
        wait_until("idle client registered", || {
            server.active_connections() == 1
        });
        let (mut w, mut r) = client(addr);
        assert_eq!(ask(&mut w, &mut r, "SHUTDOWN"), "OK shutting down");
        // SHUTDOWN's own connection closes after the response, exactly
        // like the threads backend.
        let mut line = String::new();
        assert_eq!(r.read_line(&mut line).unwrap(), 0);
        // The idle connection is refused with a retry hint, then closed.
        line.clear();
        idle_r.read_line(&mut line).unwrap();
        assert!(
            line.trim_end()
                .starts_with("ERR shutting down retry_after_ms="),
            "{line}"
        );
        line.clear();
        assert_eq!(idle_r.read_line(&mut line).unwrap(), 0);
        let report = server.join().unwrap();
        assert!(!report.drain_timed_out, "epoll drain needs no force-close");
        assert_eq!(report.handled, 1);
    }

    /// The epoll connection cap shows up on the wire as the same
    /// jittered `ERR busy` shed the threads accept queue renders.
    #[test]
    fn epoll_sheds_past_the_connection_cap() {
        if !poe_net::epoll_supported() {
            return;
        }
        let (server, svc, addr) = start(ServeConfig {
            net: NetBackend::Epoll,
            max_conns: 2,
            ..ServeConfig::default()
        });
        let (mut w1, mut r1) = client(addr);
        assert!(ask(&mut w1, &mut r1, "INFO").starts_with("OK"));
        let (mut w2, mut r2) = client(addr);
        assert!(ask(&mut w2, &mut r2, "INFO").starts_with("OK"));
        let (_w3, mut r3) = client(addr);
        let mut line = String::new();
        r3.read_line(&mut line).unwrap();
        let hint: u64 = line
            .trim_end()
            .strip_prefix("ERR busy retry_after_ms=")
            .expect(&line)
            .parse()
            .unwrap();
        assert!(
            (50..=150).contains(&hint),
            "hint {hint} outside jitter range"
        );
        line.clear();
        assert_eq!(r3.read_line(&mut line).unwrap(), 0);
        assert_eq!(svc.obs().registry.counter("serve.shed").get(), 1);
        server.handle().shutdown();
        server.join().unwrap();
    }

    /// Parses the payload of an `OK class=… task=… confidence=…` line.
    fn parse_prediction(line: &str) -> (usize, usize, f32) {
        let field = |key: &str| -> &str {
            let pat = format!("{key}=");
            let at = line.find(&pat).unwrap_or_else(|| panic!("{key} in {line}")) + pat.len();
            line[at..].split_whitespace().next().unwrap()
        };
        (
            field("class").parse().unwrap(),
            field("task").parse().unwrap(),
            field("confidence").parse().unwrap(),
        )
    }

    /// Concurrent PREDICTs for permutations of one task set coalesce into
    /// a single full-queue flush, and every demultiplexed per-row answer
    /// matches the unbatched path bit for bit.
    #[test]
    fn batched_predictions_match_the_direct_path() {
        let (server, svc, addr) = start(ServeConfig {
            workers: 4,
            max_batch: 4,
            batch_delay: Duration::from_secs(10), // only a full flush counts
            ..ServeConfig::default()
        });
        let requests: Vec<String> = (0..4)
            .map(|i| {
                let tasks = if i % 2 == 0 { "0,2" } else { "2,0" };
                let f = i as f32;
                format!("PREDICT {tasks} : {} {} {} {}", f, 0.5 - f, -f, 0.25 * f)
            })
            .collect();
        let mut handles = Vec::new();
        for req in &requests {
            let req = req.clone();
            handles.push(std::thread::spawn(move || {
                let (mut w, mut r) = client(addr);
                ask(&mut w, &mut r, &req)
            }));
        }
        let answers: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Reference: the library `respond` path (no server, no batching)
        // against the same deterministic service.
        for (req, got) in requests.iter().zip(&answers) {
            let want = respond(req, &svc, 4);
            assert!(got.starts_with("OK class="), "{got}");
            let (gc, gt, gp) = parse_prediction(got);
            let (wc, wt, wp) = parse_prediction(&want);
            assert_eq!((gc, gt), (wc, wt), "req {req}: {got} vs {want}");
            assert!((gp - wp).abs() <= 1e-4, "req {req}: {got} vs {want}");
        }
        let reg = &svc.obs().registry;
        assert_eq!(reg.counter("serve.batch.flush.full").get(), 1);
        assert_eq!(reg.counter("serve.batch.flush.timeout").get(), 0);
        let sizes = reg.histogram("serve.batch.size").snapshot();
        assert_eq!(sizes.count(), 1, "exactly one flush");
        // Power-of-two buckets read back as the next bucket's upper bound.
        assert_eq!(sizes.quantile_n(0.5), Some(8), "batch of 4");
        // The service-level batch accounting fired exactly once too.
        assert_eq!(reg.counter("service.batch.calls").get(), 1);
        assert_eq!(reg.counter("service.batch.rows").get(), 4);
        server.handle().shutdown();
        server.join().unwrap();
    }

    /// A lone PREDICT is not stuck behind `--max-batch`: the delay timer
    /// flushes it as a batch of one.
    #[test]
    fn lone_predict_is_flushed_by_the_delay_timer() {
        let (server, svc, addr) = start(ServeConfig {
            max_batch: 64,
            batch_delay: Duration::from_millis(5),
            ..ServeConfig::default()
        });
        let (mut w, mut r) = client(addr);
        let got = ask(&mut w, &mut r, "PREDICT 1 : 1 2 3 4");
        assert!(got.starts_with("OK class="), "{got}");
        let reg = &svc.obs().registry;
        assert_eq!(reg.counter("serve.batch.flush.timeout").get(), 1);
        assert_eq!(reg.counter("serve.batch.flush.full").get(), 0);
        assert_eq!(
            reg.histogram("serve.batch.size").snapshot().quantile_n(0.5),
            Some(2),
            "batch of 1 (bucket upper bound 2)"
        );
        assert_eq!(reg.gauge("serve.batch.queue_depth").get(), 0.0);
        server.handle().shutdown();
        server.join().unwrap();
    }

    /// A consolidation error fails every request parked in the batch with
    /// the same typed reason the unbatched path gives, and the connection
    /// stays usable.
    #[test]
    fn batched_query_errors_reach_every_parked_request() {
        let (server, _svc, addr) = start(ServeConfig {
            max_batch: 2,
            batch_delay: Duration::from_secs(10),
            ..ServeConfig::default()
        });
        let mut handles = Vec::new();
        for _ in 0..2 {
            handles.push(std::thread::spawn(move || {
                let (mut w, mut r) = client(addr);
                let e = ask(&mut w, &mut r, "PREDICT 9 : 1 2 3 4");
                // Same connection still answers afterwards.
                let h = ask(&mut w, &mut r, "HEALTH");
                (e, h)
            }));
        }
        for h in handles {
            let (e, health) = h.join().unwrap();
            assert_eq!(e, "ERR unknown primitive task 9");
            assert!(health.starts_with("OK live=1"), "{health}");
        }
        server.handle().shutdown();
        server.join().unwrap();
    }

    /// SHUTDOWN drains a half-full batch queue: every parked PREDICT is
    /// answered exactly once before the connections close.
    #[test]
    fn shutdown_drains_parked_batches() {
        let (server, svc, addr) = start(ServeConfig {
            workers: 4,
            max_batch: 8,                         // stays half-full
            batch_delay: Duration::from_secs(30), // timer never fires
            ..ServeConfig::default()
        });
        let depth = svc.obs().registry.gauge("serve.batch.queue_depth");
        let mut handles = Vec::new();
        for i in 0..3 {
            handles.push(std::thread::spawn(move || {
                let (mut w, mut r) = client(addr);
                ask(&mut w, &mut r, &format!("PREDICT 0 : {i} 1 2 3"))
            }));
        }
        wait_until("3 requests parked", || depth.get() == 3.0);
        let (mut w, mut r) = client(addr);
        assert_eq!(ask(&mut w, &mut r, "SHUTDOWN"), "OK shutting down");
        for h in handles {
            let line = h.join().unwrap();
            assert!(line.starts_with("OK class="), "parked request lost: {line}");
        }
        server.join().unwrap();
        let reg = &svc.obs().registry;
        assert_eq!(reg.counter("serve.batch.flush.drain").get(), 1);
        assert_eq!(
            reg.histogram("serve.batch.size").snapshot().quantile_n(0.5),
            Some(4),
            "one batch of 3 (bucket upper bound 4)"
        );
        assert_eq!(depth.get(), 0.0);
    }

    /// With `max_batch ≤ 1` the scheduler is never built and PREDICT runs
    /// unbatched — the opt-out knob for latency-critical single clients.
    #[test]
    fn batching_can_be_disabled() {
        let (server, svc, addr) = start(ServeConfig {
            max_batch: 1,
            ..ServeConfig::default()
        });
        let (mut w, mut r) = client(addr);
        let got = ask(&mut w, &mut r, "PREDICT 1 : 1 2 3 4");
        assert!(got.starts_with("OK class="), "{got}");
        let reg = &svc.obs().registry;
        assert_eq!(reg.histogram("serve.batch.size").snapshot().count(), 0);
        assert_eq!(reg.counter("service.batch.calls").get(), 0);
        server.handle().shutdown();
        server.join().unwrap();
    }

    #[test]
    fn degraded_server_reports_not_ready_and_refuses_data_verbs() {
        let (server, _svc, addr) = start(ServeConfig {
            pool_error: Some("corrupt model file: checksum mismatch".into()),
            ..ServeConfig::default()
        });
        let (mut w, mut r) = client(addr);
        let h = ask(&mut w, &mut r, "HEALTH");
        assert!(h.contains("ready=0"), "{h}");
        assert!(h.contains("pool=error"), "{h}");
        assert!(
            h.ends_with("detail=corrupt model file: checksum mismatch"),
            "{h}"
        );
        assert_eq!(
            ask(&mut w, &mut r, "QUERY 0"),
            "ERR not ready: corrupt model file: checksum mismatch"
        );
        assert_eq!(
            ask(&mut w, &mut r, "INFO"),
            "ERR not ready: corrupt model file: checksum mismatch"
        );
        assert_eq!(
            ask(&mut w, &mut r, "SWAP 0"),
            "ERR not ready: corrupt model file: checksum mismatch"
        );
        // Observability verbs still answer so the operator can diagnose.
        assert!(ask(&mut w, &mut r, "STATS").starts_with("OK served=0"));
        assert!(ask(&mut w, &mut r, "METRICS").starts_with("OK {"));
        server.handle().shutdown();
        server.join().unwrap();
    }
}
