//! `poe serve` — a minimal TCP model-query server over a pool store.
//!
//! Line protocol (UTF-8, one request per line):
//!
//! ```text
//! INFO                          → OK tasks=<n> experts=<n> classes=<n>
//! QUERY 1,3,5                   → OK outputs=<k> params=<p> assembly_ms=<t> cached=<0|1> classes=<c,…>
//! PREDICT 1,3,5 : v1 v2 … vd    → OK class=<global id> confidence=<p>
//! STATS                         → OK served=<n> … p99_ms=<t> (service counters)
//! QUIT                          → OK bye (closes the connection)
//! anything else                 → ERR <reason>
//! ```
//!
//! `PREDICT` consolidates the requested composite model (train-free — this
//! is the paper's realtime query) and classifies one feature vector.
//!
//! Connections are handled by a bounded pool of worker threads fed by a
//! dedicated acceptor, so a slow or idle client never blocks the others.

use poe_core::service::QueryService;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Condvar, Mutex};

/// Default number of connection-handling worker threads.
pub const DEFAULT_WORKERS: usize = 4;

/// Progress shared between the acceptor, the workers, and `serve` itself.
struct ServeState {
    handled: u64,
    accept_error: Option<std::io::Error>,
}

type Shared = Arc<(Mutex<ServeState>, Condvar)>;

/// Serves requests until `max_requests` lines have been processed
/// (`u64::MAX` = run forever), with [`DEFAULT_WORKERS`] concurrent
/// connection handlers. Returns the number of requests handled.
#[cfg_attr(not(test), allow(dead_code))] // the binary passes --workers explicitly
pub fn serve(
    listener: TcpListener,
    service: Arc<QueryService>,
    input_dim: usize,
    max_requests: u64,
) -> std::io::Result<u64> {
    serve_with_workers(listener, service, input_dim, max_requests, DEFAULT_WORKERS)
}

/// [`serve`] with an explicit worker-pool size. Connections are accepted
/// eagerly and queued; up to `workers` of them are served concurrently.
pub fn serve_with_workers(
    listener: TcpListener,
    service: Arc<QueryService>,
    input_dim: usize,
    max_requests: u64,
    workers: usize,
) -> std::io::Result<u64> {
    let shared: Shared = Arc::new((
        Mutex::new(ServeState {
            handled: 0,
            accept_error: None,
        }),
        Condvar::new(),
    ));

    let (conn_tx, conn_rx) = channel::<TcpStream>();
    let conn_rx = Arc::new(Mutex::new(conn_rx));
    for _ in 0..workers.max(1) {
        let conn_rx: Arc<Mutex<Receiver<TcpStream>>> = Arc::clone(&conn_rx);
        let service = Arc::clone(&service);
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || loop {
            let stream = {
                let rx = match conn_rx.lock() {
                    Ok(rx) => rx,
                    Err(_) => break,
                };
                match rx.recv() {
                    Ok(s) => s,
                    Err(_) => break,
                }
            };
            handle_connection(stream, &service, input_dim, &shared, max_requests);
        });
    }

    // The acceptor owns the listener; it dies with the process (clients
    // connecting after the request budget is spent are queued but never
    // served — acceptable for this demonstration server).
    {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if conn_tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    let (lock, cvar) = &*shared;
                    if let Ok(mut st) = lock.lock() {
                        st.accept_error = Some(e);
                    }
                    cvar.notify_all();
                    break;
                }
            }
        });
    }

    let (lock, cvar) = &*shared;
    let mut st = lock.lock().unwrap();
    while st.handled < max_requests && st.accept_error.is_none() {
        st = cvar.wait(st).unwrap();
    }
    match st.accept_error.take() {
        Some(e) => Err(e),
        None => Ok(st.handled),
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &QueryService,
    input_dim: usize,
    shared: &Shared,
    max_requests: u64,
) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    let (lock, cvar) = &**shared;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let response = respond(&line, service, input_dim);
        let done = line.trim().eq_ignore_ascii_case("QUIT");
        if writeln!(writer, "{response}").is_err() {
            break;
        }
        let n = {
            let mut st = lock.lock().unwrap();
            st.handled += 1;
            st.handled
        };
        cvar.notify_all();
        if done || n >= max_requests {
            break;
        }
    }
}

/// Computes the response line for one request line (protocol core, kept
/// free of I/O so it is directly testable).
pub fn respond(line: &str, service: &QueryService, input_dim: usize) -> String {
    let line = line.trim();
    let mut parts = line.splitn(2, ' ');
    let verb = parts.next().unwrap_or("").to_ascii_uppercase();
    let rest = parts.next().unwrap_or("").trim();

    match verb.as_str() {
        "INFO" => service.with_pool(|p| {
            format!(
                "OK tasks={} experts={} classes={}",
                p.hierarchy().num_primitives(),
                p.num_experts(),
                p.hierarchy().num_classes()
            )
        }),
        "QUIT" => "OK bye".into(),
        "STATS" => {
            let s = service.stats();
            format!(
                "OK served={} rejected={} cache_hits={} cache_misses={} \
                 mean_ms={:.3} p50_ms={:.3} p95_ms={:.3} p99_ms={:.3}",
                s.queries_served,
                s.queries_rejected,
                s.cache_hits,
                s.cache_misses,
                s.mean_assembly_secs() * 1e3,
                s.assembly_p50_secs() * 1e3,
                s.assembly_p95_secs() * 1e3,
                s.assembly_p99_secs() * 1e3,
            )
        }
        "QUERY" => match parse_tasks(rest) {
            Err(e) => format!("ERR {e}"),
            Ok(tasks) => match service.query(&tasks) {
                Err(e) => format!("ERR {e}"),
                Ok(r) => format!(
                    "OK outputs={} params={} assembly_ms={:.3} cached={} classes={}",
                    r.class_layout.len(),
                    r.stats.params,
                    r.stats.assembly_secs * 1e3,
                    u8::from(r.stats.cache_hit),
                    join_usize(&r.class_layout),
                ),
            },
        },
        "PREDICT" => {
            let Some((task_part, feat_part)) = rest.split_once(':') else {
                return "ERR PREDICT needs `tasks : features`".into();
            };
            let tasks = match parse_tasks(task_part.trim()) {
                Ok(t) => t,
                Err(e) => return format!("ERR {e}"),
            };
            let mut features = Vec::new();
            for tok in feat_part.split_whitespace() {
                match tok.parse::<f32>() {
                    Ok(v) if v.is_finite() => features.push(v),
                    _ => return format!("ERR bad feature value `{tok}`"),
                }
            }
            if features.len() != input_dim {
                return format!("ERR expected {input_dim} features, got {}", features.len());
            }
            match service.query(&tasks) {
                Err(e) => format!("ERR {e}"),
                Ok(mut r) => {
                    let x = poe_tensor::Tensor::from_vec(features, [1, input_dim]);
                    let p = r.model.predict_with_provenance(&x)[0];
                    format!(
                        "OK class={} task={} confidence={:.4}",
                        p.class, p.task_index, p.confidence
                    )
                }
            }
        }
        "" => "ERR empty request".into(),
        other => format!("ERR unknown verb `{other}`"),
    }
}

fn parse_tasks(s: &str) -> Result<Vec<usize>, String> {
    if s.is_empty() {
        return Err("no tasks given".into());
    }
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad task id `{p}`"))
        })
        .collect()
}

fn join_usize(v: &[usize]) -> String {
    v.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_core::pool::{Expert, ExpertPool};
    use poe_data::ClassHierarchy;
    use poe_nn::layers::{Linear, Sequential};
    use poe_tensor::Prng;

    fn toy_service() -> Arc<QueryService> {
        let mut rng = Prng::seed_from_u64(1);
        let hierarchy = ClassHierarchy::contiguous(6, 3);
        let library = Sequential::new().push(Linear::new("lib", 4, 5, &mut rng));
        let mut pool = ExpertPool::new(hierarchy, library);
        for t in 0..3 {
            let classes = pool.hierarchy().primitive(t).classes.clone();
            let head =
                Sequential::new().push(Linear::new(&format!("e{t}"), 5, classes.len(), &mut rng));
            pool.insert_expert(Expert {
                task_index: t,
                classes,
                head,
            });
        }
        Arc::new(QueryService::new(pool))
    }

    #[test]
    fn protocol_responses() {
        let svc = toy_service();
        assert_eq!(respond("INFO", &svc, 4), "OK tasks=3 experts=3 classes=6");
        let q = respond("QUERY 0,2", &svc, 4);
        assert!(q.starts_with("OK outputs=4"), "{q}");
        assert!(q.contains("classes=0,1,4,5"), "{q}");
        let p = respond("PREDICT 0,2 : 0.5 -0.5 1.0 0.0", &svc, 4);
        assert!(p.starts_with("OK class="), "{p}");
        assert_eq!(respond("QUIT", &svc, 4), "OK bye");
    }

    #[test]
    fn protocol_errors_are_informative() {
        let svc = toy_service();
        assert!(respond("FROB", &svc, 4).starts_with("ERR unknown verb"));
        assert!(respond("QUERY", &svc, 4).starts_with("ERR no tasks"));
        assert!(respond("QUERY 0,x", &svc, 4).starts_with("ERR bad task id"));
        assert!(respond("QUERY 9", &svc, 4).starts_with("ERR unknown primitive task"));
        assert!(respond("PREDICT 0 : 1.0", &svc, 4).starts_with("ERR expected 4 features"));
        assert!(respond("PREDICT 0 1.0 2.0", &svc, 4).starts_with("ERR PREDICT needs"));
        assert!(respond("PREDICT 0 : 1.0 nan 0.0 0.0", &svc, 4).starts_with("ERR bad feature"));
        assert!(respond("", &svc, 4).starts_with("ERR empty"));
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead, BufReader, Write};
        let svc = toy_service();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(listener, svc, 4, 3).unwrap());

        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut ask = |req: &str| -> String {
            writeln!(writer, "{req}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line.trim_end().to_string()
        };
        assert_eq!(ask("INFO"), "OK tasks=3 experts=3 classes=6");
        assert!(ask("QUERY 1").starts_with("OK outputs=2"));
        assert!(ask("PREDICT 1 : 1 2 3 4").starts_with("OK class="));
        assert_eq!(server.join().unwrap(), 3);
    }

    #[test]
    fn stats_verb_reports_counters_and_percentiles() {
        let svc = toy_service();
        respond("QUERY 0", &svc, 4);
        respond("QUERY 0", &svc, 4); // cache hit
        respond("QUERY 9", &svc, 4); // rejected
        let s = respond("STATS", &svc, 4);
        assert!(
            s.starts_with("OK served=2 rejected=1 cache_hits=1 cache_misses=1"),
            "{s}"
        );
        assert!(s.contains("p50_ms="), "{s}");
        assert!(s.contains("p99_ms="), "{s}");
    }

    /// Regression test for head-of-line blocking: the server used to join
    /// each connection thread right after accepting it, so an idle client
    /// stalled everyone behind it. Client A connects first and stays
    /// silent while client B completes its requests; under the old serial
    /// loop B's reads would time out.
    #[test]
    fn concurrent_clients_are_not_serialized() {
        use std::io::{BufRead, BufReader, Write};
        use std::time::Duration;
        let svc = toy_service();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server =
            std::thread::spawn(move || serve_with_workers(listener, svc, 4, 3, 4).unwrap());

        let ask = |writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: &str| {
            writeln!(writer, "{req}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line.trim_end().to_string()
        };

        // Client A: connects first, sends nothing yet.
        let a = TcpStream::connect(addr).unwrap();
        a.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut a_writer = a.try_clone().unwrap();
        let mut a_reader = BufReader::new(a);

        // Client B: connects second and must get served while A idles.
        let b = TcpStream::connect(addr).unwrap();
        b.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut b_writer = b.try_clone().unwrap();
        let mut b_reader = BufReader::new(b);
        assert_eq!(
            ask(&mut b_writer, &mut b_reader, "INFO"),
            "OK tasks=3 experts=3 classes=6"
        );
        assert!(ask(&mut b_writer, &mut b_reader, "QUERY 2").starts_with("OK outputs=2"));

        // Now A wakes up and spends the last request of the budget.
        assert_eq!(
            ask(&mut a_writer, &mut a_reader, "INFO"),
            "OK tasks=3 experts=3 classes=6"
        );
        assert_eq!(server.join().unwrap(), 3);
    }
}
