//! `poe serve` — a minimal TCP model-query server over a pool store.
//!
//! Line protocol (UTF-8, one request per line):
//!
//! ```text
//! INFO                          → OK tasks=<n> experts=<n> classes=<n>
//! QUERY 1,3,5                   → OK outputs=<k> params=<p> assembly_ms=<t> classes=<c,…>
//! PREDICT 1,3,5 : v1 v2 … vd    → OK class=<global id> confidence=<p>
//! QUIT                          → OK bye (closes the connection)
//! anything else                 → ERR <reason>
//! ```
//!
//! `PREDICT` consolidates the requested composite model (train-free — this
//! is the paper's realtime query) and classifies one feature vector.

use poe_core::service::QueryService;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Serves requests until `max_requests` lines have been processed
/// (`u64::MAX` = run forever). Returns the number of requests handled.
pub fn serve(
    listener: TcpListener,
    service: Arc<QueryService>,
    input_dim: usize,
    max_requests: u64,
) -> std::io::Result<u64> {
    let handled = Arc::new(AtomicU64::new(0));
    loop {
        if handled.load(Ordering::SeqCst) >= max_requests {
            return Ok(handled.load(Ordering::SeqCst));
        }
        let (stream, _) = listener.accept()?;
        let service = Arc::clone(&service);
        let handled_for_conn = Arc::clone(&handled);
        // One thread per connection; connections are expected to be few
        // (this is a demonstration server, not a production frontend).
        let join = std::thread::spawn(move || {
            handle_connection(stream, &service, input_dim, &handled_for_conn, max_requests)
        });
        // Serve connections sequentially so max_requests is respected
        // deterministically (sufficient for the demo/test use cases).
        let _ = join.join();
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &QueryService,
    input_dim: usize,
    handled: &AtomicU64,
    max_requests: u64,
) {
    let peer = stream.peer_addr().ok();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let response = respond(&line, service, input_dim);
        let done = line.trim().eq_ignore_ascii_case("QUIT");
        if writeln!(writer, "{response}").is_err() {
            break;
        }
        let n = handled.fetch_add(1, Ordering::SeqCst) + 1;
        if done || n >= max_requests {
            break;
        }
    }
    let _ = peer;
}

/// Computes the response line for one request line (protocol core, kept
/// free of I/O so it is directly testable).
pub fn respond(line: &str, service: &QueryService, input_dim: usize) -> String {
    let line = line.trim();
    let mut parts = line.splitn(2, ' ');
    let verb = parts.next().unwrap_or("").to_ascii_uppercase();
    let rest = parts.next().unwrap_or("").trim();

    match verb.as_str() {
        "INFO" => service.with_pool(|p| {
            format!(
                "OK tasks={} experts={} classes={}",
                p.hierarchy().num_primitives(),
                p.num_experts(),
                p.hierarchy().num_classes()
            )
        }),
        "QUIT" => "OK bye".into(),
        "QUERY" => match parse_tasks(rest) {
            Err(e) => format!("ERR {e}"),
            Ok(tasks) => match service.query(&tasks) {
                Err(e) => format!("ERR {e}"),
                Ok(r) => format!(
                    "OK outputs={} params={} assembly_ms={:.3} classes={}",
                    r.class_layout.len(),
                    r.stats.params,
                    r.stats.assembly_secs * 1e3,
                    join_usize(&r.class_layout),
                ),
            },
        },
        "PREDICT" => {
            let Some((task_part, feat_part)) = rest.split_once(':') else {
                return "ERR PREDICT needs `tasks : features`".into();
            };
            let tasks = match parse_tasks(task_part.trim()) {
                Ok(t) => t,
                Err(e) => return format!("ERR {e}"),
            };
            let mut features = Vec::new();
            for tok in feat_part.split_whitespace() {
                match tok.parse::<f32>() {
                    Ok(v) if v.is_finite() => features.push(v),
                    _ => return format!("ERR bad feature value `{tok}`"),
                }
            }
            if features.len() != input_dim {
                return format!(
                    "ERR expected {input_dim} features, got {}",
                    features.len()
                );
            }
            match service.query(&tasks) {
                Err(e) => format!("ERR {e}"),
                Ok(mut r) => {
                    let x = poe_tensor::Tensor::from_vec(features, [1, input_dim]);
                    let p = r.model.predict_with_provenance(&x)[0];
                    format!(
                        "OK class={} task={} confidence={:.4}",
                        p.class, p.task_index, p.confidence
                    )
                }
            }
        }
        "" => "ERR empty request".into(),
        other => format!("ERR unknown verb `{other}`"),
    }
}

fn parse_tasks(s: &str) -> Result<Vec<usize>, String> {
    if s.is_empty() {
        return Err("no tasks given".into());
    }
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad task id `{p}`"))
        })
        .collect()
}

fn join_usize(v: &[usize]) -> String {
    v.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_core::pool::{Expert, ExpertPool};
    use poe_data::ClassHierarchy;
    use poe_nn::layers::{Linear, Sequential};
    use poe_tensor::Prng;

    fn toy_service() -> Arc<QueryService> {
        let mut rng = Prng::seed_from_u64(1);
        let hierarchy = ClassHierarchy::contiguous(6, 3);
        let library = Sequential::new().push(Linear::new("lib", 4, 5, &mut rng));
        let mut pool = ExpertPool::new(hierarchy, library);
        for t in 0..3 {
            let classes = pool.hierarchy().primitive(t).classes.clone();
            let head =
                Sequential::new().push(Linear::new(&format!("e{t}"), 5, classes.len(), &mut rng));
            pool.insert_expert(Expert { task_index: t, classes, head });
        }
        Arc::new(QueryService::new(pool))
    }

    #[test]
    fn protocol_responses() {
        let svc = toy_service();
        assert_eq!(respond("INFO", &svc, 4), "OK tasks=3 experts=3 classes=6");
        let q = respond("QUERY 0,2", &svc, 4);
        assert!(q.starts_with("OK outputs=4"), "{q}");
        assert!(q.contains("classes=0,1,4,5"), "{q}");
        let p = respond("PREDICT 0,2 : 0.5 -0.5 1.0 0.0", &svc, 4);
        assert!(p.starts_with("OK class="), "{p}");
        assert_eq!(respond("QUIT", &svc, 4), "OK bye");
    }

    #[test]
    fn protocol_errors_are_informative() {
        let svc = toy_service();
        assert!(respond("FROB", &svc, 4).starts_with("ERR unknown verb"));
        assert!(respond("QUERY", &svc, 4).starts_with("ERR no tasks"));
        assert!(respond("QUERY 0,x", &svc, 4).starts_with("ERR bad task id"));
        assert!(respond("QUERY 9", &svc, 4).starts_with("ERR unknown primitive task"));
        assert!(respond("PREDICT 0 : 1.0", &svc, 4).starts_with("ERR expected 4 features"));
        assert!(respond("PREDICT 0 1.0 2.0", &svc, 4).starts_with("ERR PREDICT needs"));
        assert!(respond("PREDICT 0 : 1.0 nan 0.0 0.0", &svc, 4).starts_with("ERR bad feature"));
        assert!(respond("", &svc, 4).starts_with("ERR empty"));
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead, BufReader, Write};
        let svc = toy_service();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(listener, svc, 4, 3).unwrap());

        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut ask = |req: &str| -> String {
            writeln!(writer, "{req}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line.trim_end().to_string()
        };
        assert_eq!(ask("INFO"), "OK tasks=3 experts=3 classes=6");
        assert!(ask("QUERY 1").starts_with("OK outputs=2"));
        assert!(ask("PREDICT 1 : 1 2 3 4").starts_with("OK class="));
        assert_eq!(server.join().unwrap(), 3);
    }
}
