//! # poe-chaos
//!
//! A deterministic fault-injection harness for the Pool of Experts
//! workspace. Production code calls the cheap hook functions
//! ([`fail_io`], [`partial_write`], [`stall`], [`maybe_panic`]) at
//! well-known **sites** (the [`sites`] constants); by default every hook
//! is a single relaxed atomic load and returns "no fault". Faults fire
//! only when a [`ChaosPlan`] is active, either:
//!
//! * **programmatically** — tests call [`ChaosPlan::install`] and hold
//!   the returned [`ChaosGuard`] (which also serializes chaos tests
//!   process-wide, since the plan is global state), or
//! * **from the environment** — `POE_CHAOS` holds a plan spec
//!   (see [`ChaosPlan::parse`]) and `POE_CHAOS_SEED` the PRNG seed, so a
//!   whole binary can run under fault injection without recompiling.
//!
//! Determinism: all probabilistic decisions draw from one xoshiro256++
//! stream ([`poe_tensor::Prng`]) seeded from the plan. With a fixed seed
//! and a serial test, every run injects the same faults; rules with
//! probability `1.0` are deterministic regardless of draw order.
//!
//! ```
//! use poe_chaos::{ChaosPlan, Fault, FaultKind, sites};
//!
//! let guard = ChaosPlan::new(42)
//!     .with(Fault::always(sites::STORE_WRITE_IO, FaultKind::Io))
//!     .install();
//! assert!(poe_chaos::fail_io(sites::STORE_WRITE_IO).is_some());
//! assert!(poe_chaos::fail_io(sites::STORE_READ_IO).is_none());
//! drop(guard); // chaos off again
//! assert!(poe_chaos::fail_io(sites::STORE_WRITE_IO).is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use poe_tensor::Prng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// Well-known injection sites. Hooks and plans refer to sites by these
/// strings; using the constants keeps producer and consumer in sync.
pub mod sites {
    /// I/O error while writing a model/store file (before the atomic
    /// rename — the previous file version must survive).
    pub const STORE_WRITE_IO: &str = "store.write.io";
    /// Partial write (torn temp file) followed by an I/O error — the
    /// crash-during-save scenario.
    pub const STORE_WRITE_PARTIAL: &str = "store.write.partial";
    /// I/O error while reading a model/store file.
    pub const STORE_READ_IO: &str = "store.read.io";
    /// Stall injected into the server's per-connection read loop.
    pub const SERVE_READ_STALL: &str = "serve.read.stall";
    /// I/O error injected into the server's response write path.
    pub const SERVE_WRITE_IO: &str = "serve.write.io";
    /// Panic injected into a connection-handling worker.
    pub const SERVE_WORKER_PANIC: &str = "serve.worker.panic";
    /// Panic injected into a batched forward pass (the flush path) — the
    /// scheduler must contain it and abort only the affected batch.
    pub const SERVE_BATCH_PANIC: &str = "serve.batch.panic";
    /// Panic injected into a matmul shard running on the compute pool —
    /// the dispatcher must recompute the lost shard inline instead of
    /// propagating the panic to the caller.
    pub const TENSOR_MATMUL_SHARD_PANIC: &str = "tensor.matmul.shard.panic";
    /// I/O error while seeking/reading one expert payload out of a POEM
    /// v4 segment file — the lazy-load path; the query against that
    /// expert must fail typed, and the pool must keep serving everything
    /// already resident.
    pub const STORE_SEGMENT_READ_IO: &str = "store.segment.read.io";
    /// Panic injected mid-swap: after the replacement expert was reloaded
    /// from the store but before it is installed. The old version must
    /// keep serving and no lock may be poisoned.
    pub const POOL_SWAP_PANIC: &str = "pool.swap.panic";
    /// I/O error while the router's shard client establishes a TCP
    /// connection to a backend — the connect-refused/flaky-NIC case.
    pub const ROUTER_CONNECT_IO: &str = "router.connect.io";
    /// Stall injected before the router reads a backend's response line —
    /// a slow replica; hedged reads exist to beat this.
    pub const ROUTER_READ_STALL: &str = "router.read.stall";
    /// Network partition between router and one backend, modelled as an
    /// I/O error at connect time that persists until the rule's hit cap
    /// runs out — the scenario that must trip the circuit breaker.
    pub const ROUTER_SHARD_PARTITION: &str = "router.shard.partition";
    /// Panic injected inside one per-shard scatter worker. The gather
    /// side must contain it and degrade to a partial response instead of
    /// failing the whole query.
    pub const ROUTER_SCATTER_PANIC: &str = "router.scatter.panic";
    /// I/O error injected into the epoll loop's `epoll_wait` — the loop
    /// must count it and keep ticking, never exit.
    pub const NET_EPOLL_WAIT_IO: &str = "net.epoll.wait.io";
    /// I/O error injected into the epoll loop's `accept` burst — the
    /// listener must survive transient accept failures (EMFILE et al.).
    pub const NET_EPOLL_ACCEPT_IO: &str = "net.epoll.accept.io";
    /// I/O error injected into the epoll loop's non-blocking connection
    /// write path — the connection is closed, the loop keeps serving.
    pub const NET_EPOLL_WRITE_IO: &str = "net.epoll.write.io";
    /// Stall injected at the top of an epoll loop tick — models a slow
    /// event-loop thread (GC-pause analog); connections must survive and
    /// drain deadlines must still be honoured.
    pub const NET_EPOLL_TICK_STALL: &str = "net.epoll.tick.stall";
    /// I/O error injected into the load generator's client-side socket
    /// write — a flaky client must surface as that tenant's error count
    /// in the loadgen report, never as a panic or as skew in other
    /// tenants' percentiles.
    pub const LOADGEN_CLIENT_IO: &str = "loadgen.client.io";
}

/// Arms the fault hooks that live *below* this crate in the dependency
/// graph. `poe-tensor` cannot call [`maybe_panic`] directly (it would be
/// a dependency cycle — this crate uses its PRNG), so its matmul
/// dispatcher exposes a hook seam that we point at the
/// [`sites::TENSOR_MATMUL_SHARD_PANIC`] site here. Called automatically
/// whenever a plan is installed (programmatically or from `POE_CHAOS`);
/// the hook is a no-op while no plan is active.
pub fn arm_tensor_hooks() {
    poe_tensor::matmul::set_shard_fault_hook(|| {
        maybe_panic(sites::TENSOR_MATMUL_SHARD_PANIC);
    });
}

/// What a triggered fault does at its site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Return an injected `std::io::Error`.
    Io,
    /// Write only this fraction (`0.0..=1.0`) of the payload, then fail.
    Partial(f32),
    /// Sleep this many milliseconds before proceeding.
    StallMs(u64),
    /// Panic (the caller's thread unwinds).
    Panic,
}

/// One injection rule: at `site`, with probability `prob` per hook call,
/// perform `kind`, at most `max_hits` times (`None` = unlimited).
#[derive(Debug, Clone)]
pub struct Fault {
    /// The injection site (one of [`sites`]).
    pub site: String,
    /// What happens when the fault fires.
    pub kind: FaultKind,
    /// Per-call firing probability in `[0, 1]`.
    pub prob: f32,
    /// Cap on total firings (`None` = every matching call).
    pub max_hits: Option<u64>,
}

impl Fault {
    /// A rule that fires on every hook call at `site`.
    pub fn always(site: &str, kind: FaultKind) -> Self {
        Fault {
            site: site.to_string(),
            kind,
            prob: 1.0,
            max_hits: None,
        }
    }

    /// A rule that fires on the first `n` hook calls at `site`, then
    /// never again — e.g. "panic exactly once".
    pub fn times(site: &str, kind: FaultKind, n: u64) -> Self {
        Fault {
            max_hits: Some(n),
            ..Fault::always(site, kind)
        }
    }

    /// A rule that fires with probability `prob` per hook call.
    pub fn with_prob(site: &str, kind: FaultKind, prob: f32) -> Self {
        Fault {
            prob: prob.clamp(0.0, 1.0),
            ..Fault::always(site, kind)
        }
    }
}

/// A seeded set of fault rules. Build with [`ChaosPlan::new`] + `with`,
/// or parse from an environment spec with [`ChaosPlan::parse`]; activate
/// with [`ChaosPlan::install`].
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// Seed for the decision PRNG.
    pub seed: u64,
    /// The injection rules (first matching site wins).
    pub faults: Vec<Fault>,
}

impl ChaosPlan {
    /// An empty plan with the given decision seed.
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a rule.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Parses a plan spec, the `POE_CHAOS` format: `;`-separated rules,
    /// each `site=prob[@param][xN]`. The fault kind is implied by the
    /// site's suffix (`.io` → [`FaultKind::Io`], `.partial` →
    /// `Partial(param)` (default 0.5), `.stall` → `StallMs(param)`
    /// (default 100), `.panic` → [`FaultKind::Panic`], `.partition` →
    /// [`FaultKind::Io`] — a partition is an I/O error that the router
    /// sees at connect time); `xN` caps the rule at N firings.
    ///
    /// ```
    /// let p = poe_chaos::ChaosPlan::parse(7, "store.write.partial=1.0@0.25;serve.worker.panic=0.5x2").unwrap();
    /// assert_eq!(p.faults.len(), 2);
    /// ```
    pub fn parse(seed: u64, spec: &str) -> Result<Self, String> {
        let mut plan = ChaosPlan::new(seed);
        for rule in spec.split(';').filter(|r| !r.trim().is_empty()) {
            let (site, rest) = rule
                .split_once('=')
                .ok_or_else(|| format!("chaos rule `{rule}` is missing `=prob`"))?;
            let site = site.trim();
            let (rest, max_hits) = match rest.rsplit_once('x') {
                Some((head, n)) => {
                    let n: u64 = n
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad hit cap in chaos rule `{rule}`"))?;
                    (head, Some(n))
                }
                None => (rest, None),
            };
            let (prob, param) = match rest.split_once('@') {
                Some((p, v)) => (p, Some(v)),
                None => (rest, None),
            };
            let prob: f32 = prob
                .trim()
                .parse()
                .map_err(|_| format!("bad probability in chaos rule `{rule}`"))?;
            let kind = if site.ends_with(".io") || site.ends_with(".partition") {
                FaultKind::Io
            } else if site.ends_with(".partial") {
                let f = match param {
                    Some(v) => v
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad fraction in chaos rule `{rule}`"))?,
                    None => 0.5,
                };
                FaultKind::Partial(f)
            } else if site.ends_with(".stall") {
                let ms = match param {
                    Some(v) => v
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad stall ms in chaos rule `{rule}`"))?,
                    None => 100,
                };
                FaultKind::StallMs(ms)
            } else if site.ends_with(".panic") {
                FaultKind::Panic
            } else {
                return Err(format!(
                    "chaos site `{site}` has no kind suffix (.io/.partial/.stall/.panic/.partition)"
                ));
            };
            plan.faults.push(Fault {
                site: site.to_string(),
                kind,
                prob: prob.clamp(0.0, 1.0),
                max_hits,
            });
        }
        Ok(plan)
    }

    /// Activates this plan globally and returns a guard that deactivates
    /// it (restoring any previously active plan) on drop. The guard holds
    /// a process-wide lock, so chaos tests serialize instead of
    /// corrupting each other's fault schedules.
    pub fn install(self) -> ChaosGuard {
        arm_tensor_hooks();
        let lock = test_lock().lock().unwrap_or_else(PoisonError::into_inner);
        let prev = swap_active(Some(self));
        ChaosGuard { prev, _lock: lock }
    }
}

/// Deactivates the installed [`ChaosPlan`] (restoring the previous one,
/// typically the environment's) when dropped. See [`ChaosPlan::install`].
#[must_use = "dropping the guard immediately disables the chaos plan"]
pub struct ChaosGuard {
    prev: Option<ChaosPlan>,
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        swap_active(self.prev.take());
    }
}

/// The seed chaos runs should use: `POE_CHAOS_SEED` if set, else a fixed
/// default — so CI pins one stream (`POE_CHAOS_SEED=42`) and every local
/// run is reproducible without configuration.
pub fn seed_from_env() -> u64 {
    std::env::var("POE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

struct ActivePlan {
    plan: ChaosPlan,
    rng: Prng,
    fired: BTreeMap<String, u64>,
}

struct ChaosState {
    enabled: AtomicBool,
    active: Mutex<Option<ActivePlan>>,
    hits: Mutex<BTreeMap<String, u64>>,
}

fn state() -> &'static ChaosState {
    static STATE: OnceLock<ChaosState> = OnceLock::new();
    STATE.get_or_init(|| {
        let env_plan = std::env::var("POE_CHAOS")
            .ok()
            .filter(|s| !s.trim().is_empty())
            .map(|spec| match ChaosPlan::parse(seed_from_env(), &spec) {
                Ok(p) => p,
                Err(e) => panic!("invalid POE_CHAOS spec: {e}"),
            });
        let enabled = env_plan.is_some();
        if enabled {
            arm_tensor_hooks();
        }
        ChaosState {
            enabled: AtomicBool::new(enabled),
            active: Mutex::new(env_plan.map(ActivePlan::new)),
            hits: Mutex::new(BTreeMap::new()),
        }
    })
}

fn test_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

impl ActivePlan {
    fn new(plan: ChaosPlan) -> Self {
        let rng = Prng::seed_from_u64(plan.seed);
        ActivePlan {
            plan,
            rng,
            fired: BTreeMap::new(),
        }
    }
}

fn swap_active(plan: Option<ChaosPlan>) -> Option<ChaosPlan> {
    let st = state();
    let mut active = st.active.lock().unwrap_or_else(PoisonError::into_inner);
    st.enabled.store(plan.is_some(), Ordering::Release);
    let prev = active.take().map(|a| a.plan);
    *active = plan.map(ActivePlan::new);
    prev
}

/// Whether any chaos plan is active. One relaxed atomic load — this is
/// the entire cost of every hook below when chaos is off.
#[inline]
pub fn enabled() -> bool {
    state().enabled.load(Ordering::Acquire)
}

/// How many faults have fired at `site` since the process started.
/// Tests use this to assert the injection actually happened.
pub fn hits(site: &str) -> u64 {
    state()
        .hits
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(site)
        .copied()
        .unwrap_or(0)
}

/// Draws a fault decision for `site` against the active plan.
fn decide(site: &str) -> Option<FaultKind> {
    let st = state();
    let mut active = st.active.lock().unwrap_or_else(PoisonError::into_inner);
    let a = active.as_mut()?;
    let rule = a.plan.faults.iter().find(|f| f.site == site)?;
    let fired = a.fired.entry(site.to_string()).or_insert(0);
    if let Some(cap) = rule.max_hits {
        if *fired >= cap {
            return None;
        }
    }
    if rule.prob < 1.0 && a.rng.uniform() >= rule.prob {
        return None;
    }
    *fired += 1;
    let kind = rule.kind;
    drop(active);
    *st.hits
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .entry(site.to_string())
        .or_insert(0) += 1;
    // Injections leave a trail in the process black box: a post-mortem
    // dump must show *why* a worker panicked or a write failed.
    poe_obs::FlightRecorder::global().record("chaos.inject", format!("site={site} kind={kind:?}"));
    Some(kind)
}

/// Hook: returns an injected I/O error if an `Io` fault fires at `site`.
#[inline]
pub fn fail_io(site: &str) -> Option<std::io::Error> {
    if !enabled() {
        return None;
    }
    match decide(site) {
        Some(FaultKind::Io) => Some(std::io::Error::other(format!(
            "chaos: injected i/o error at {site}"
        ))),
        _ => None,
    }
}

/// Hook: returns `Some(truncated_len)` if a `Partial` fault fires at
/// `site` — the caller should write only that prefix of its `len`-byte
/// payload and then fail, simulating a crash mid-write.
#[inline]
pub fn partial_write(site: &str, len: usize) -> Option<usize> {
    if !enabled() {
        return None;
    }
    match decide(site) {
        Some(FaultKind::Partial(f)) => Some(((len as f32 * f.clamp(0.0, 1.0)) as usize).min(len)),
        _ => None,
    }
}

/// Hook: sleeps if a `StallMs` fault fires at `site` (simulates a stalled
/// read/slow disk/scheduling hiccup).
#[inline]
pub fn stall(site: &str) {
    if !enabled() {
        return;
    }
    if let Some(FaultKind::StallMs(ms)) = decide(site) {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// Hook: panics if a `Panic` fault fires at `site`.
#[inline]
pub fn maybe_panic(site: &str) {
    if !enabled() {
        return;
    }
    if let Some(FaultKind::Panic) = decide(site) {
        panic!("chaos: injected panic at {site}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_noops_without_a_plan() {
        // No guard installed (and POE_CHAOS unset in the test env).
        let _lock = test_lock().lock().unwrap_or_else(PoisonError::into_inner);
        assert!(fail_io(sites::STORE_WRITE_IO).is_none());
        assert!(partial_write(sites::STORE_WRITE_PARTIAL, 100).is_none());
        maybe_panic(sites::SERVE_WORKER_PANIC); // must not panic
        stall(sites::SERVE_READ_STALL); // must not sleep
    }

    #[test]
    fn always_rules_fire_and_guard_restores() {
        let before = hits(sites::STORE_READ_IO);
        let guard = ChaosPlan::new(1)
            .with(Fault::always(sites::STORE_READ_IO, FaultKind::Io))
            .install();
        assert!(enabled());
        assert!(fail_io(sites::STORE_READ_IO).is_some());
        assert!(fail_io(sites::STORE_READ_IO).is_some());
        assert_eq!(hits(sites::STORE_READ_IO), before + 2);
        drop(guard);
        assert!(fail_io(sites::STORE_READ_IO).is_none());
    }

    #[test]
    fn hit_caps_limit_firings() {
        let _guard = ChaosPlan::new(2)
            .with(Fault::times(sites::SERVE_WRITE_IO, FaultKind::Io, 2))
            .install();
        assert!(fail_io(sites::SERVE_WRITE_IO).is_some());
        assert!(fail_io(sites::SERVE_WRITE_IO).is_some());
        assert!(fail_io(sites::SERVE_WRITE_IO).is_none());
    }

    #[test]
    fn probabilities_are_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let _guard = ChaosPlan::new(seed)
                .with(Fault::with_prob(sites::STORE_WRITE_IO, FaultKind::Io, 0.5))
                .install();
            (0..32)
                .map(|_| fail_io(sites::STORE_WRITE_IO).is_some())
                .collect()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must give the same fault schedule");
        assert_ne!(a, c, "different seeds should differ (32 draws)");
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
    }

    #[test]
    fn injections_leave_a_flight_recorder_trail() {
        let rec = poe_obs::FlightRecorder::global();
        let before = rec.recorded();
        let _guard = ChaosPlan::new(9)
            .with(Fault::always(sites::STORE_READ_IO, FaultKind::Io))
            .install();
        assert!(fail_io(sites::STORE_READ_IO).is_some());
        assert!(rec.recorded() > before);
        let trail: Vec<_> = rec
            .snapshot()
            .into_iter()
            .filter(|e| e.kind == "chaos.inject" && e.detail.contains(sites::STORE_READ_IO))
            .collect();
        assert!(!trail.is_empty(), "injection must be visible in a dump");
        assert!(trail[0].detail.contains("kind=Io"), "{:?}", trail[0]);
    }

    #[test]
    fn partial_write_scales_length() {
        let _guard = ChaosPlan::new(3)
            .with(Fault::always(
                sites::STORE_WRITE_PARTIAL,
                FaultKind::Partial(0.25),
            ))
            .install();
        assert_eq!(partial_write(sites::STORE_WRITE_PARTIAL, 100), Some(25));
    }

    #[test]
    fn spec_parsing_round_trips() {
        let p = ChaosPlan::parse(
            42,
            "store.write.io=1.0; serve.read.stall=0.5@250 ;serve.worker.panic=1.0x3;router.shard.partition=1.0x8",
        )
        .unwrap();
        assert_eq!(p.faults.len(), 4);
        assert_eq!(p.faults[0].kind, FaultKind::Io);
        assert_eq!(p.faults[1].kind, FaultKind::StallMs(250));
        assert_eq!(p.faults[1].prob, 0.5);
        assert_eq!(p.faults[2].kind, FaultKind::Panic);
        assert_eq!(p.faults[2].max_hits, Some(3));
        assert_eq!(
            p.faults[3].kind,
            FaultKind::Io,
            "a partition is an io fault"
        );
        assert_eq!(p.faults[3].max_hits, Some(8));
        assert!(ChaosPlan::parse(0, "noequals").is_err());
        assert!(ChaosPlan::parse(0, "site.unknown=1.0").is_err());
        assert!(ChaosPlan::parse(0, "store.write.io=notafloat").is_err());
    }
}
