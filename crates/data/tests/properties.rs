//! Property-based tests for the dataset invariants every experiment relies
//! on: hierarchy partitions, task views, and generator determinism.

use poe_data::synth::{generate, GaussianHierarchyConfig};
use poe_data::ClassHierarchy;
use proptest::prelude::*;

fn small_cfg(tasks: usize, classes_per: usize, seed: u64) -> GaussianHierarchyConfig {
    GaussianHierarchyConfig {
        dim: 4,
        ..GaussianHierarchyConfig::balanced(tasks, classes_per)
    }
    .with_samples(4, 3)
    .with_seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hierarchy_partitions_every_class(tasks in 1usize..8, per in 1usize..6) {
        let h = ClassHierarchy::contiguous(tasks * per, tasks);
        let mut seen = vec![false; tasks * per];
        for p in h.primitives() {
            for &c in &p.classes {
                prop_assert!(!seen[c], "class {c} in two tasks");
                seen[c] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // primitive_of_class inverts the grouping.
        for c in 0..tasks * per {
            let t = h.primitive_of_class(c);
            prop_assert!(h.primitive(t).classes.contains(&c));
        }
    }

    #[test]
    fn composite_classes_is_sorted_disjoint_union(tasks in 2usize..7) {
        let h = ClassHierarchy::contiguous(tasks * 3, tasks);
        let pool: Vec<usize> = (0..tasks).collect();
        for combo in h.composites_of_size(2, &pool) {
            let classes = h.composite_classes(&combo);
            prop_assert_eq!(classes.len(), 6);
            prop_assert!(classes.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn task_view_and_complement_partition_dataset(seed in 0u64..500, task in 0usize..3) {
        let (split, h) = generate(&small_cfg(3, 2, seed));
        let classes = h.primitive(task).classes.clone();
        let inside = split.test.task_view(&classes);
        let outside = split.test.out_of_task_view(&classes);
        prop_assert_eq!(inside.len() + outside.len(), split.test.len());
        // Inside labels are remapped into 0..|H|; outside keep global ids
        // not in the task.
        prop_assert!(inside.labels.iter().all(|&l| l < classes.len()));
        prop_assert!(outside.labels.iter().all(|&l| !classes.contains(&l)));
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive(seed in 0u64..500) {
        let (a, _) = generate(&small_cfg(2, 2, seed));
        let (b, _) = generate(&small_cfg(2, 2, seed));
        prop_assert_eq!(&a.train.inputs, &b.train.inputs);
        prop_assert_eq!(&a.train.labels, &b.train.labels);
        let (c, _) = generate(&small_cfg(2, 2, seed + 1));
        prop_assert_ne!(&a.train.inputs, &c.train.inputs);
    }

    #[test]
    fn renderer_changes_observation_space_not_labels(seed in 0u64..200) {
        let base = small_cfg(2, 2, seed);
        let rendered = base.clone().with_renderer(8, 2);
        let (a, _) = generate(&base);
        let (b, _) = generate(&rendered);
        prop_assert_eq!(a.train.sample_shape(), vec![4]);
        prop_assert_eq!(b.train.sample_shape(), vec![8]);
        prop_assert_eq!(a.train.labels.len(), b.train.labels.len());
        // Rendered values are tanh outputs.
        prop_assert!(b.train.inputs.max() <= 1.0 && b.train.inputs.min() >= -1.0);
    }

    #[test]
    fn label_noise_respects_fraction(seed in 0u64..200) {
        let clean = small_cfg(3, 3, seed).with_samples(30, 5);
        let noisy = clean.clone().with_label_noise(0.3);
        let (a, _) = generate(&clean);
        let (b, _) = generate(&noisy);
        let changed = a
            .train
            .labels
            .iter()
            .zip(&b.train.labels)
            .filter(|(x, y)| x != y)
            .count();
        let frac = changed as f64 / a.train.labels.len() as f64;
        // 30% noise re-draws uniformly (can hit the same label), so the
        // observed change rate is ≈ 0.3 · (1 − 1/9); allow slack.
        prop_assert!(frac > 0.1 && frac < 0.45, "changed fraction {frac}");
        // Test labels are never corrupted.
        prop_assert_eq!(&a.test.labels, &b.test.labels);
    }

    #[test]
    fn thin_preserves_label_alignment(seed in 0u64..200, stride in 1usize..5) {
        let (split, _) = generate(&small_cfg(2, 3, seed));
        let thinned = split.test.thin(stride);
        prop_assert_eq!(thinned.len(), split.test.len().div_ceil(stride));
        for (i, &l) in thinned.labels.iter().enumerate() {
            prop_assert_eq!(l, split.test.labels[i * stride]);
        }
    }
}
