//! Class hierarchies and primitive tasks.
//!
//! The paper decomposes the oracle's class set `C` into `n` *primitive
//! tasks* `H_1 … H_n` (Section 3): disjoint groups of semantically-similar
//! classes, e.g. the 20 CIFAR-100 superclasses or groups of 3–10 leaves of
//! the ImageNet semantic tree. A *composite task* `Q` is a union of
//! primitive tasks.

/// One primitive task: a named, sorted, non-empty group of class ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimitiveTask {
    /// Human-readable name (e.g. `"vehicles1"`).
    pub name: String,
    /// Sorted global class ids belonging to the task.
    pub classes: Vec<usize>,
}

/// A disjoint partition of `0..num_classes` into primitive tasks.
///
/// ```
/// use poe_data::ClassHierarchy;
///
/// let h = ClassHierarchy::contiguous(10, 5); // 5 tasks × 2 classes
/// assert_eq!(h.primitive_of_class(3), 1);
/// assert_eq!(h.composite_classes(&[0, 2]), vec![0, 1, 4, 5]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassHierarchy {
    num_classes: usize,
    primitives: Vec<PrimitiveTask>,
    /// `class → primitive index` lookup.
    primitive_of: Vec<usize>,
}

impl ClassHierarchy {
    /// Builds a hierarchy from task groups.
    ///
    /// # Panics
    /// Panics unless the groups are non-empty, disjoint, and exactly cover
    /// `0..num_classes`.
    pub fn new(num_classes: usize, groups: Vec<PrimitiveTask>) -> Self {
        let mut primitive_of = vec![usize::MAX; num_classes];
        for (ti, task) in groups.iter().enumerate() {
            assert!(
                !task.classes.is_empty(),
                "primitive task `{}` is empty",
                task.name
            );
            for &c in &task.classes {
                assert!(c < num_classes, "class {c} out of range in `{}`", task.name);
                assert_eq!(
                    primitive_of[c],
                    usize::MAX,
                    "class {c} assigned to two primitive tasks"
                );
                primitive_of[c] = ti;
            }
        }
        assert!(
            primitive_of.iter().all(|&t| t != usize::MAX),
            "some classes belong to no primitive task"
        );
        let mut primitives = groups;
        for p in &mut primitives {
            p.classes.sort_unstable();
        }
        ClassHierarchy {
            num_classes,
            primitives,
            primitive_of,
        }
    }

    /// Builds a hierarchy of `num_primitives` contiguous, near-equal groups
    /// named `task0, task1, …` (larger groups first when sizes differ).
    pub fn contiguous(num_classes: usize, num_primitives: usize) -> Self {
        assert!(num_primitives > 0 && num_primitives <= num_classes);
        let base = num_classes / num_primitives;
        let extra = num_classes % num_primitives;
        let mut groups = Vec::with_capacity(num_primitives);
        let mut next = 0usize;
        for i in 0..num_primitives {
            let size = base + usize::from(i < extra);
            groups.push(PrimitiveTask {
                name: format!("task{i}"),
                classes: (next..next + size).collect(),
            });
            next += size;
        }
        Self::new(num_classes, groups)
    }

    /// Total class count `|C|`.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of primitive tasks `n`.
    pub fn num_primitives(&self) -> usize {
        self.primitives.len()
    }

    /// The primitive tasks in index order.
    pub fn primitives(&self) -> &[PrimitiveTask] {
        &self.primitives
    }

    /// The `i`-th primitive task.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn primitive(&self, i: usize) -> &PrimitiveTask {
        &self.primitives[i]
    }

    /// The primitive task index containing a class.
    ///
    /// # Panics
    /// Panics if `class` is out of range.
    pub fn primitive_of_class(&self, class: usize) -> usize {
        self.primitive_of[class]
    }

    /// The sorted class list of a composite task `Q = ∪ H_i`.
    ///
    /// # Panics
    /// Panics on an out-of-range or duplicated task index.
    pub fn composite_classes(&self, task_indices: &[usize]) -> Vec<usize> {
        let mut seen = vec![false; self.primitives.len()];
        let mut out = Vec::new();
        for &t in task_indices {
            assert!(t < self.primitives.len(), "primitive task {t} out of range");
            assert!(!seen[t], "primitive task {t} listed twice in composite");
            seen[t] = true;
            out.extend_from_slice(&self.primitives[t].classes);
        }
        out.sort_unstable();
        out
    }

    /// All distinct `k`-subsets of primitive-task indices, in lexicographic
    /// order — the composite-task enumeration behind Table 3's averages.
    pub fn composites_of_size(&self, k: usize, from_tasks: &[usize]) -> Vec<Vec<usize>> {
        assert!(k >= 1 && k <= from_tasks.len());
        let mut out = Vec::new();
        let mut current = Vec::with_capacity(k);
        fn rec(
            pool: &[usize],
            k: usize,
            start: usize,
            current: &mut Vec<usize>,
            out: &mut Vec<Vec<usize>>,
        ) {
            if current.len() == k {
                out.push(current.clone());
                return;
            }
            for i in start..pool.len() {
                current.push(pool[i]);
                rec(pool, k, i + 1, current, out);
                current.pop();
            }
        }
        rec(from_tasks, k, 0, &mut current, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ClassHierarchy {
        ClassHierarchy::new(
            6,
            vec![
                PrimitiveTask {
                    name: "a".into(),
                    classes: vec![0, 3],
                },
                PrimitiveTask {
                    name: "b".into(),
                    classes: vec![1, 4],
                },
                PrimitiveTask {
                    name: "c".into(),
                    classes: vec![2, 5],
                },
            ],
        )
    }

    #[test]
    fn lookup_round_trips() {
        let h = small();
        assert_eq!(h.num_classes(), 6);
        assert_eq!(h.num_primitives(), 3);
        assert_eq!(h.primitive_of_class(4), 1);
        assert_eq!(h.primitive(1).classes, vec![1, 4]);
    }

    #[test]
    #[should_panic]
    fn overlapping_groups_rejected() {
        ClassHierarchy::new(
            3,
            vec![
                PrimitiveTask {
                    name: "a".into(),
                    classes: vec![0, 1],
                },
                PrimitiveTask {
                    name: "b".into(),
                    classes: vec![1, 2],
                },
            ],
        );
    }

    #[test]
    #[should_panic]
    fn uncovered_class_rejected() {
        ClassHierarchy::new(
            3,
            vec![PrimitiveTask {
                name: "a".into(),
                classes: vec![0, 1],
            }],
        );
    }

    #[test]
    fn contiguous_partition_covers_all() {
        let h = ClassHierarchy::contiguous(10, 3);
        assert_eq!(h.num_primitives(), 3);
        let sizes: Vec<usize> = h.primitives().iter().map(|p| p.classes.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert_eq!(sizes, vec![4, 3, 3]);
        for c in 0..10 {
            let t = h.primitive_of_class(c);
            assert!(h.primitive(t).classes.contains(&c));
        }
    }

    #[test]
    fn composite_classes_sorted_union() {
        let h = small();
        assert_eq!(h.composite_classes(&[2, 0]), vec![0, 2, 3, 5]);
    }

    #[test]
    #[should_panic]
    fn duplicate_composite_rejected() {
        small().composite_classes(&[1, 1]);
    }

    #[test]
    fn composites_of_size_enumerates_choose() {
        let h = ClassHierarchy::contiguous(12, 6);
        let pool: Vec<usize> = (0..6).collect();
        assert_eq!(h.composites_of_size(2, &pool).len(), 15);
        assert_eq!(h.composites_of_size(5, &pool).len(), 6);
        let c3 = h.composites_of_size(3, &pool);
        assert_eq!(c3.len(), 20);
        assert_eq!(c3[0], vec![0, 1, 2]);
        assert_eq!(c3[19], vec![3, 4, 5]);
    }
}
