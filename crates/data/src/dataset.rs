//! Labelled datasets and task-restricted views.

use poe_tensor::Tensor;

/// A labelled dataset: `inputs[i]` (any per-sample rank) with global class
/// label `labels[i] < num_classes`.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Sample tensor, `[n, …]`.
    pub inputs: Tensor,
    /// Global class labels, one per sample.
    pub labels: Vec<usize>,
    /// Number of classes in the *global* label space.
    pub num_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating label ranges.
    ///
    /// # Panics
    /// Panics if counts disagree or a label is out of range.
    pub fn new(inputs: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(
            inputs.dims()[0],
            labels.len(),
            "sample/label count mismatch"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        Dataset {
            inputs,
            labels,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-sample shape (without the leading batch dimension).
    pub fn sample_shape(&self) -> Vec<usize> {
        self.inputs.dims()[1..].to_vec()
    }

    /// Restricts the dataset to samples whose label is in `classes`,
    /// remapping labels to *positions within `classes`* (the label space a
    /// specialized model is trained on).
    ///
    /// # Panics
    /// Panics if `classes` contains duplicates or out-of-range ids.
    pub fn task_view(&self, classes: &[usize]) -> Dataset {
        let mut remap = vec![usize::MAX; self.num_classes];
        for (pos, &c) in classes.iter().enumerate() {
            assert!(c < self.num_classes, "class {c} out of range");
            assert_eq!(remap[c], usize::MAX, "class {c} duplicated in task");
            remap[c] = pos;
        }
        let keep: Vec<usize> = self
            .labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| remap[l] != usize::MAX)
            .map(|(i, _)| i)
            .collect();
        let labels = keep.iter().map(|&i| remap[self.labels[i]]).collect();
        Dataset {
            inputs: self.inputs.select_samples(&keep),
            labels,
            num_classes: classes.len(),
        }
    }

    /// The complement view: samples whose label is *not* in `classes`,
    /// keeping their original global labels. These are the
    /// *out-of-distribution* inputs used in the paper's confidence analysis
    /// (Figure 5).
    pub fn out_of_task_view(&self, classes: &[usize]) -> Dataset {
        let mut in_task = vec![false; self.num_classes];
        for &c in classes {
            assert!(c < self.num_classes, "class {c} out of range");
            in_task[c] = true;
        }
        let keep: Vec<usize> = self
            .labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| !in_task[l])
            .map(|(i, _)| i)
            .collect();
        Dataset {
            inputs: self.inputs.select_samples(&keep),
            labels: keep.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
        }
    }

    /// Per-class sample counts, indexed by global class id.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Ratio of the largest to the smallest per-class count among classes
    /// that occur (1.0 for perfectly balanced data; `f64::INFINITY` when
    /// some class is absent while others occur).
    pub fn imbalance_ratio(&self) -> f64 {
        let counts = self.class_counts();
        let max = counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        let min = counts.iter().copied().min().unwrap_or(0);
        if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }

    /// Splits the dataset into `(train, held_out)` with per-class
    /// stratification: for every class, `held_out_fraction` of its samples
    /// (at least one when the class has ≥ 2) goes to the held-out side.
    /// Used to carve a validation split out of user-supplied data.
    ///
    /// # Panics
    /// Panics unless `0 < held_out_fraction < 1`.
    pub fn stratified_split(
        &self,
        held_out_fraction: f64,
        rng: &mut poe_tensor::Prng,
    ) -> (Dataset, Dataset) {
        assert!(
            held_out_fraction > 0.0 && held_out_fraction < 1.0,
            "held_out_fraction must be in (0, 1)"
        );
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.num_classes];
        for (i, &l) in self.labels.iter().enumerate() {
            by_class[l].push(i);
        }
        let mut train_idx = Vec::new();
        let mut held_idx = Vec::new();
        for mut members in by_class {
            if members.is_empty() {
                continue;
            }
            rng.shuffle(&mut members);
            let k = if members.len() == 1 {
                0
            } else {
                ((members.len() as f64 * held_out_fraction).round() as usize)
                    .clamp(1, members.len() - 1)
            };
            held_idx.extend_from_slice(&members[..k]);
            train_idx.extend_from_slice(&members[k..]);
        }
        train_idx.sort_unstable();
        held_idx.sort_unstable();
        let take = |idx: &[usize]| -> Dataset {
            Dataset {
                inputs: self.inputs.select_samples(idx),
                labels: idx.iter().map(|&i| self.labels[i]).collect(),
                num_classes: self.num_classes,
            }
        };
        (take(&train_idx), take(&held_idx))
    }

    /// Takes every `stride`-th sample — a cheap deterministic subsample for
    /// fast evaluation passes.
    pub fn thin(&self, stride: usize) -> Dataset {
        assert!(stride > 0);
        let keep: Vec<usize> = (0..self.len()).step_by(stride).collect();
        Dataset {
            inputs: self.inputs.select_samples(&keep),
            labels: keep.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
        }
    }
}

/// A train/test split sharing one label space.
#[derive(Debug, Clone)]
pub struct SplitDataset {
    /// Training partition.
    pub train: Dataset,
    /// Held-out test partition.
    pub test: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        // 6 samples over 3 classes, feature = label as f32.
        let labels = vec![0, 1, 2, 0, 1, 2];
        let inputs = Tensor::from_vec(labels.iter().map(|&l| l as f32).collect(), [6, 1]);
        Dataset::new(inputs, labels, 3)
    }

    #[test]
    fn construction_validates() {
        let d = toy();
        assert_eq!(d.len(), 6);
        assert_eq!(d.sample_shape(), vec![1]);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_range_label_rejected() {
        Dataset::new(Tensor::zeros([1, 1]), vec![5], 3);
    }

    #[test]
    fn task_view_remaps_labels() {
        let d = toy();
        let v = d.task_view(&[2, 0]);
        assert_eq!(v.len(), 4);
        assert_eq!(v.num_classes, 2);
        // Original class 2 → 0, class 0 → 1.
        assert_eq!(v.labels, vec![1, 0, 1, 0]);
        // Features follow their samples.
        assert_eq!(v.inputs.data(), &[0.0, 2.0, 0.0, 2.0]);
    }

    #[test]
    fn out_of_task_view_keeps_global_labels() {
        let d = toy();
        let v = d.out_of_task_view(&[0]);
        assert_eq!(v.len(), 4);
        assert_eq!(v.labels, vec![1, 2, 1, 2]);
        assert_eq!(v.num_classes, 3);
    }

    #[test]
    fn task_and_complement_partition() {
        let d = toy();
        let a = d.task_view(&[1]);
        let b = d.out_of_task_view(&[1]);
        assert_eq!(a.len() + b.len(), d.len());
    }

    #[test]
    fn thin_subsamples() {
        let d = toy();
        let t = d.thin(2);
        assert_eq!(t.len(), 3);
        assert_eq!(t.labels, vec![0, 2, 1]);
    }

    #[test]
    fn stratified_split_preserves_class_coverage() {
        use poe_tensor::Prng;
        // 4 classes × 10 samples.
        let labels: Vec<usize> = (0..40).map(|i| i % 4).collect();
        let inputs = Tensor::from_vec((0..40).map(|v| v as f32).collect(), [40, 1]);
        let d = Dataset::new(inputs, labels, 4);
        let (train, held) = d.stratified_split(0.2, &mut Prng::seed_from_u64(9));
        assert_eq!(train.len() + held.len(), 40);
        // Every class appears on both sides.
        for counts in [train.class_counts(), held.class_counts()] {
            assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        }
        // Held-out fraction is ~20% per class.
        assert_eq!(held.class_counts(), vec![2, 2, 2, 2]);
        // No sample duplicated: features partition exactly.
        let mut all: Vec<i64> = train
            .inputs
            .data()
            .iter()
            .chain(held.inputs.data())
            .map(|&v| v as i64)
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<i64>>());
    }

    #[test]
    fn stratified_split_keeps_singletons_in_train() {
        use poe_tensor::Prng;
        let d = Dataset::new(Tensor::zeros([3, 1]), vec![0, 0, 1], 2);
        let (train, held) = d.stratified_split(0.5, &mut Prng::seed_from_u64(1));
        // Class 1 has one sample → stays in train.
        assert!(train.labels.contains(&1));
        assert!(!held.labels.contains(&1));
    }

    #[test]
    fn class_counts_and_balance() {
        let d = toy();
        assert_eq!(d.class_counts(), vec![2, 2, 2]);
        assert_eq!(d.imbalance_ratio(), 1.0);
        // Remove one class → infinite imbalance over the global space.
        let v = d.task_view(&[0, 1]);
        assert_eq!(v.class_counts(), vec![2, 2]);
        let skew = Dataset::new(Tensor::zeros([3, 1]), vec![0, 0, 1], 3);
        assert!(skew.imbalance_ratio().is_infinite());
        let empty = d.task_view(&[]);
        assert_eq!(empty.imbalance_ratio(), 1.0);
    }

    #[test]
    #[should_panic]
    fn duplicate_task_class_rejected() {
        toy().task_view(&[1, 1]);
    }
}
