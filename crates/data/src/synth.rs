//! Hierarchical Gaussian-mixture feature datasets.
//!
//! **Substitution note (see DESIGN.md §2).** The paper evaluates on
//! CIFAR-100 and Tiny-ImageNet, which are unavailable offline and whose
//! full-size CNN training is infeasible on CPU. PoE's algorithms depend on
//! two dataset properties only: (a) classes cluster into semantically-close
//! *primitive tasks*, and (b) an oracle trained on all classes produces
//! low-magnitude sub-logits for inputs outside a task. This generator
//! reproduces both with a three-level Gaussian hierarchy:
//!
//! ```text
//! superclass centre  μ_s ~ N(0, σ_super² I)
//! class centre       μ_c = μ_s + N(0, σ_class² I)
//! sample             x   = μ_c + N(0, σ_noise² I)
//! ```
//!
//! Classes within a primitive task share a superclass centre, so they are
//! mutually confusable but well-separated from other tasks — exactly the
//! regime where specialization pays off and where the logit-scale problem
//! appears when experts are merged.

use crate::{ClassHierarchy, Dataset, PrimitiveTask, SplitDataset};
use poe_tensor::{Prng, Tensor};

/// Configuration of the hierarchical Gaussian generator.
#[derive(Debug, Clone)]
pub struct GaussianHierarchyConfig {
    /// Feature dimensionality.
    pub dim: usize,
    /// Sizes of each primitive task (number of classes per superclass).
    pub task_sizes: Vec<usize>,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Spread of superclass centres.
    pub sigma_super: f32,
    /// Spread of class centres around their superclass centre.
    pub sigma_class: f32,
    /// Per-sample noise.
    pub sigma_noise: f32,
    /// Generator seed; the same seed reproduces the dataset exactly.
    pub seed: u64,
    /// Observation dimensionality after the nonlinear renderer (`0`
    /// observes the latent directly). Rendering through a fixed random
    /// tanh-MLP makes the classes non-linearly-separable in observation
    /// space, so small-data Scratch training cannot shortcut representation
    /// learning — the regime the paper's image benchmarks live in.
    pub obs_dim: usize,
    /// Depth of the renderer (tanh layers); ignored when `obs_dim == 0`.
    pub render_depth: usize,
    /// Fraction of **training** labels replaced by uniform random labels.
    /// Real image benchmarks are never perfectly separable; without label
    /// noise an oracle fits the training set exactly and its logit scales
    /// grow unrealistically large (which distorts the `L_scale` term).
    pub label_noise: f32,
}

impl GaussianHierarchyConfig {
    /// A balanced configuration with `num_tasks` tasks of `classes_per_task`
    /// classes each and difficulty defaults calibrated so a well-trained
    /// oracle lands in the 70–85% accuracy band (like the paper's oracles).
    pub fn balanced(num_tasks: usize, classes_per_task: usize) -> Self {
        GaussianHierarchyConfig {
            dim: 32,
            task_sizes: vec![classes_per_task; num_tasks],
            train_per_class: 100,
            test_per_class: 20,
            sigma_super: 1.0,
            sigma_class: 0.45,
            sigma_noise: 0.42,
            seed: 0x9e3779b9,
            obs_dim: 0,
            render_depth: 2,
            label_noise: 0.0,
        }
    }

    /// Sets the training-label noise fraction.
    pub fn with_label_noise(mut self, fraction: f32) -> Self {
        assert!((0.0..1.0).contains(&fraction));
        self.label_noise = fraction;
        self
    }

    /// Enables the nonlinear renderer with the given observation width.
    pub fn with_renderer(mut self, obs_dim: usize, depth: usize) -> Self {
        self.obs_dim = obs_dim;
        self.render_depth = depth;
        self
    }

    /// Total number of classes.
    pub fn num_classes(&self) -> usize {
        self.task_sizes.iter().sum()
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the per-class sample counts (smaller = faster tests).
    pub fn with_samples(mut self, train_per_class: usize, test_per_class: usize) -> Self {
        self.train_per_class = train_per_class;
        self.test_per_class = test_per_class;
        self
    }
}

/// One renderer layer: row-major weights plus (out, in) dimensions.
type RenderLayer = (Vec<f32>, usize, usize);

/// A fixed random tanh-MLP mapping latent vectors to observations.
struct Renderer {
    /// Weight matrices `[out × in]`, applied as `x ← tanh(W x)` per layer.
    layers: Vec<RenderLayer>,
}

impl Renderer {
    fn new(latent_dim: usize, obs_dim: usize, depth: usize, rng: &mut Prng) -> Self {
        assert!(depth >= 1, "renderer needs at least one layer");
        let mut layers = Vec::with_capacity(depth);
        let mut d_in = latent_dim;
        for _ in 0..depth {
            let d_out = obs_dim;
            // Gain ~1.6 keeps tanh activations out of both the linear and
            // the saturated regime.
            let std = 1.6 / (d_in as f32).sqrt();
            let w: Vec<f32> = (0..d_out * d_in).map(|_| rng.normal() * std).collect();
            layers.push((w, d_out, d_in));
            d_in = d_out;
        }
        Renderer { layers }
    }

    fn render(&self, z: &[f32]) -> Vec<f32> {
        let mut x = z.to_vec();
        for (w, d_out, d_in) in &self.layers {
            debug_assert_eq!(x.len(), *d_in);
            let mut y = vec![0.0f32; *d_out];
            for (o, yo) in y.iter_mut().enumerate() {
                let row = &w[o * d_in..(o + 1) * d_in];
                let mut acc = 0.0f32;
                for (&wv, &xv) in row.iter().zip(&x) {
                    acc += wv * xv;
                }
                *yo = acc.tanh();
            }
            x = y;
        }
        x
    }
}

/// Generates the hierarchy and a train/test split from a configuration.
pub fn generate(cfg: &GaussianHierarchyConfig) -> (SplitDataset, ClassHierarchy) {
    assert!(!cfg.task_sizes.is_empty(), "no primitive tasks configured");
    assert!(cfg.dim > 0 && cfg.train_per_class > 0 && cfg.test_per_class > 0);
    let num_classes = cfg.num_classes();
    let mut rng = Prng::seed_from_u64(cfg.seed);

    // Primitive-task groups: contiguous class id ranges per superclass.
    let mut groups = Vec::with_capacity(cfg.task_sizes.len());
    let mut next = 0usize;
    for (i, &size) in cfg.task_sizes.iter().enumerate() {
        assert!(size > 0, "empty primitive task {i}");
        groups.push(PrimitiveTask {
            name: format!("task{i}"),
            classes: (next..next + size).collect(),
        });
        next += size;
    }
    let hierarchy = ClassHierarchy::new(num_classes, groups);

    // Class centres.
    let mut centres: Vec<Vec<f32>> = Vec::with_capacity(num_classes);
    for &size in &cfg.task_sizes {
        let super_centre: Vec<f32> = (0..cfg.dim)
            .map(|_| rng.normal() * cfg.sigma_super)
            .collect();
        for _ in 0..size {
            centres.push(
                super_centre
                    .iter()
                    .map(|&m| m + rng.normal() * cfg.sigma_class)
                    .collect(),
            );
        }
    }

    let renderer = if cfg.obs_dim > 0 {
        Some(Renderer::new(
            cfg.dim,
            cfg.obs_dim,
            cfg.render_depth,
            &mut rng,
        ))
    } else {
        None
    };
    let out_dim = if cfg.obs_dim > 0 {
        cfg.obs_dim
    } else {
        cfg.dim
    };

    let sample_split = |per_class: usize, rng: &mut Prng| -> Dataset {
        let n = num_classes * per_class;
        let mut data = Vec::with_capacity(n * out_dim);
        let mut labels = Vec::with_capacity(n);
        let mut latent = vec![0.0f32; cfg.dim];
        for (class, centre) in centres.iter().enumerate() {
            for _ in 0..per_class {
                for (l, &m) in latent.iter_mut().zip(centre) {
                    *l = m + rng.normal() * cfg.sigma_noise;
                }
                match &renderer {
                    Some(r) => data.extend_from_slice(&r.render(&latent)),
                    None => data.extend_from_slice(&latent),
                }
                labels.push(class);
            }
        }
        Dataset::new(Tensor::from_vec(data, [n, out_dim]), labels, num_classes)
    };

    let mut train = sample_split(cfg.train_per_class, &mut rng);
    if cfg.label_noise > 0.0 {
        for l in &mut train.labels {
            if rng.uniform() < cfg.label_noise {
                *l = rng.below(num_classes);
            }
        }
    }
    let test = sample_split(cfg.test_per_class, &mut rng);
    (SplitDataset { train, test }, hierarchy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> GaussianHierarchyConfig {
        GaussianHierarchyConfig::balanced(4, 3).with_samples(10, 5)
    }

    #[test]
    fn shapes_and_counts() {
        let cfg = tiny_cfg();
        let (split, h) = generate(&cfg);
        assert_eq!(h.num_classes(), 12);
        assert_eq!(h.num_primitives(), 4);
        assert_eq!(split.train.len(), 120);
        assert_eq!(split.test.len(), 60);
        assert_eq!(split.train.sample_shape(), vec![32]);
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = generate(&tiny_cfg().with_seed(5));
        let (b, _) = generate(&tiny_cfg().with_seed(5));
        assert_eq!(a.train.inputs, b.train.inputs);
        assert_eq!(a.test.labels, b.test.labels);
        let (c, _) = generate(&tiny_cfg().with_seed(6));
        assert_ne!(a.train.inputs, c.train.inputs);
    }

    #[test]
    fn within_task_classes_are_closer_than_across() {
        // Mean distance between class means inside a task should be smaller
        // than across tasks — the semantic-similarity property.
        let cfg = GaussianHierarchyConfig::balanced(5, 4).with_samples(30, 5);
        let (split, h) = generate(&cfg);
        let d = cfg.dim;
        let num_classes = h.num_classes();
        let mut means = vec![vec![0.0f32; d]; num_classes];
        let mut counts = vec![0usize; num_classes];
        for i in 0..split.train.len() {
            let l = split.train.labels[i];
            counts[l] += 1;
            for (j, &v) in split.train.inputs.row(i).iter().enumerate() {
                means[l][j] += v;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt()
        };
        let (mut within, mut wn, mut across, mut an) = (0.0f32, 0, 0.0f32, 0);
        for a in 0..num_classes {
            for b in (a + 1)..num_classes {
                let dd = dist(&means[a], &means[b]);
                if h.primitive_of_class(a) == h.primitive_of_class(b) {
                    within += dd;
                    wn += 1;
                } else {
                    across += dd;
                    an += 1;
                }
            }
        }
        assert!(within / wn as f32 * 1.3 < across / an as f32);
    }

    #[test]
    fn unbalanced_task_sizes_supported() {
        let mut cfg = tiny_cfg();
        cfg.task_sizes = vec![2, 5, 3];
        let (split, h) = generate(&cfg);
        assert_eq!(h.num_classes(), 10);
        assert_eq!(h.primitive(1).classes.len(), 5);
        assert_eq!(split.train.len(), 100);
    }
}
