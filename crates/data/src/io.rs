//! Plain-text dataset interchange.
//!
//! Lets users bring their own feature data to the PoE pipeline (and export
//! the synthetic benchmarks for inspection) without any external format
//! dependencies. The format is minimal CSV: one sample per line, feature
//! values followed by an integer label in the last column. Lines starting
//! with `#` are comments; the first comment line written by
//! [`write_csv`] records the class count so files round-trip exactly.

use crate::Dataset;
use poe_tensor::Tensor;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Errors from dataset (de)serialization.
#[derive(Debug)]
pub enum DataIoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Structural problem with the file, with a 1-based line number.
    Parse {
        /// Line where the problem was found (0 = file level).
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for DataIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataIoError::Io(e) => write!(f, "i/o error: {e}"),
            DataIoError::Parse { line, message } => {
                write!(f, "bad dataset file (line {line}): {message}")
            }
        }
    }
}

impl std::error::Error for DataIoError {}

impl From<std::io::Error> for DataIoError {
    fn from(e: std::io::Error) -> Self {
        DataIoError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> DataIoError {
    DataIoError::Parse {
        line,
        message: message.into(),
    }
}

/// Writes a dataset as CSV: a `# classes=N` header comment, then one
/// `f1,f2,…,fd,label` line per sample. Only flat (rank-1 sample) datasets
/// are supported.
///
/// # Panics
/// Panics if the dataset's samples are not flat feature vectors.
pub fn write_csv(dataset: &Dataset, path: impl AsRef<Path>) -> Result<(), DataIoError> {
    assert_eq!(
        dataset.sample_shape().len(),
        1,
        "CSV export supports flat feature datasets only"
    );
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "# classes={}", dataset.num_classes)?;
    let dim = dataset.sample_shape()[0];
    let flat = dataset
        .inputs
        .reshape([dataset.len(), dim])
        .expect("flat reshape");
    for (i, &label) in dataset.labels.iter().enumerate() {
        let row = flat.row(i);
        let mut line = String::with_capacity(dim * 10);
        for v in row {
            line.push_str(&format!("{v}"));
            line.push(',');
        }
        line.push_str(&label.to_string());
        writeln!(out, "{line}")?;
    }
    Ok(())
}

/// Reads a dataset written by [`write_csv`], or any CSV of
/// `features…,label` rows. The class count is taken from the
/// `# classes=N` header when present, otherwise `max(label)+1`.
pub fn read_csv(path: impl AsRef<Path>) -> Result<Dataset, DataIoError> {
    let file = std::fs::File::open(path)?;
    let reader = BufReader::new(file);

    let mut declared_classes: Option<usize> = None;
    let mut dim: Option<usize> = None;
    let mut data: Vec<f32> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            if let Some(v) = comment.trim().strip_prefix("classes=") {
                declared_classes = Some(
                    v.trim()
                        .parse()
                        .map_err(|_| parse_err(line_no, format!("bad class count `{v}`")))?,
                );
            }
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() < 2 {
            return Err(parse_err(line_no, "need at least one feature and a label"));
        }
        let this_dim = fields.len() - 1;
        match dim {
            None => dim = Some(this_dim),
            Some(d) if d != this_dim => {
                return Err(parse_err(
                    line_no,
                    format!("row has {this_dim} features, expected {d}"),
                ));
            }
            _ => {}
        }
        for f in &fields[..this_dim] {
            let v: f32 = f
                .trim()
                .parse()
                .map_err(|_| parse_err(line_no, format!("bad feature value `{f}`")))?;
            if !v.is_finite() {
                return Err(parse_err(line_no, format!("non-finite feature `{f}`")));
            }
            data.push(v);
        }
        let label: usize = fields[this_dim]
            .trim()
            .parse()
            .map_err(|_| parse_err(line_no, format!("bad label `{}`", fields[this_dim])))?;
        labels.push(label);
    }

    let dim = dim.ok_or_else(|| parse_err(0, "file contains no samples"))?;
    let max_label = labels.iter().copied().max().unwrap_or(0);
    let num_classes = match declared_classes {
        Some(n) => {
            if max_label >= n {
                return Err(parse_err(
                    0,
                    format!("label {max_label} exceeds declared classes={n}"),
                ));
            }
            n
        }
        None => max_label + 1,
    };
    let n = labels.len();
    Ok(Dataset::new(
        Tensor::from_vec(data, [n, dim]),
        labels,
        num_classes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, GaussianHierarchyConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("poe_dataio_{name}.csv"))
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (split, _) = generate(
            &GaussianHierarchyConfig {
                dim: 5,
                ..GaussianHierarchyConfig::balanced(2, 3)
            }
            .with_samples(8, 2)
            .with_seed(3),
        );
        let path = tmp("round_trip");
        write_csv(&split.train, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.num_classes, split.train.num_classes);
        assert_eq!(back.labels, split.train.labels);
        assert_eq!(back.sample_shape(), split.train.sample_shape());
        assert!(back.inputs.max_abs_diff(&split.train.inputs) < 1e-5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reads_headerless_csv_and_infers_classes() {
        let path = tmp("headerless");
        std::fs::write(&path, "1.0,2.0,0\n3.5,-1.0,2\n\n0.0,0.0,1\n").unwrap();
        let d = read_csv(&path).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.num_classes, 3);
        assert_eq!(d.labels, vec![0, 2, 1]);
        assert_eq!(d.sample_shape(), vec![2]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let path = tmp("ragged");
        std::fs::write(&path, "1.0,2.0,0\n1.0,2.0,3.0,1\n").unwrap();
        let err = read_csv(&path).unwrap_err();
        match err {
            DataIoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        std::fs::remove_file(&path).ok();

        let path = tmp("badlabel");
        std::fs::write(&path, "1.0,x\n").unwrap();
        assert!(matches!(
            read_csv(&path),
            Err(DataIoError::Parse { line: 1, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn declared_class_count_is_enforced() {
        let path = tmp("declared");
        std::fs::write(&path, "# classes=2\n1.0,0\n2.0,5\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::write(&path, "# classes=4\n1.0,0\n2.0,1\n").unwrap();
        assert_eq!(read_csv(&path).unwrap().num_classes, 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_an_error() {
        let path = tmp("empty");
        std::fs::write(&path, "# classes=3\n").unwrap();
        assert!(matches!(
            read_csv(&path),
            Err(DataIoError::Parse { line: 0, .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
