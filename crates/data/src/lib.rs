//! # poe-data
//!
//! Synthetic datasets with class hierarchies, standing in for the paper's
//! CIFAR-100 and Tiny-ImageNet benchmarks (the substitution is documented
//! in `DESIGN.md` §2). Provides:
//!
//! * [`ClassHierarchy`] / [`PrimitiveTask`] — the primitive/composite task
//!   structure of Section 3 of the paper,
//! * [`Dataset`] / [`SplitDataset`] — labelled data with task-restricted
//!   views (`task_view`) and out-of-distribution complements
//!   (`out_of_task_view`, used by the Figure 5 confidence analysis),
//! * [`synth`] — hierarchical Gaussian feature datasets,
//! * [`images`] — miniature synthetic image datasets for the conv WRN path,
//! * [`presets`] — `cifar100_sim` (100 classes / 20 tasks) and
//!   `tiny_imagenet_sim` (200 classes / 34 tasks),
//! * [`io`] — CSV import/export so users can bring their own feature data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod hierarchy;

pub mod images;
pub mod io;
pub mod presets;
pub mod synth;

pub use dataset::{Dataset, SplitDataset};
pub use hierarchy::{ClassHierarchy, PrimitiveTask};
