//! Named dataset presets mirroring the paper's two benchmarks.
//!
//! * [`cifar100_sim`] — 100 classes in 20 superclasses of 5, like
//!   CIFAR-100's coarse labels (the paper's primitive tasks).
//! * [`tiny_imagenet_sim`] — 200 classes in 34 primitive tasks, like the
//!   paper's grouping of Tiny-ImageNet leaves by the ImageNet semantic tree
//!   ("a few (from 3 to 10) classes" per task; our deterministic partition
//!   uses sizes 5–6, within that range).
//!
//! Both presets expose a [`DatasetScale`] so tests can shrink the sample
//! counts while benchmarks use the full synthetic size.

use crate::synth::{generate, GaussianHierarchyConfig};
use crate::{ClassHierarchy, SplitDataset};

/// Sample-count scaling for a preset.
#[derive(Debug, Clone, Copy)]
pub struct DatasetScale {
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
}

impl DatasetScale {
    /// The default experiment scale (fast enough for CPU sweeps while
    /// keeping accuracy estimates stable).
    pub const FULL: DatasetScale = DatasetScale {
        train_per_class: 100,
        test_per_class: 20,
    };
    /// A tiny scale for unit/integration tests.
    pub const TINY: DatasetScale = DatasetScale {
        train_per_class: 12,
        test_per_class: 6,
    };
}

/// The six primitive tasks the paper samples for its specialization and
/// consolidation experiments ("we randomly choose six of all the primitive
/// tasks"). We fix them deterministically from a seed.
pub fn sample_six_tasks(hierarchy: &ClassHierarchy, seed: u64) -> Vec<usize> {
    let mut rng = poe_tensor::Prng::seed_from_u64(seed);
    let mut picked = rng.sample_without_replacement(hierarchy.num_primitives(), 6);
    picked.sort_unstable();
    picked
}

/// CIFAR-100 analog: 100 classes, 20 primitive tasks of 5 classes.
pub fn cifar100_sim(scale: DatasetScale, seed: u64) -> (SplitDataset, ClassHierarchy) {
    let cfg = GaussianHierarchyConfig {
        dim: 16,
        task_sizes: vec![5; 20],
        ..GaussianHierarchyConfig::balanced(20, 5)
    }
    .with_renderer(32, 3)
    .with_label_noise(0.08)
    .with_samples(scale.train_per_class, scale.test_per_class)
    .with_seed(seed);
    generate(&cfg)
}

/// Tiny-ImageNet analog: 200 classes, 34 primitive tasks (30 of size 6 and
/// 4 of size 5), slightly harder than [`cifar100_sim`] (more classes per
/// unit volume), mirroring the lower oracle accuracy the paper reports.
pub fn tiny_imagenet_sim(scale: DatasetScale, seed: u64) -> (SplitDataset, ClassHierarchy) {
    let mut task_sizes = vec![6; 30];
    task_sizes.extend_from_slice(&[5; 4]);
    debug_assert_eq!(task_sizes.iter().sum::<usize>(), 200);
    let cfg = GaussianHierarchyConfig {
        dim: 16,
        task_sizes,
        train_per_class: scale.train_per_class,
        test_per_class: scale.test_per_class,
        sigma_super: 1.0,
        sigma_class: 0.42,
        sigma_noise: 0.46,
        seed,
        obs_dim: 32,
        render_depth: 3,
        label_noise: 0.08,
    };
    generate(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cifar_preset_shape() {
        let (split, h) = cifar100_sim(DatasetScale::TINY, 1);
        assert_eq!(h.num_classes(), 100);
        assert_eq!(h.num_primitives(), 20);
        assert!(h.primitives().iter().all(|p| p.classes.len() == 5));
        assert_eq!(split.train.len(), 100 * 12);
        assert_eq!(split.test.len(), 100 * 6);
    }

    #[test]
    fn tiny_imagenet_preset_shape() {
        let (split, h) = tiny_imagenet_sim(DatasetScale::TINY, 1);
        assert_eq!(h.num_classes(), 200);
        assert_eq!(h.num_primitives(), 34);
        let sizes: Vec<usize> = h.primitives().iter().map(|p| p.classes.len()).collect();
        assert!(sizes.iter().all(|&s| (3..=10).contains(&s)));
        assert_eq!(split.train.len(), 200 * 12);
    }

    #[test]
    fn six_tasks_are_distinct_and_deterministic() {
        let (_, h) = cifar100_sim(DatasetScale::TINY, 1);
        let a = sample_six_tasks(&h, 7);
        let b = sample_six_tasks(&h, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 6);
        assert!(a.iter().all(|&t| t < 20));
        let c = sample_six_tasks(&h, 8);
        assert_ne!(a, c);
    }
}
