//! Synthetic image datasets for the convolutional WRN path.
//!
//! **Substitution note (see DESIGN.md §2).** These stand in for the paper's
//! CIFAR-100 / Tiny-ImageNet *images*. Each superclass draws a smooth base
//! texture (a sum of random low-frequency sinusoidal gratings per channel);
//! each class perturbs that texture with its own higher-frequency grating;
//! samples add pixel noise and a random global phase jitter. The result is
//! an image classification problem with the same hierarchical structure as
//! the feature datasets of [`crate::synth`], at a miniature spatial size
//! that a pure-CPU conv net can train on.

use crate::{ClassHierarchy, Dataset, PrimitiveTask, SplitDataset};
use poe_tensor::{Prng, Tensor};

/// Configuration of the synthetic image generator.
#[derive(Debug, Clone)]
pub struct ImageHierarchyConfig {
    /// Channels (e.g. 3 for RGB-like).
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Classes per primitive task.
    pub task_sizes: Vec<usize>,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Pixel noise level.
    pub sigma_noise: f32,
    /// Generator seed.
    pub seed: u64,
}

impl ImageHierarchyConfig {
    /// A miniature configuration suitable for CPU conv training.
    pub fn miniature(num_tasks: usize, classes_per_task: usize) -> Self {
        ImageHierarchyConfig {
            channels: 3,
            height: 8,
            width: 8,
            task_sizes: vec![classes_per_task; num_tasks],
            train_per_class: 30,
            test_per_class: 10,
            sigma_noise: 0.35,
            seed: 0x5eed,
        }
    }

    /// Total class count.
    pub fn num_classes(&self) -> usize {
        self.task_sizes.iter().sum()
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A per-channel sinusoidal grating with random orientation and phase.
struct Grating {
    fx: f32,
    fy: f32,
    phase: f32,
    amp: f32,
}

impl Grating {
    fn random(rng: &mut Prng, max_freq: f32, amp: f32) -> Self {
        Grating {
            fx: rng.uniform_in(-max_freq, max_freq),
            fy: rng.uniform_in(-max_freq, max_freq),
            phase: rng.uniform_in(0.0, std::f32::consts::TAU),
            amp,
        }
    }

    fn at(&self, y: usize, x: usize, jitter: f32) -> f32 {
        self.amp * (self.fx * x as f32 + self.fy * y as f32 + self.phase + jitter).sin()
    }
}

/// Generates the hierarchy and an image train/test split.
pub fn generate_images(cfg: &ImageHierarchyConfig) -> (SplitDataset, ClassHierarchy) {
    assert!(!cfg.task_sizes.is_empty());
    let num_classes = cfg.num_classes();
    let mut rng = Prng::seed_from_u64(cfg.seed);

    let mut groups = Vec::new();
    let mut next = 0usize;
    for (i, &size) in cfg.task_sizes.iter().enumerate() {
        groups.push(PrimitiveTask {
            name: format!("imgtask{i}"),
            classes: (next..next + size).collect(),
        });
        next += size;
    }
    let hierarchy = ClassHierarchy::new(num_classes, groups);

    // Per-class texture: superclass base gratings + class-specific grating.
    struct ClassTexture {
        base: Vec<Grating>,   // one per channel, low frequency
        detail: Vec<Grating>, // one per channel, higher frequency
    }
    let mut textures: Vec<ClassTexture> = Vec::with_capacity(num_classes);
    for &size in &cfg.task_sizes {
        let base: Vec<Grating> = (0..cfg.channels)
            .map(|_| Grating::random(&mut rng, 0.6, 1.0))
            .collect();
        for _ in 0..size {
            let detail: Vec<Grating> = (0..cfg.channels)
                .map(|_| Grating::random(&mut rng, 1.8, 0.6))
                .collect();
            textures.push(ClassTexture {
                base: base
                    .iter()
                    .map(|g| Grating {
                        fx: g.fx,
                        fy: g.fy,
                        phase: g.phase,
                        amp: g.amp,
                    })
                    .collect(),
                detail,
            });
        }
    }

    let (c, h, w) = (cfg.channels, cfg.height, cfg.width);
    let sample_split = |per_class: usize, rng: &mut Prng| -> Dataset {
        let n = num_classes * per_class;
        let mut data = Vec::with_capacity(n * c * h * w);
        let mut labels = Vec::with_capacity(n);
        for (class, tex) in textures.iter().enumerate() {
            for _ in 0..per_class {
                let jitter = rng.uniform_in(-0.3, 0.3);
                for ch in 0..c {
                    for y in 0..h {
                        for x in 0..w {
                            let v = tex.base[ch].at(y, x, jitter)
                                + tex.detail[ch].at(y, x, jitter)
                                + rng.normal() * cfg.sigma_noise;
                            data.push(v);
                        }
                    }
                }
                labels.push(class);
            }
        }
        Dataset::new(Tensor::from_vec(data, [n, c, h, w]), labels, num_classes)
    };

    let train = sample_split(cfg.train_per_class, &mut rng);
    let test = sample_split(cfg.test_per_class, &mut rng);
    (SplitDataset { train, test }, hierarchy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_counts() {
        let cfg = ImageHierarchyConfig::miniature(2, 3);
        let (split, h) = generate_images(&cfg);
        assert_eq!(h.num_classes(), 6);
        assert_eq!(split.train.len(), 6 * 30);
        assert_eq!(split.test.len(), 6 * 10);
        assert_eq!(split.train.sample_shape(), vec![3, 8, 8]);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ImageHierarchyConfig::miniature(2, 2).with_seed(9);
        let (a, _) = generate_images(&cfg);
        let (b, _) = generate_images(&cfg);
        assert_eq!(a.train.inputs, b.train.inputs);
    }

    #[test]
    fn images_are_bounded_and_finite() {
        let cfg = ImageHierarchyConfig::miniature(2, 2);
        let (split, _) = generate_images(&cfg);
        assert!(!split.train.inputs.has_non_finite());
        // amp 1.0 + amp 0.6 + noise: values should stay in a small range.
        assert!(split.train.inputs.max() < 4.0);
        assert!(split.train.inputs.min() > -4.0);
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean image of a class should be closer to samples of that class
        // than to samples of another class, on average.
        let mut cfg = ImageHierarchyConfig::miniature(2, 2);
        cfg.sigma_noise = 0.1;
        let (split, _) = generate_images(&cfg);
        let d: usize = split.train.sample_shape().iter().product();
        let n = split.train.len();
        let flat = split.train.inputs.reshape([n, d]).unwrap();
        let mut means = vec![vec![0.0f32; d]; 4];
        let mut counts = vec![0usize; 4];
        for i in 0..n {
            let l = split.train.labels[i];
            counts[l] += 1;
            for (j, &v) in flat.row(i).iter().enumerate() {
                means[l][j] += v;
            }
        }
        for (m, &cnt) in means.iter_mut().zip(&counts) {
            m.iter_mut().for_each(|v| *v /= cnt as f32);
        }
        // Nearest-mean classification on train data should beat chance.
        let mut correct = 0;
        for i in 0..n {
            let row = flat.row(i);
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (cl, m) in means.iter().enumerate() {
                let dd: f32 = row.iter().zip(m).map(|(a, b)| (a - b) * (a - b)).sum();
                if dd < best_d {
                    best_d = dd;
                    best = cl;
                }
            }
            correct += usize::from(best == split.train.labels[i]);
        }
        let acc = correct as f64 / n as f64;
        assert!(acc > 0.8, "nearest-mean accuracy {acc}");
    }
}
