//! Retry pacing: exponential backoff with decorrelated jitter.
//!
//! The failure mode this guards against is the retry stampede: a shard
//! sheds load, every router client sleeps the same fixed interval, and
//! the whole cohort re-arrives in one synchronized wave. Decorrelated
//! jitter (`sleep = uniform(base, prev * 3)`, capped) spreads the wave,
//! and the `retry_after_ms` hint from an `ERR busy` response acts as a
//! *floor* — the server knows its own drain horizon better than we do.

use poe_tensor::Prng;
use std::time::Duration;

/// Per-logical-call retry budget and pacing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per shard call, including the first (≥ 1).
    pub max_attempts: u32,
    /// First backoff interval, and the lower bound of every draw.
    pub base: Duration,
    /// Upper bound on any single backoff interval (hints may exceed it).
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(20),
            cap: Duration::from_millis(500),
        }
    }
}

/// Mutable backoff state for one logical call's retry sequence.
#[derive(Debug)]
pub struct Backoff {
    policy: RetryPolicy,
    prev: Duration,
}

impl Backoff {
    /// Fresh state; the first delay draws from `[base, 3*base]`.
    pub fn new(policy: RetryPolicy) -> Self {
        Backoff {
            policy,
            prev: policy.base,
        }
    }

    /// Draws the next sleep interval. `hint` is the server's
    /// `retry_after_ms` (if it sent one) and floors the result — we never
    /// re-knock earlier than the server asked, even past `cap`.
    pub fn next_delay(&mut self, rng: &mut Prng, hint: Option<Duration>) -> Duration {
        let lo = self.policy.base.as_secs_f64();
        let hi = (self.prev.as_secs_f64() * 3.0).max(lo);
        let frac = f64::from(rng.uniform());
        let drawn = Duration::from_secs_f64(lo + (hi - lo) * frac).min(self.policy.cap);
        self.prev = drawn;
        match hint {
            Some(h) => drawn.max(h),
            None => drawn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
        }
    }

    #[test]
    fn delays_stay_within_base_and_cap() {
        let mut rng = Prng::seed_from_u64(1);
        let mut b = Backoff::new(policy());
        for _ in 0..64 {
            let d = b.next_delay(&mut rng, None);
            assert!(d >= Duration::from_millis(10), "{d:?} below base");
            assert!(d <= Duration::from_millis(200), "{d:?} above cap");
        }
    }

    #[test]
    fn jitter_decorrelates_and_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<Duration> {
            let mut rng = Prng::seed_from_u64(seed);
            let mut b = Backoff::new(policy());
            (0..16).map(|_| b.next_delay(&mut rng, None)).collect()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same schedule");
        assert_ne!(a, run(8), "different seed should differ");
        let distinct: std::collections::BTreeSet<_> = a.iter().collect();
        assert!(
            distinct.len() > 4,
            "delays must actually be jittered: {a:?}"
        );
    }

    #[test]
    fn busy_hint_floors_the_delay_even_past_the_cap() {
        let mut rng = Prng::seed_from_u64(3);
        let mut b = Backoff::new(policy());
        let hint = Duration::from_millis(750); // beyond cap
        assert_eq!(b.next_delay(&mut rng, Some(hint)), hint);
        // Without a hint we fall back under the cap again.
        assert!(b.next_delay(&mut rng, None) <= Duration::from_millis(200));
    }
}
