//! Per-backend circuit breaker: closed → open on consecutive transport
//! failures → half-open single probe → closed on success.
//!
//! The breaker only counts *transport* failures (connect refused, i/o
//! error, deadline exceeded). Application-level pushback — `ERR busy`,
//! `ERR not ready` — means the backend is alive and talking; tripping on
//! it would amplify load shedding into an outage.
//!
//! Every method takes an explicit `now` so state transitions are testable
//! without sleeping; the `*_at` variants are the real API and the
//! argument-free wrappers just pass `Instant::now()`.

use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all calls admitted.
    Closed,
    /// Tripped: calls fail fast until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe call is in flight.
    HalfOpen,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probing: bool,
}

/// See module docs.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive
    /// transport failures and re-probes after `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probing: false,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current state (transition to half-open happens in `allow_at`, so
    /// an expired open breaker still reads `Open` here until probed).
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Non-mutating preview of `allow_at` — used for replica *ranking*,
    /// where consuming the single half-open probe slot would wedge the
    /// breaker if the ranked replica is then not chosen.
    pub fn would_allow_at(&self, now: Instant) -> bool {
        let g = self.lock();
        match g.state {
            BreakerState::Closed => true,
            BreakerState::Open => g
                .opened_at
                .is_some_and(|t| now.duration_since(t) >= self.cooldown),
            BreakerState::HalfOpen => !g.probing,
        }
    }

    /// Admission check for a call that is actually about to be made. An
    /// open breaker past its cooldown transitions to half-open and admits
    /// this call as the single probe.
    pub fn allow_at(&self, now: Instant) -> bool {
        let mut g = self.lock();
        match g.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                let expired = g
                    .opened_at
                    .is_some_and(|t| now.duration_since(t) >= self.cooldown);
                if expired {
                    g.state = BreakerState::HalfOpen;
                    g.probing = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if g.probing {
                    false
                } else {
                    g.probing = true;
                    true
                }
            }
        }
    }

    /// `allow_at(Instant::now())`.
    pub fn allow(&self) -> bool {
        self.allow_at(Instant::now())
    }

    /// The backend proved alive — a clean response *or* application-level
    /// pushback (`ERR busy` / `ERR not ready`): close the breaker, reset
    /// counters, and release any half-open probe slot.
    pub fn on_success(&self) {
        let mut g = self.lock();
        g.state = BreakerState::Closed;
        g.consecutive_failures = 0;
        g.opened_at = None;
        g.probing = false;
    }

    /// A transport failure at `now`. Returns `true` iff this failure
    /// transitioned the breaker to `Open` (a half-open probe failing
    /// re-opens and also returns `true`) — callers count open events.
    pub fn on_failure_at(&self, now: Instant) -> bool {
        let mut g = self.lock();
        match g.state {
            BreakerState::Closed => {
                g.consecutive_failures += 1;
                if g.consecutive_failures >= self.threshold {
                    g.state = BreakerState::Open;
                    g.opened_at = Some(now);
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                g.state = BreakerState::Open;
                g.opened_at = Some(now);
                g.probing = false;
                true
            }
            BreakerState::Open => false,
        }
    }

    /// `on_failure_at(Instant::now())`.
    pub fn on_failure(&self) -> bool {
        self.on_failure_at(Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(3, Duration::from_millis(100));
        let t0 = Instant::now();
        assert!(!b.on_failure_at(t0));
        assert!(!b.on_failure_at(t0));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.on_failure_at(t0), "third failure trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow_at(t0 + Duration::from_millis(50)), "fails fast");
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let b = CircuitBreaker::new(2, Duration::from_millis(100));
        let t0 = Instant::now();
        assert!(!b.on_failure_at(t0));
        b.on_success();
        assert!(!b.on_failure_at(t0), "count restarted after success");
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_admits_exactly_one_probe_then_closes_on_success() {
        let b = CircuitBreaker::new(1, Duration::from_millis(100));
        let t0 = Instant::now();
        assert!(b.on_failure_at(t0));
        let after = t0 + Duration::from_millis(150);
        assert!(b.would_allow_at(after), "preview does not consume the slot");
        assert!(b.allow_at(after), "cooldown elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow_at(after), "only one probe at a time");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow_at(after));
    }

    #[test]
    fn failed_probe_reopens() {
        let b = CircuitBreaker::new(1, Duration::from_millis(100));
        let t0 = Instant::now();
        assert!(b.on_failure_at(t0));
        let after = t0 + Duration::from_millis(150);
        assert!(b.allow_at(after));
        assert!(b.on_failure_at(after), "probe failure counts as an open");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow_at(after + Duration::from_millis(50)));
        assert!(b.allow_at(after + Duration::from_millis(150)), "re-probes");
    }
}
