//! The scatter/gather engine: per-shard logical calls (replica ranking,
//! budgeted retries, hedged reads) and the logit-level merge that makes
//! a sharded pool answer exactly like a single one.
//!
//! The merge math follows the paper: the pool's composition operator is
//! logit concatenation, so a composite query over tasks on different
//! shards is a scatter, a concat of the surviving logit slices in
//! request order, and one softmax at the edge. When a shard is down past
//! its retry budget, `PREDICT` degrades to the surviving slices instead
//! of failing the whole query.

use crate::backoff::{Backoff, RetryPolicy};
use crate::client::{Backend, CallError};
use crate::shardmap::ShardMap;
use poe_obs::{AtomicHistogram, Counter, Observability};
use poe_tensor::Prng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Ceiling on cold-cache `HEALTH` probes during [`Router::shards_up`]
/// aggregation; data calls still get the full
/// [`RouterConfig::call_timeout`].
pub const HEALTH_PROBE_TIMEOUT: Duration = Duration::from_millis(250);

/// Hedged-read policy: when to race a second replica.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Hedge {
    /// Never hedge.
    Off,
    /// Hedge after a fixed delay.
    After(Duration),
    /// Hedge after the observed p99 shard latency, clamped to
    /// `[floor, cap]`; before any latency is observed, `cap` is used.
    Auto {
        /// Lower clamp on the derived delay.
        floor: Duration,
        /// Upper clamp (and the cold-start default).
        cap: Duration,
    },
}

/// Router tuning knobs. Defaults are sane for a LAN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterConfig {
    /// Deadline for one attempt against one replica.
    pub call_timeout: Duration,
    /// Total time budget for one logical shard call (all retries,
    /// failovers, and hedges included).
    pub budget: Duration,
    /// Retry pacing (attempts, backoff base/cap).
    pub retry: RetryPolicy,
    /// Consecutive transport failures before a replica's breaker opens.
    pub breaker_threshold: u32,
    /// How long an open breaker fails fast before half-open re-probing.
    pub breaker_cooldown: Duration,
    /// Hedged-read policy.
    pub hedge: Hedge,
    /// How long a cached `HEALTH` verdict stays fresh.
    pub health_ttl: Duration,
    /// Seed for backoff jitter (pin for deterministic tests).
    pub seed: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            call_timeout: Duration::from_secs(1),
            budget: Duration::from_secs(3),
            retry: RetryPolicy::default(),
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(2),
            hedge: Hedge::Off,
            health_ttl: Duration::from_secs(1),
            seed: 0,
        }
    }
}

/// The router's instrument set (names are pinned in OPERATIONS.md).
#[derive(Debug)]
pub struct RouterMetrics {
    /// Re-attempts after a failed shard call attempt.
    pub retries: Arc<Counter>,
    /// Hedged reads launched.
    pub hedges: Arc<Counter>,
    /// Within-attempt failovers to another replica.
    pub failovers: Arc<Counter>,
    /// Breaker open events (including half-open probes failing).
    pub breaker_open: Arc<Counter>,
    /// `PREDICT`s answered `OK partial`.
    pub partial_responses: Arc<Counter>,
    /// Successful shard call latency (seconds); its p99 drives
    /// [`Hedge::Auto`].
    pub shard_latency: Arc<AtomicHistogram>,
}

impl RouterMetrics {
    fn new(obs: &Observability) -> Self {
        RouterMetrics {
            retries: obs.registry.counter("router.retries"),
            hedges: obs.registry.counter("router.hedges"),
            failovers: obs.registry.counter("router.failovers"),
            breaker_open: obs.registry.counter("router.breaker_open"),
            partial_responses: obs.registry.counter("router.partial_responses"),
            shard_latency: obs.registry.histogram("router.shard_latency"),
        }
    }
}

/// One shard's replica set.
#[derive(Debug)]
pub struct ShardHandle {
    /// Replicas, spec order.
    pub backends: Vec<Arc<Backend>>,
}

/// A shard that failed past its retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// Shard index in the map.
    pub shard: usize,
    /// Human-readable last error (lands in `ERR shard N unavailable`).
    pub detail: String,
}

/// Why a gathered (multi-shard) operation failed as a whole.
#[derive(Debug, Clone, PartialEq)]
pub enum GatherError {
    /// A requested task is outside every shard range.
    NoShardForTask(usize),
    /// A required shard (or, for `PREDICT`, every shard) is down.
    ShardUnavailable(ShardFailure),
    /// A shard answered, but with a line the router cannot parse.
    Protocol {
        /// Shard index.
        shard: usize,
        /// The offending response line.
        line: String,
    },
    /// A shard returned an application-level `ERR` (bad features, unknown
    /// task…) that applies to the client's request as a whole; forwarded
    /// verbatim.
    Forwarded(String),
}

/// Merged `QUERY` across shards.
#[derive(Debug, Clone, PartialEq)]
pub struct GatheredQuery {
    /// Total output width (sum of shard widths).
    pub outputs: usize,
    /// Sum of shard parameter counts (the shared library is counted once
    /// per shard — see PROTOCOL.md).
    pub params: u64,
    /// Slowest shard's assembly time (shards assemble in parallel).
    pub assembly_ms: f64,
    /// True iff every shard served from its consolidation cache.
    pub cached: bool,
    /// Class label per output column, request task order.
    pub classes: Vec<usize>,
    /// Owning task per output column, request task order.
    pub tasks: Vec<usize>,
}

/// Merged `PREDICT` across shards (possibly partial).
#[derive(Debug, Clone, PartialEq)]
pub struct GatheredPredict {
    /// Winning class label.
    pub class: usize,
    /// Task that owns the winning class.
    pub task: usize,
    /// Softmax confidence over the *surviving* concatenated logits.
    pub confidence: f32,
    /// Shards that answered.
    pub shards_ok: usize,
    /// Shards the request needed.
    pub shards_total: usize,
    /// Request tasks whose shard did not answer (request order; empty on
    /// a full gather).
    pub missing: Vec<usize>,
}

/// Raw gathered logit slices (the `LOGITS` verb, full gather only).
#[derive(Debug, Clone, PartialEq)]
pub struct GatheredLogits {
    /// Concatenated logits, request task order.
    pub logits: Vec<f32>,
    /// Class label per column.
    pub classes: Vec<usize>,
    /// Owning task per column.
    pub tasks: Vec<usize>,
}

/// See module docs.
pub struct Router {
    map: ShardMap,
    shards: Vec<ShardHandle>,
    cfg: RouterConfig,
    obs: Arc<Observability>,
    metrics: RouterMetrics,
    rng: Mutex<Prng>,
    inflight: AtomicUsize,
}

impl Router {
    /// Builds the shard handles (one breaker per replica) from a map.
    pub fn new(map: ShardMap, cfg: RouterConfig, obs: Arc<Observability>) -> Self {
        let shards = map
            .shards()
            .iter()
            .map(|s| ShardHandle {
                backends: s
                    .replicas
                    .iter()
                    .map(|addr| {
                        Arc::new(Backend::new(
                            addr.clone(),
                            cfg.breaker_threshold,
                            cfg.breaker_cooldown,
                        ))
                    })
                    .collect(),
            })
            .collect();
        let metrics = RouterMetrics::new(&obs);
        Router {
            map,
            shards,
            cfg,
            obs,
            metrics,
            rng: Mutex::new(Prng::seed_from_u64(cfg.seed)),
            inflight: AtomicUsize::new(0),
        }
    }

    /// The routing table.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The shard handles (tests inspect breaker states through these).
    pub fn shards(&self) -> &[ShardHandle] {
        &self.shards
    }

    /// The observability bundle the router records into.
    pub fn obs(&self) -> &Arc<Observability> {
        &self.obs
    }

    /// The instrument set.
    pub fn metrics(&self) -> &RouterMetrics {
        &self.metrics
    }

    /// Scatters currently in flight (drain waits on this).
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// Blocks until no scatter is in flight or `deadline` passes;
    /// returns whether the router is idle.
    pub fn wait_idle(&self, deadline: Instant) -> bool {
        while self.inflight() > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Closes every pooled backend connection (after a drain).
    pub fn close_backends(&self) {
        for shard in &self.shards {
            for b in &shard.backends {
                b.close();
            }
        }
        self.obs
            .flight
            .record("router.backends.closed", String::new());
    }

    /// Per-shard health: `(up, total)` where a shard is up iff any
    /// replica's breaker admits calls and a (cached) `HEALTH` probe says
    /// `ready=1`. Shards probe concurrently under a timeout capped at
    /// [`HEALTH_PROBE_TIMEOUT`] — serial `call_timeout`-bounded probes
    /// would make a `HEALTH` request block for seconds exactly when
    /// shards are down, flapping external health checkers.
    pub fn shards_up(&self) -> (usize, usize) {
        let now = Instant::now();
        let probe_timeout = self.cfg.call_timeout.min(HEALTH_PROBE_TIMEOUT);
        let up = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| {
                    s.spawn(move || {
                        shard.backends.iter().any(|b| {
                            b.breaker.would_allow_at(now)
                                && b.probe_ready(self.cfg.health_ttl, probe_timeout)
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or(false))
                .filter(|&shard_up| shard_up)
                .count()
        });
        (up, self.shards.len())
    }

    fn hedge_delay(&self) -> Option<Duration> {
        match self.cfg.hedge {
            Hedge::Off => None,
            Hedge::After(d) => Some(d),
            Hedge::Auto { floor, cap } => {
                // A misconfigured cap below the floor degrades to the
                // floor; `clamp` panics on min > max.
                let cap = cap.max(floor);
                let p99 = self
                    .metrics
                    .shard_latency
                    .snapshot()
                    .quantile(0.99)
                    .map(Duration::from_secs_f64)
                    .unwrap_or(cap);
                Some(p99.clamp(floor, cap))
            }
        }
    }

    /// Replica preference for this attempt: breaker admission first, then
    /// cached health, then spec order rotated by attempt number so
    /// retries land on a different replica.
    fn rank_replicas(&self, shard: usize, attempt: u32) -> Vec<Arc<Backend>> {
        let backends = &self.shards[shard].backends;
        let now = Instant::now();
        let n = backends.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.rotate_left(attempt as usize % n.max(1));
        order.sort_by_key(|&i| {
            let b = &backends[i];
            let breaker_score = u32::from(!b.breaker.would_allow_at(now));
            let health_score = match b.cached_ready(self.cfg.health_ttl) {
                Some(true) => 0u32,
                None => 1,
                Some(false) => 2,
            };
            (breaker_score, health_score)
        });
        order
            .into_iter()
            .map(|i| Arc::clone(&backends[i]))
            .collect()
    }

    fn spawn_call(
        &self,
        backend: Arc<Backend>,
        line: &str,
        deadline: Instant,
        rid: u64,
        tx: mpsc::Sender<Result<String, CallError>>,
    ) {
        let line = line.to_string();
        let breaker_open = Arc::clone(&self.metrics.breaker_open);
        let latency = Arc::clone(&self.metrics.shard_latency);
        let flight = Arc::clone(&self.obs.flight);
        std::thread::spawn(move || {
            let t0 = Instant::now();
            let res = backend.call(&line, deadline);
            match &res {
                Ok(_) => {
                    backend.breaker.on_success();
                    backend.note_health(true);
                    latency.record(t0.elapsed().as_secs_f64());
                }
                Err(e) if e.is_transport() => {
                    backend.note_health(false);
                    if backend.breaker.on_failure() {
                        breaker_open.inc();
                        flight.record_for(
                            rid,
                            "router.breaker.open",
                            format!("backend={}", backend.addr),
                        );
                    }
                }
                Err(e) => {
                    // Shed / not-ready: the backend is alive and talking,
                    // which is all the breaker guards — close it. This
                    // also releases a half-open probe slot; leaving
                    // `probing` set here would quarantine the replica
                    // forever (no later call could reach the backend to
                    // clear it).
                    backend.breaker.on_success();
                    if matches!(e, CallError::NotReady) {
                        backend.note_health(false);
                    }
                }
            }
            let _ = tx.send(res);
        });
    }

    /// One attempt: race the primary replica against an optional
    /// hedge/failover replica, first success wins.
    fn race(
        &self,
        primary: Arc<Backend>,
        alt: Option<Arc<Backend>>,
        line: &str,
        deadline: Instant,
        rid: u64,
        shard: usize,
    ) -> Result<String, (String, Option<Duration>)> {
        let (tx, rx) = mpsc::channel();
        self.spawn_call(Arc::clone(&primary), line, deadline, rid, tx.clone());
        let mut outstanding = 1u32;
        let mut alt = alt;
        let mut hedge_at = self.hedge_delay().map(|d| Instant::now() + d);
        let mut last: Option<CallError> = None;
        loop {
            let now = Instant::now();
            // Workers obey their own read/connect timeouts; the grace
            // keeps us from abandoning a result that is already queued.
            let hard_stop = deadline + Duration::from_millis(100);
            if now >= hard_stop {
                return Err(("attempt deadline exceeded".to_string(), None));
            }
            let wait = match hedge_at {
                Some(t) if alt.is_some() => t.saturating_duration_since(now).min(hard_stop - now),
                _ => hard_stop - now,
            };
            match rx.recv_timeout(wait) {
                Ok(Ok(resp)) => return Ok(resp),
                Ok(Err(e)) => {
                    outstanding -= 1;
                    let hint = e
                        .retry_hint()
                        .or_else(|| last.as_ref().and_then(|l| l.retry_hint()));
                    last = Some(e);
                    if outstanding == 0 {
                        // Primary failed fast: fail over within the
                        // attempt instead of burning a backoff sleep.
                        if let Some(backup) = alt.take() {
                            if backup.breaker.allow() {
                                self.metrics.failovers.inc();
                                self.obs.flight.record_for(
                                    rid,
                                    "router.failover",
                                    format!("shard={shard} backend={}", backup.addr),
                                );
                                self.spawn_call(backup, line, deadline, rid, tx.clone());
                                outstanding = 1;
                                hedge_at = None;
                                continue;
                            }
                        }
                        let e = last.take().expect("just set");
                        return Err((e.to_string(), hint));
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    let hedge_due = hedge_at.is_some_and(|t| Instant::now() >= t);
                    if hedge_due {
                        hedge_at = None;
                        if let Some(backup) = alt.take() {
                            if backup.breaker.allow() {
                                self.metrics.hedges.inc();
                                self.obs.flight.record_for(
                                    rid,
                                    "router.hedge",
                                    format!("shard={shard} backend={}", backup.addr),
                                );
                                self.spawn_call(backup, line, deadline, rid, tx.clone());
                                outstanding += 1;
                            }
                        }
                    } else {
                        return Err(("attempt deadline exceeded".to_string(), None));
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(("all call workers vanished".to_string(), None));
                }
            }
        }
    }

    /// One logical call to `shard`: replica ranking + within-attempt
    /// failover/hedging + budgeted retries with decorrelated jitter.
    /// Returns the backend's response line (`OK …` or an application
    /// `ERR …`) or the shard's terminal failure.
    pub fn call_shard(&self, shard: usize, line: &str, rid: u64) -> Result<String, ShardFailure> {
        let budget_deadline = Instant::now() + self.cfg.budget;
        let mut backoff = Backoff::new(self.cfg.retry);
        let mut last = "no replicas admitted the call".to_string();
        for attempt in 0..self.cfg.retry.max_attempts {
            let now = Instant::now();
            if now >= budget_deadline {
                last = format!("retry budget exhausted: {last}");
                break;
            }
            let attempt_deadline = (now + self.cfg.call_timeout).min(budget_deadline);
            let ranked = self.rank_replicas(shard, attempt);
            let primary = ranked.iter().find(|b| b.breaker.allow()).cloned();
            let Some(primary) = primary else {
                last = "all replica breakers open".to_string();
                self.pace(&mut backoff, None, budget_deadline, rid, shard, attempt);
                continue;
            };
            let alt = ranked
                .iter()
                .find(|b| !Arc::ptr_eq(b, &primary) && b.breaker.would_allow_at(now))
                .cloned();
            self.obs.flight.record_for(
                rid,
                "router.shard.call",
                format!("shard={shard} backend={} attempt={attempt}", primary.addr),
            );
            match self.race(primary, alt, line, attempt_deadline, rid, shard) {
                Ok(resp) => return Ok(resp),
                Err((detail, hint)) => {
                    last = detail;
                    self.pace(&mut backoff, hint, budget_deadline, rid, shard, attempt);
                }
            }
        }
        Err(ShardFailure {
            shard,
            detail: last,
        })
    }

    fn pace(
        &self,
        backoff: &mut Backoff,
        hint: Option<Duration>,
        budget_deadline: Instant,
        rid: u64,
        shard: usize,
        attempt: u32,
    ) {
        if attempt + 1 >= self.cfg.retry.max_attempts {
            return; // no further attempt to pace
        }
        self.metrics.retries.inc();
        let delay = {
            let mut rng = self.rng.lock().unwrap_or_else(PoisonError::into_inner);
            backoff.next_delay(&mut rng, hint)
        };
        self.obs.flight.record_for(
            rid,
            "router.retry",
            format!(
                "shard={shard} attempt={} delay_ms={}",
                attempt + 1,
                delay.as_millis()
            ),
        );
        let delay = delay.min(budget_deadline.saturating_duration_since(Instant::now()));
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }

    /// Scatters one pre-rendered request line per shard group, in
    /// parallel, containing per-shard panics (the
    /// [`poe_chaos::sites::ROUTER_SCATTER_PANIC`] site) as shard
    /// failures. Returns one outcome per group, same order.
    pub fn scatter(
        &self,
        groups: &[(usize, Vec<usize>)],
        lines: &[String],
        rid: u64,
    ) -> Vec<Result<String, ShardFailure>> {
        assert_eq!(groups.len(), lines.len());
        self.inflight.fetch_add(1, Ordering::AcqRel);
        let _guard = InflightGuard(&self.inflight);
        self.obs.flight.record_for(
            rid,
            "router.scatter",
            format!(
                "shards={} tasks={}",
                groups.len(),
                groups.iter().map(|(_, t)| t.len()).sum::<usize>()
            ),
        );
        std::thread::scope(|s| {
            let handles: Vec<_> = groups
                .iter()
                .zip(lines)
                .map(|((shard, _), line)| {
                    let shard = *shard;
                    s.spawn(move || {
                        let res = catch_unwind(AssertUnwindSafe(|| {
                            poe_chaos::maybe_panic(poe_chaos::sites::ROUTER_SCATTER_PANIC);
                            self.call_shard(shard, line, rid)
                        }));
                        res.unwrap_or_else(|_| {
                            self.obs.flight.record_for(
                                rid,
                                "router.scatter.panic",
                                format!("shard={shard}"),
                            );
                            Err(ShardFailure {
                                shard,
                                detail: "scatter worker panicked".to_string(),
                            })
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scatter worker joined"))
                .collect()
        })
    }

    /// Gathered `QUERY`: strict — every shard must answer. Columns are
    /// re-ordered to request task order, so the response matches a
    /// single unsharded server column-for-column.
    pub fn query(&self, tasks: &[usize], rid: u64) -> Result<GatheredQuery, GatherError> {
        let groups = self.map.split(tasks).map_err(GatherError::NoShardForTask)?;
        let lines: Vec<String> = groups
            .iter()
            .map(|(_, g)| format!("@{rid} QUERY {}", join(g)))
            .collect();
        let outcomes = self.scatter(&groups, &lines, rid);
        let mut parts = Vec::new();
        for ((shard, group), outcome) in groups.iter().zip(outcomes) {
            let line = outcome.map_err(GatherError::ShardUnavailable)?;
            if line.starts_with("ERR ") {
                return Err(GatherError::Forwarded(line));
            }
            let part = ShardQueryPart::parse(&line).ok_or(GatherError::Protocol {
                shard: *shard,
                line,
            })?;
            parts.push((group.clone(), part));
        }
        let mut merged = GatheredQuery {
            outputs: 0,
            params: 0,
            assembly_ms: 0.0,
            cached: true,
            classes: Vec::new(),
            tasks: Vec::new(),
        };
        for (_, p) in &parts {
            merged.outputs += p.outputs;
            merged.params += p.params;
            merged.assembly_ms = merged.assembly_ms.max(p.assembly_ms);
            merged.cached &= p.cached;
        }
        for &task in tasks {
            for (_, p) in &parts {
                for (i, &t) in p.tasks.iter().enumerate() {
                    if t == task {
                        merged.classes.push(p.classes[i]);
                        merged.tasks.push(t);
                    }
                }
            }
        }
        Ok(merged)
    }

    /// Gathered `PREDICT` via per-shard `LOGITS`: concat the surviving
    /// slices in request order, one softmax at the edge. Degrades to a
    /// partial answer when some (but not all) shards are down.
    pub fn predict(
        &self,
        tasks: &[usize],
        features_raw: &str,
        rid: u64,
    ) -> Result<GatheredPredict, GatherError> {
        let groups = self.map.split(tasks).map_err(GatherError::NoShardForTask)?;
        let shards_total = groups.len();
        let lines: Vec<String> = groups
            .iter()
            .map(|(_, g)| format!("@{rid} LOGITS {} : {features_raw}", join(g)))
            .collect();
        let outcomes = self.scatter(&groups, &lines, rid);
        let mut parts: Vec<(Vec<usize>, GatheredLogits)> = Vec::new();
        let mut failures: Vec<(Vec<usize>, ShardFailure)> = Vec::new();
        for ((shard, group), outcome) in groups.iter().zip(outcomes) {
            match outcome {
                Ok(line) if line.starts_with("ERR ") => {
                    // An application error (bad feature count, unknown
                    // task) holds for the whole request, not one shard.
                    return Err(GatherError::Forwarded(line));
                }
                Ok(line) => {
                    let part = GatheredLogits::parse(&line).ok_or(GatherError::Protocol {
                        shard: *shard,
                        line,
                    })?;
                    parts.push((group.clone(), part));
                }
                Err(f) => failures.push((group.clone(), f)),
            }
        }
        if parts.is_empty() {
            let (_, first) = failures.into_iter().next().expect("no shards at all");
            return Err(GatherError::ShardUnavailable(first));
        }
        // Concat surviving slices in request task order.
        let mut logits = Vec::new();
        let mut classes = Vec::new();
        let mut cols_task = Vec::new();
        for &task in tasks {
            for (_, p) in &parts {
                for (i, &t) in p.tasks.iter().enumerate() {
                    if t == task {
                        logits.push(p.logits[i]);
                        classes.push(p.classes[i]);
                        cols_task.push(t);
                    }
                }
            }
        }
        let missing: Vec<usize> = tasks
            .iter()
            .copied()
            .filter(|t| failures.iter().any(|(g, _)| g.contains(t)))
            .collect();
        let (best, confidence) = softmax_argmax(&logits).ok_or_else(|| GatherError::Protocol {
            shard: groups[0].0,
            line: "empty logit slice".to_string(),
        })?;
        if !missing.is_empty() {
            self.metrics.partial_responses.inc();
            self.obs.flight.record_for(
                rid,
                "router.partial",
                format!(
                    "shards_ok={} shards_total={shards_total} missing={}",
                    parts.len(),
                    join(&missing)
                ),
            );
        }
        Ok(GatheredPredict {
            class: classes[best],
            task: cols_task[best],
            confidence,
            shards_ok: parts.len(),
            shards_total,
            missing,
        })
    }

    /// Gathered `LOGITS`: strict full concat in request task order.
    pub fn logits(
        &self,
        tasks: &[usize],
        features_raw: &str,
        rid: u64,
    ) -> Result<GatheredLogits, GatherError> {
        let groups = self.map.split(tasks).map_err(GatherError::NoShardForTask)?;
        let lines: Vec<String> = groups
            .iter()
            .map(|(_, g)| format!("@{rid} LOGITS {} : {features_raw}", join(g)))
            .collect();
        let outcomes = self.scatter(&groups, &lines, rid);
        let mut parts = Vec::new();
        for ((shard, _), outcome) in groups.iter().zip(outcomes) {
            let line = outcome.map_err(GatherError::ShardUnavailable)?;
            if line.starts_with("ERR ") {
                return Err(GatherError::Forwarded(line));
            }
            let part = GatheredLogits::parse(&line).ok_or(GatherError::Protocol {
                shard: *shard,
                line,
            })?;
            parts.push(part);
        }
        let mut merged = GatheredLogits {
            logits: Vec::new(),
            classes: Vec::new(),
            tasks: Vec::new(),
        };
        for &task in tasks {
            for p in &parts {
                for (i, &t) in p.tasks.iter().enumerate() {
                    if t == task {
                        merged.logits.push(p.logits[i]);
                        merged.classes.push(p.classes[i]);
                        merged.tasks.push(t);
                    }
                }
            }
        }
        Ok(merged)
    }

    /// Gathered `INFO`: every shard loads the same hierarchy, so `tasks`
    /// and `classes` merge by max; `experts` is the sum of per-shard
    /// resident expert counts.
    pub fn info(&self, rid: u64) -> Result<(usize, usize, usize), GatherError> {
        let groups: Vec<(usize, Vec<usize>)> =
            (0..self.shards.len()).map(|s| (s, Vec::new())).collect();
        let lines: Vec<String> = groups.iter().map(|_| format!("@{rid} INFO")).collect();
        let outcomes = self.scatter(&groups, &lines, rid);
        let (mut tasks, mut experts, mut classes) = (0usize, 0usize, 0usize);
        for ((shard, _), outcome) in groups.iter().zip(outcomes) {
            let line = outcome.map_err(GatherError::ShardUnavailable)?;
            if line.starts_with("ERR ") {
                return Err(GatherError::Forwarded(line));
            }
            let (t, e, c) = (
                field_parse::<usize>(&line, "tasks="),
                field_parse::<usize>(&line, "experts="),
                field_parse::<usize>(&line, "classes="),
            );
            match (t, e, c) {
                (Some(t), Some(e), Some(c)) => {
                    tasks = tasks.max(t);
                    experts += e;
                    classes = classes.max(c);
                }
                _ => {
                    return Err(GatherError::Protocol {
                        shard: *shard,
                        line,
                    })
                }
            }
        }
        Ok((tasks, experts, classes))
    }
}

struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Softmax + argmax over one logit slice; `None` on empty input.
pub fn softmax_argmax(logits: &[f32]) -> Option<(usize, f32)> {
    if logits.is_empty() {
        return None;
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let denom: f32 = logits.iter().map(|&l| (l - max).exp()).sum();
    let best = logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)?;
    Some((best, (logits[best] - max).exp() / denom))
}

/// One shard's parsed `QUERY` response.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardQueryPart {
    /// Shard output width.
    pub outputs: usize,
    /// Shard parameter count.
    pub params: u64,
    /// Shard assembly time.
    pub assembly_ms: f64,
    /// Whether the shard served from cache.
    pub cached: bool,
    /// Class label per column.
    pub classes: Vec<usize>,
    /// Owning task per column.
    pub tasks: Vec<usize>,
}

impl ShardQueryPart {
    /// Parses `OK outputs=… params=… assembly_ms=… cached=… classes=… tasks=…`.
    pub fn parse(line: &str) -> Option<ShardQueryPart> {
        Some(ShardQueryPart {
            outputs: field_parse(line, "outputs=")?,
            params: field_parse(line, "params=")?,
            assembly_ms: field_parse(line, "assembly_ms=")?,
            cached: matches!(field_str(line, "cached=")?, "1" | "true"),
            classes: field_list(line, "classes=")?,
            tasks: field_list(line, "tasks=")?,
        })
    }
}

impl GatheredLogits {
    /// Parses `OK logits=… classes=… tasks=…` (comma-separated lists of
    /// equal length).
    pub fn parse(line: &str) -> Option<GatheredLogits> {
        let logits: Vec<f32> = field_str(line, "logits=")?
            .split(',')
            .map(|v| v.parse().ok())
            .collect::<Option<_>>()?;
        let classes = field_list(line, "classes=")?;
        let tasks = field_list(line, "tasks=")?;
        if logits.len() != classes.len() || classes.len() != tasks.len() {
            return None;
        }
        Some(GatheredLogits {
            logits,
            classes,
            tasks,
        })
    }
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key))
}

fn field_parse<T: std::str::FromStr>(line: &str, key: &str) -> Option<T> {
    field_str(line, key)?.parse().ok()
}

fn field_list(line: &str, key: &str) -> Option<Vec<usize>> {
    field_str(line, key)?
        .split(',')
        .map(|v| v.parse().ok())
        .collect()
}

/// Joins ids with commas (the wire list format).
pub fn join(ids: &[usize]) -> String {
    ids.iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_shard_query_and_logits_lines() {
        let q = ShardQueryPart::parse(
            "OK outputs=4 params=120 assembly_ms=0.250 cached=0 classes=0,1,4,5 tasks=0,0,2,2",
        )
        .unwrap();
        assert_eq!(q.outputs, 4);
        assert_eq!(q.params, 120);
        assert!(!q.cached);
        assert_eq!(q.classes, vec![0, 1, 4, 5]);
        assert_eq!(q.tasks, vec![0, 0, 2, 2]);

        let l = GatheredLogits::parse("OK logits=0.5,-1.25 classes=2,3 tasks=1,1").unwrap();
        assert_eq!(l.logits, vec![0.5, -1.25]);
        assert!(GatheredLogits::parse("OK logits=1,2 classes=1 tasks=1,1").is_none());
        assert!(ShardQueryPart::parse("ERR busy retry_after_ms=100").is_none());
    }

    #[test]
    fn softmax_argmax_picks_the_largest_and_normalizes() {
        let (i, p) = softmax_argmax(&[1.0, 3.0, 2.0]).unwrap();
        assert_eq!(i, 1);
        assert!(p > 0.5 && p < 1.0, "{p}");
        assert_eq!(softmax_argmax(&[]), None);
        // Shift invariance: softmax(x) == softmax(x + c).
        let (_, p2) = softmax_argmax(&[101.0, 103.0, 102.0]).unwrap();
        assert!((p - p2).abs() < 1e-6);
    }

    #[test]
    fn hedge_delay_derives_from_p99_and_clamps() {
        let map = ShardMap::parse("0-9=127.0.0.1:1").unwrap();
        let cfg = RouterConfig {
            hedge: Hedge::Auto {
                floor: Duration::from_millis(5),
                cap: Duration::from_millis(50),
            },
            ..RouterConfig::default()
        };
        let r = Router::new(map, cfg, Observability::new());
        // Cold start: no samples → cap.
        assert_eq!(r.hedge_delay(), Some(Duration::from_millis(50)));
        // Feed latencies well under the floor → clamped up to the floor.
        for _ in 0..100 {
            r.metrics.shard_latency.record(0.0001);
        }
        assert_eq!(r.hedge_delay(), Some(Duration::from_millis(5)));
    }

    #[test]
    fn hedge_auto_with_cap_below_floor_degrades_to_floor() {
        // `--hedge-ms auto` with a tiny call timeout used to build
        // cap < floor and panic inside Duration::clamp.
        let map = ShardMap::parse("0-9=127.0.0.1:1").unwrap();
        let cfg = RouterConfig {
            hedge: Hedge::Auto {
                floor: Duration::from_millis(5),
                cap: Duration::from_millis(1),
            },
            ..RouterConfig::default()
        };
        let r = Router::new(map, cfg, Observability::new());
        assert_eq!(r.hedge_delay(), Some(Duration::from_millis(5)));
        r.metrics.shard_latency.record(10.0);
        assert_eq!(r.hedge_delay(), Some(Duration::from_millis(5)));
    }

    #[test]
    fn half_open_probe_on_pushback_releases_the_slot() {
        // A backend that answers the half-open probe with application
        // pushback (`ERR not ready`) is alive: the probe slot must be
        // released (breaker closed), not left consumed forever —
        // otherwise the replica is quarantined until router restart.
        use std::io::{BufRead, BufReader, Write};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut line = String::new();
                while reader.read_line(&mut line).is_ok_and(|n| n > 0) {
                    let mut s = &stream;
                    let _ = s.write_all(b"ERR not ready: pool load failed\n");
                    line.clear();
                }
            }
        });
        let map = ShardMap::parse(&format!("0-9={addr}")).unwrap();
        let cfg = RouterConfig {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(10),
            retry: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
            ..RouterConfig::default()
        };
        let r = Router::new(map, cfg, Observability::new());
        let b = &r.shards()[0].backends[0];
        b.breaker.on_failure(); // threshold 1: open
        assert_eq!(b.breaker.state(), crate::breaker::BreakerState::Open);
        std::thread::sleep(Duration::from_millis(20)); // cooldown elapses
        let err = r.call_shard(0, "INFO", 0).unwrap_err();
        assert!(err.detail.contains("not ready"), "{}", err.detail);
        // The probe consumed the half-open slot and got pushback; the
        // breaker must be closed again and admit the next call.
        assert_eq!(b.breaker.state(), crate::breaker::BreakerState::Closed);
        assert!(b.breaker.allow(), "replica must not be quarantined");
        // Not-ready pushback also lands in the health cache so ranking
        // deprioritizes the replica without quarantining it.
        assert_eq!(b.cached_ready(Duration::from_secs(5)), Some(false));
    }

    #[test]
    fn breaker_gate_fails_fast_without_backends() {
        // One shard whose only replica's breaker we trip by hand: the
        // logical call must fail fast (no connect attempts, no budget
        // burn beyond backoff pacing).
        let map = ShardMap::parse("0-9=127.0.0.1:9").unwrap();
        let cfg = RouterConfig {
            breaker_threshold: 1,
            retry: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
            ..RouterConfig::default()
        };
        let r = Router::new(map, cfg, Observability::new());
        r.shards()[0].backends[0].breaker.on_failure();
        let t0 = Instant::now();
        let err = r.call_shard(0, "INFO", 0).unwrap_err();
        assert!(err.detail.contains("breakers open"), "{}", err.detail);
        assert!(t0.elapsed() < Duration::from_millis(500));
    }
}
