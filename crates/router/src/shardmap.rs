//! Static shard map: inclusive task-id ranges → replica address lists.
//!
//! The map is the router's only piece of cluster topology. It is parsed
//! once at startup from a spec string (`--shards` on the CLI) and never
//! changes at runtime — rebalancing is a restart, which keeps the data
//! plane free of coordination. Spec grammar:
//!
//! ```text
//! spec  := shard (';' shard)*
//! shard := range '=' addr ('|' addr)*
//! range := lo '-' hi | task            # inclusive; single task allowed
//! ```
//!
//! e.g. `0-9=10.0.0.1:7070|10.0.0.2:7070;10-19=10.0.0.3:7070` maps tasks
//! 0..=9 to a two-replica shard and 10..=19 to a single backend.

/// One shard: a contiguous inclusive task range plus its replica set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// First task id owned by this shard (inclusive).
    pub lo: usize,
    /// Last task id owned by this shard (inclusive).
    pub hi: usize,
    /// Backend addresses (`host:port`) serving identical copies of the
    /// shard's expert subset. Order is the preference order at equal
    /// health/breaker score.
    pub replicas: Vec<String>,
}

/// The full routing table. Immutable after [`ShardMap::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shards: Vec<Shard>,
}

impl ShardMap {
    /// Parses a spec string (see module docs for the grammar). Rejects
    /// empty maps, empty replica sets, inverted ranges, and overlapping
    /// ranges — a task must have exactly one home shard.
    pub fn parse(spec: &str) -> Result<ShardMap, String> {
        let mut shards = Vec::new();
        for part in spec.split(';').filter(|p| !p.trim().is_empty()) {
            let (range, addrs) = part
                .split_once('=')
                .ok_or_else(|| format!("shard `{part}` is missing `=addr`"))?;
            let range = range.trim();
            let (lo, hi) = match range.split_once('-') {
                Some((a, b)) => (
                    a.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("bad range start in shard `{part}`"))?,
                    b.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("bad range end in shard `{part}`"))?,
                ),
                None => {
                    let t = range
                        .parse::<usize>()
                        .map_err(|_| format!("bad task id in shard `{part}`"))?;
                    (t, t)
                }
            };
            if hi < lo {
                return Err(format!("inverted range {lo}-{hi} in shard `{part}`"));
            }
            let replicas: Vec<String> = addrs
                .split('|')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            if replicas.is_empty() {
                return Err(format!("shard `{part}` has no replica addresses"));
            }
            shards.push(Shard { lo, hi, replicas });
        }
        if shards.is_empty() {
            return Err("shard map is empty".to_string());
        }
        for i in 0..shards.len() {
            for j in (i + 1)..shards.len() {
                let (a, b) = (&shards[i], &shards[j]);
                if a.lo <= b.hi && b.lo <= a.hi {
                    return Err(format!(
                        "shard ranges {}-{} and {}-{} overlap",
                        a.lo, a.hi, b.lo, b.hi
                    ));
                }
            }
        }
        Ok(ShardMap { shards })
    }

    /// Number of shards in the map.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard table, in spec order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Which shard owns `task`, or `None` if no range covers it.
    pub fn shard_of(&self, task: usize) -> Option<usize> {
        self.shards
            .iter()
            .position(|s| s.lo <= task && task <= s.hi)
    }

    /// Splits a request's task list into per-shard groups, shard index
    /// ascending, preserving request order *within* each group. Errors
    /// with the first task no shard owns — the router turns that into a
    /// typed client error rather than a silent drop.
    pub fn split(&self, tasks: &[usize]) -> Result<Vec<(usize, Vec<usize>)>, usize> {
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for &task in tasks {
            let shard = self.shard_of(task).ok_or(task)?;
            match groups.iter_mut().find(|(s, _)| *s == shard) {
                Some((_, g)) => g.push(task),
                None => groups.push((shard, vec![task])),
            }
        }
        groups.sort_by_key(|(s, _)| *s);
        Ok(groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ranges_singletons_and_replicas() {
        let m = ShardMap::parse("0-2=a:1|b:1; 3=c:1 ;4-9=d:1").unwrap();
        assert_eq!(m.num_shards(), 3);
        assert_eq!(m.shards()[0].replicas, vec!["a:1", "b:1"]);
        assert_eq!((m.shards()[1].lo, m.shards()[1].hi), (3, 3));
        assert_eq!(m.shard_of(0), Some(0));
        assert_eq!(m.shard_of(3), Some(1));
        assert_eq!(m.shard_of(9), Some(2));
        assert_eq!(m.shard_of(10), None);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(ShardMap::parse("").is_err());
        assert!(ShardMap::parse("0-2").is_err());
        assert!(ShardMap::parse("2-0=a:1").is_err());
        assert!(ShardMap::parse("x-2=a:1").is_err());
        assert!(ShardMap::parse("0-2=").is_err());
        assert!(ShardMap::parse("0-5=a:1;3-9=b:1").is_err(), "overlap");
        assert!(ShardMap::parse("0-2=a:1;2=b:1").is_err(), "overlap point");
    }

    #[test]
    fn split_groups_by_shard_preserving_request_order() {
        let m = ShardMap::parse("0-4=a:1;5-9=b:1").unwrap();
        let groups = m.split(&[7, 1, 0, 9]).unwrap();
        assert_eq!(groups, vec![(0, vec![1, 0]), (1, vec![7, 9])]);
        assert_eq!(m.split(&[1, 42]).unwrap_err(), 42);
    }
}
