//! One backend replica: a pooled line-protocol connection, a circuit
//! breaker, and a cached health verdict.
//!
//! The protocol is strictly one request line → one response line, so a
//! connection that has fully read its response is clean and can be
//! returned to the (single-slot) pool. Chaos sites cover the two places
//! the network bites: connection establishment ([`ROUTER_CONNECT_IO`],
//! [`ROUTER_SHARD_PARTITION`]) and the response read ([`ROUTER_READ_STALL`]).
//!
//! [`ROUTER_CONNECT_IO`]: poe_chaos::sites::ROUTER_CONNECT_IO
//! [`ROUTER_SHARD_PARTITION`]: poe_chaos::sites::ROUTER_SHARD_PARTITION
//! [`ROUTER_READ_STALL`]: poe_chaos::sites::ROUTER_READ_STALL

use crate::breaker::CircuitBreaker;
use poe_net::{send_line, LineReader, ReadOutcome};
use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Hard cap on one backend response line. This is a memory bound against
/// a babbling backend, not a protocol limit — responses (logit vectors)
/// are much larger than the 8 KiB request cap, so give them headroom.
const MAX_RESPONSE_BYTES: usize = 1 << 20;

/// Why one request/response exchange against a backend failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallError {
    /// Could not establish (or re-establish) the TCP connection.
    Connect(String),
    /// The connection died mid-exchange.
    Io(String),
    /// The deadline expired before a response line arrived.
    Timeout,
    /// The backend shed us (`ERR busy` / `ERR shutting down`); carries
    /// the server's requested re-knock floor.
    Busy {
        /// Parsed `retry_after_ms` hint, if the server sent one.
        retry_after: Option<Duration>,
    },
    /// The backend answered `ERR not ready` — alive but degraded; try a
    /// replica.
    NotReady,
}

impl CallError {
    /// Whether this failure should count against the circuit breaker.
    /// Application-level pushback (busy / not ready) must not — the
    /// backend is alive, and tripping on shed amplifies overload.
    pub fn is_transport(&self) -> bool {
        matches!(
            self,
            CallError::Connect(_) | CallError::Io(_) | CallError::Timeout
        )
    }

    /// The server's retry floor, if it sent one.
    pub fn retry_hint(&self) -> Option<Duration> {
        match self {
            CallError::Busy { retry_after } => *retry_after,
            _ => None,
        }
    }
}

impl fmt::Display for CallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallError::Connect(e) => write!(f, "connect: {e}"),
            CallError::Io(e) => write!(f, "i/o: {e}"),
            CallError::Timeout => write!(f, "deadline exceeded"),
            CallError::Busy { .. } => write!(f, "backend busy"),
            CallError::NotReady => write!(f, "backend not ready"),
        }
    }
}

#[derive(Debug, Default)]
struct HealthCache {
    checked: Option<Instant>,
    ready: bool,
}

/// See module docs.
#[derive(Debug)]
pub struct Backend {
    /// `host:port` of the `poe serve` replica.
    pub addr: String,
    /// Transport-failure circuit breaker for this replica.
    pub breaker: CircuitBreaker,
    conn: Mutex<Option<LineReader<TcpStream>>>,
    health: Mutex<HealthCache>,
}

impl Backend {
    /// A backend with a fresh (closed-state) breaker.
    pub fn new(
        addr: impl Into<String>,
        breaker_threshold: u32,
        breaker_cooldown: Duration,
    ) -> Self {
        Backend {
            addr: addr.into(),
            breaker: CircuitBreaker::new(breaker_threshold, breaker_cooldown),
            conn: Mutex::new(None),
            health: Mutex::new(HealthCache::default()),
        }
    }

    fn lock_conn(&self) -> MutexGuard<'_, Option<LineReader<TcpStream>>> {
        self.conn.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_health(&self) -> MutexGuard<'_, HealthCache> {
        self.health.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn connect(&self, deadline: Instant) -> Result<LineReader<TcpStream>, CallError> {
        if let Some(e) = poe_chaos::fail_io(poe_chaos::sites::ROUTER_CONNECT_IO) {
            return Err(CallError::Connect(e.to_string()));
        }
        if let Some(e) = poe_chaos::fail_io(poe_chaos::sites::ROUTER_SHARD_PARTITION) {
            return Err(CallError::Connect(format!("partitioned: {e}")));
        }
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or(CallError::Timeout)?;
        let sockaddr = self
            .addr
            .to_socket_addrs()
            .map_err(|e| CallError::Connect(e.to_string()))?
            .next()
            .ok_or_else(|| CallError::Connect(format!("{} resolves to nothing", self.addr)))?;
        let stream = TcpStream::connect_timeout(&sockaddr, remaining)
            .map_err(|e| CallError::Connect(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        Ok(LineReader::new(stream, MAX_RESPONSE_BYTES))
    }

    /// Whether a pooled connection is unsafe to reuse. The protocol is
    /// strictly request→response, so a clean pooled connection has
    /// nothing readable between exchanges. Anything already buffered or
    /// waiting in the socket is an unsolicited line — typically the
    /// shard's `ERR idle timeout` refusal before close — and reusing the
    /// connection would return that stale line as the answer to the next
    /// request. `peek` also catches a plain EOF (`Ok(0)`) early, saving
    /// the write-then-retry dance on a half-closed socket.
    fn is_stale(conn: &LineReader<TcpStream>) -> bool {
        if conn.pending() > 0 {
            return true;
        }
        let stream = conn.get_ref();
        if stream.set_nonblocking(true).is_err() {
            return true;
        }
        let mut byte = [0u8; 1];
        let stale = match stream.peek(&mut byte) {
            Ok(_) => true, // buffered unsolicited line, or EOF
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
            Err(_) => true,
        };
        if stream.set_nonblocking(false).is_err() {
            return true;
        }
        stale
    }

    /// One request line → one response line, bounded by `deadline`.
    /// Reuses the pooled connection when present; a stale pooled
    /// connection (closed by the shard's idle timeout) is detected and
    /// retried once on a fresh one. Shed responses (`ERR busy`,
    /// `ERR shutting down`) and `ERR not ready` come back as typed
    /// errors; every other line — `OK …` or an application `ERR` — is
    /// returned verbatim for the caller to interpret.
    pub fn call(&self, line: &str, deadline: Instant) -> Result<String, CallError> {
        let pooled = self.lock_conn().take().filter(|c| !Self::is_stale(c));
        let was_pooled = pooled.is_some();
        let conn = match pooled {
            Some(c) => c,
            None => self.connect(deadline)?,
        };
        match self.exchange(conn, line, deadline) {
            Ok(resp) => self.classify(resp),
            // A dead pooled connection is expected churn (idle timeout,
            // max-requests limit); one fresh retry is part of the same
            // attempt, not a new one.
            Err(CallError::Io(_)) if was_pooled => {
                let fresh = self.connect(deadline)?;
                let resp = self.exchange(fresh, line, deadline)?;
                self.classify(resp)
            }
            Err(e) => Err(e),
        }
    }

    fn exchange(
        &self,
        mut conn: LineReader<TcpStream>,
        line: &str,
        deadline: Instant,
    ) -> Result<String, CallError> {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or(CallError::Timeout)?;
        let _ = conn.get_ref().set_write_timeout(Some(remaining));
        send_line(conn.get_mut(), line).map_err(|e| CallError::Io(e.to_string()))?;
        poe_chaos::stall(poe_chaos::sites::ROUTER_READ_STALL);
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or(CallError::Timeout)?;
        let _ = conn.get_ref().set_read_timeout(Some(remaining));
        match conn.read_line() {
            ReadOutcome::Line(resp) => {
                // Exchange complete: the connection is clean, pool it.
                *self.lock_conn() = Some(conn);
                Ok(resp)
            }
            ReadOutcome::TooLong => Err(CallError::Io(format!(
                "response line exceeded {MAX_RESPONSE_BYTES} bytes"
            ))),
            ReadOutcome::TimedOut => Err(CallError::Timeout),
            ReadOutcome::Closed => Err(CallError::Io("connection closed by backend".to_string())),
        }
    }

    fn classify(&self, resp: String) -> Result<String, CallError> {
        if resp.starts_with("ERR busy") || resp.starts_with("ERR shutting down") {
            return Err(CallError::Busy {
                retry_after: parse_retry_after(&resp),
            });
        }
        if resp.starts_with("ERR not ready") {
            return Err(CallError::NotReady);
        }
        Ok(resp)
    }

    /// Cached health verdict, or `None` if never probed / stale past
    /// `ttl`. Ranking uses only this cache — it must never block on the
    /// network.
    pub fn cached_ready(&self, ttl: Duration) -> Option<bool> {
        let g = self.lock_health();
        match g.checked {
            Some(t) if t.elapsed() <= ttl => Some(g.ready),
            _ => None,
        }
    }

    /// Records an observed health verdict (piggybacked off call results
    /// or an explicit probe).
    pub fn note_health(&self, ready: bool) {
        let mut g = self.lock_health();
        g.checked = Some(Instant::now());
        g.ready = ready;
    }

    /// Cache-respecting `HEALTH` probe: returns the cached verdict when
    /// fresh, otherwise asks the backend (bounded by `probe_timeout`) and
    /// caches the answer.
    pub fn probe_ready(&self, ttl: Duration, probe_timeout: Duration) -> bool {
        if let Some(ready) = self.cached_ready(ttl) {
            return ready;
        }
        let ready = match self.call("HEALTH", Instant::now() + probe_timeout) {
            Ok(resp) => resp.starts_with("OK live=1 ready=1"),
            Err(_) => false,
        };
        self.note_health(ready);
        ready
    }

    /// Drops the pooled connection, shutting it down. Called when the
    /// router drains.
    pub fn close(&self) {
        if let Some(conn) = self.lock_conn().take() {
            let _ = conn.get_ref().shutdown(std::net::Shutdown::Both);
        }
    }
}

fn parse_retry_after(resp: &str) -> Option<Duration> {
    let ms: u64 = resp
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("retry_after_ms="))?
        .parse()
        .ok()?;
    Some(Duration::from_millis(ms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, Write};
    use std::net::TcpListener;

    fn oneshot_server(responses: Vec<&'static str>) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for resp in responses {
                let (stream, _) = listener.accept().unwrap();
                let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
                let mut line = String::new();
                while reader.read_line(&mut line).is_ok_and(|n| n > 0) {
                    let mut s = &stream;
                    s.write_all(format!("{resp}\n").as_bytes()).unwrap();
                    line.clear();
                }
            }
        });
        addr
    }

    fn deadline() -> Instant {
        Instant::now() + Duration::from_secs(2)
    }

    #[test]
    fn call_round_trips_and_pools_the_connection() {
        let addr = oneshot_server(vec!["OK tasks=1 experts=1 classes=2"]);
        let b = Backend::new(addr, 3, Duration::from_millis(100));
        let r1 = b.call("INFO", deadline()).unwrap();
        assert_eq!(r1, "OK tasks=1 experts=1 classes=2");
        // Second call rides the pooled connection (the listener accepts
        // exactly one connection per response batch above).
        let r2 = b.call("INFO", deadline()).unwrap();
        assert_eq!(r2, r1);
    }

    #[test]
    fn busy_and_not_ready_are_typed_with_hint() {
        let addr = oneshot_server(vec!["ERR busy retry_after_ms=120"]);
        let b = Backend::new(addr, 3, Duration::from_millis(100));
        let err = b.call("INFO", deadline()).unwrap_err();
        assert_eq!(err.retry_hint(), Some(Duration::from_millis(120)));
        assert!(!err.is_transport(), "shed must not trip the breaker");

        let addr2 = oneshot_server(vec!["ERR not ready: pool load failed"]);
        let b2 = Backend::new(addr2, 3, Duration::from_millis(100));
        assert_eq!(
            b2.call("INFO", deadline()).unwrap_err(),
            CallError::NotReady
        );
    }

    #[test]
    fn connect_refused_is_a_transport_error() {
        // Bind then drop: the port is (very likely) unbound afterwards.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let b = Backend::new(addr, 3, Duration::from_millis(100));
        let err = b.call("INFO", deadline()).unwrap_err();
        assert!(err.is_transport(), "{err}");
    }

    #[test]
    fn stale_pooled_connection_is_dropped_not_replayed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            // First connection: answer one request, then emulate the
            // shard's idle timeout — an unsolicited refusal line
            // followed by close. Without staleness detection the pooled
            // connection replays that line as the next call's response.
            let (stream, _) = listener.accept().unwrap();
            let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let mut s = &stream;
            s.write_all(b"OK first\n").unwrap();
            s.write_all(b"ERR idle timeout\n").unwrap();
            drop(stream);
            // Second connection: the fresh replacement answers for real.
            let (stream, _) = listener.accept().unwrap();
            let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            (&stream).write_all(b"OK second\n").unwrap();
        });
        let b = Backend::new(addr, 3, Duration::from_millis(100));
        assert_eq!(b.call("INFO", deadline()).unwrap(), "OK first");
        // Let the refusal land in the pooled socket's receive buffer
        // before the next call inspects the connection.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(b.call("INFO", deadline()).unwrap(), "OK second");
    }

    #[test]
    fn health_cache_honours_ttl() {
        let addr = oneshot_server(vec!["OK live=1 ready=1 pool=ok"]);
        let b = Backend::new(addr, 3, Duration::from_millis(100));
        assert_eq!(b.cached_ready(Duration::from_secs(1)), None);
        assert!(b.probe_ready(Duration::from_secs(1), Duration::from_secs(1)));
        assert_eq!(b.cached_ready(Duration::from_secs(60)), Some(true));
        assert_eq!(b.cached_ready(Duration::ZERO), None, "stale past ttl");
    }
}
