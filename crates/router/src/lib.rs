//! # poe-router
//!
//! The sharded scatter/gather tier for Pool of Experts serving. A
//! router owns a static [`ShardMap`] (task-id ranges → replicated
//! `poe serve` backends), speaks the same line protocol as a single
//! server, and answers composite queries by scattering per-shard
//! sub-requests and concatenating the logit slices at the edge — the
//! paper's merge operator distributes for free.
//!
//! Robustness is the point of this crate, not an afterthought:
//!
//! * every remote call has a **deadline** ([`RouterConfig::call_timeout`])
//!   inside a per-shard **budget** ([`RouterConfig::budget`]);
//! * failures retry with **exponential backoff + decorrelated jitter**
//!   ([`Backoff`]), honoring `retry_after_ms` hints from shed responses;
//! * each replica sits behind a **circuit breaker** ([`CircuitBreaker`]:
//!   closed → open on consecutive transport failures → half-open probe);
//! * replica choice ranks by breaker admission and **cached `HEALTH`
//!   probes** ([`Backend::probe_ready`]), with within-attempt failover;
//! * optionally, reads are **hedged** to a second replica after a
//!   p99-derived delay ([`Hedge::Auto`]);
//! * when a shard stays down past its budget, `PREDICT` **degrades
//!   partially** — the surviving logit slices still answer, flagged
//!   `OK partial` (see `docs/PROTOCOL.md`).
//!
//! The crate is std-only and protocol-level: it knows response *lines*,
//! not model internals. The TCP front tier that serves clients lives in
//! `poe-cli` (`poe route`); fault injection sites live in `poe-chaos`
//! (`router.connect.io`, `router.read.stall`, `router.shard.partition`,
//! `router.scatter.panic`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod breaker;
pub mod client;
pub mod engine;
pub mod shardmap;

pub use backoff::{Backoff, RetryPolicy};
pub use breaker::{BreakerState, CircuitBreaker};
pub use client::{Backend, CallError};
pub use engine::{
    join, softmax_argmax, GatherError, GatheredLogits, GatheredPredict, GatheredQuery, Hedge,
    Router, RouterConfig, RouterMetrics, ShardFailure, ShardHandle, ShardQueryPart,
};
pub use shardmap::{Shard, ShardMap};
