//! Model-unification baselines: **SD** and **UHC** (Vongkulbhisal et al.,
//! CVPR 2019), as used in Section 5.3 of the PoE paper.
//!
//! Both merge `n(Q)` pre-built primitive teachers `M(H_i)` into one student
//! whose output blocks follow the teachers in query order:
//!
//! * **SD** — the naive extension of standard distillation: each output
//!   block is distilled *independently* against its teacher's softened
//!   distribution (per-block softmax). Nothing constrains the relative
//!   scale of different blocks.
//! * **UHC** — the heterogeneous-classifier objective: the student's
//!   softmax is taken over the **union** of classes and *renormalized
//!   within each block* before matching teacher `i`'s distribution
//!   (`KL(p_i ‖ q|_{H_i})`). The shared normalizer couples the blocks
//!   during training, which in practice calibrates them better than SD —
//!   but, as the paper shows, both remain far behind CKD/PoE when the
//!   teachers were trained independently from scratch.
//!
//! Teachers are supplied as *precomputed logits* over the merge dataset,
//! which keeps the merging loop architecture-agnostic (library+head
//! experts, scratch specialists, or anything else).

use poe_data::Dataset;
use poe_models::{build_wrn_mlp, SplitModel, WrnConfig};
use poe_nn::loss::kd_loss;
use poe_nn::train::{train_batches_with_eval, TrainConfig, TrainReport};
use poe_tensor::ops::softmax_with_temperature;
use poe_tensor::{Prng, Tensor};

/// One teacher to merge: its logits over the merge dataset's rows.
pub struct MergeTeacher {
    /// The teacher's logits, `[n × |H_i|]`, row-aligned with the merge data.
    pub logits: Tensor,
}

/// Which unification objective to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeMethod {
    /// Independent per-block distillation.
    Sd,
    /// Union-softmax conditional matching.
    Uhc,
    /// Deep Model Consolidation (Zhang et al., WACV 2020): *double
    /// distillation* — L2 regression of each block onto the teacher's
    /// **mean-centred** logits. The PoE paper treats DMC as a special case
    /// of UHC for merging; it is included for completeness. Per-sample
    /// mean-centring removes each teacher's logit offset but, like SD,
    /// nothing constrains the cross-teacher *scale*.
    Dmc,
}

/// Merges teachers into a fresh student of architecture `arch` (output
/// width must equal the total teacher width). `merge_data` provides the
/// (unlabeled, label field unused) transfer inputs.
///
/// Returns the trained student and its training history.
#[allow(clippy::too_many_arguments)]
pub fn merge_teachers(
    method: MergeMethod,
    arch: &WrnConfig,
    input_dim: usize,
    merge_data: &Dataset,
    teachers: &[MergeTeacher],
    temperature: f32,
    cfg: &TrainConfig,
    seed: u64,
) -> (SplitModel, TrainReport) {
    merge_teachers_with_eval(
        method,
        arch,
        input_dim,
        merge_data,
        teachers,
        temperature,
        cfg,
        seed,
        0,
        &mut |_| 0.0,
    )
}

/// [`merge_teachers`] with a periodic evaluation callback (for the paper's
/// learning-curve figures). `eval_every == 0` disables evaluation.
#[allow(clippy::too_many_arguments)]
pub fn merge_teachers_with_eval(
    method: MergeMethod,
    arch: &WrnConfig,
    input_dim: usize,
    merge_data: &Dataset,
    teachers: &[MergeTeacher],
    temperature: f32,
    cfg: &TrainConfig,
    seed: u64,
    eval_every: usize,
    eval_fn: &mut dyn FnMut(&mut dyn poe_nn::Module) -> f64,
) -> (SplitModel, TrainReport) {
    assert!(!teachers.is_empty(), "no teachers to merge");
    let n = merge_data.len();
    let total: usize = teachers.iter().map(|t| t.logits.cols()).sum();
    assert_eq!(arch.num_classes, total, "student width must equal Σ|H_i|");
    for t in teachers {
        assert_eq!(
            t.logits.rows(),
            n,
            "teacher logits must align with merge data"
        );
    }

    // Block column ranges in the student output.
    let mut blocks = Vec::with_capacity(teachers.len());
    let mut off = 0;
    for t in teachers {
        blocks.push((off, off + t.logits.cols()));
        off += t.logits.cols();
    }

    let mut rng = Prng::seed_from_u64(seed);
    let mut student = build_wrn_mlp(arch, input_dim, &mut rng);

    let report = train_batches_with_eval(
        &mut student,
        &merge_data.inputs,
        cfg,
        &mut |logits, idx| {
            match method {
                MergeMethod::Sd => {
                    // Σ_i KL(σ(t_i/T) ‖ σ(s_i/T)) with independent block softmax.
                    let mut total_loss = 0.0f32;
                    let mut grad = Tensor::zeros(logits.shape().dims().to_vec());
                    for (ti, &(lo, hi)) in teachers.iter().zip(&blocks) {
                        let cols: Vec<usize> = (lo..hi).collect();
                        let s_block = logits.select_cols(&cols);
                        let t_block = ti.logits.select_rows(idx);
                        let (l, g) = kd_loss(&s_block, &t_block, temperature, true);
                        total_loss += l;
                        // Scatter block gradient back.
                        for r in 0..grad.rows() {
                            let dst = grad.row_mut(r);
                            let src = g.row(r);
                            dst[lo..hi].copy_from_slice(src);
                        }
                    }
                    (total_loss, grad)
                }
                MergeMethod::Dmc => {
                    // ½‖s_i − (t_i − mean(t_i))‖² per block, mean over batch.
                    let rows = logits.rows();
                    let mut total_loss = 0.0f32;
                    let mut grad = Tensor::zeros(logits.shape().dims().to_vec());
                    for (ti, &(lo, hi)) in teachers.iter().zip(&blocks) {
                        let t_block = ti.logits.select_rows(idx);
                        let width = hi - lo;
                        for r in 0..rows {
                            let t_row = t_block.row(r);
                            let mean: f32 = t_row.iter().sum::<f32>() / width as f32;
                            let s_row = &logits.row(r)[lo..hi];
                            for (j, (&sv, &tv)) in s_row.iter().zip(t_row).enumerate() {
                                let d = sv - (tv - mean);
                                total_loss += 0.5 * d * d / rows as f32;
                                grad.row_mut(r)[lo + j] = d / rows as f32;
                            }
                        }
                    }
                    (total_loss, grad)
                }
                MergeMethod::Uhc => {
                    // Σ_i KL(p_i ‖ q|_{H_i}) with q = softmax over the union.
                    // Gradient within block i: (T/n)·(q|_{H_i}(j) − p_i(j))
                    // (T² loss scaling, matching kd_loss's convention).
                    let q = softmax_with_temperature(logits, temperature);
                    let rows = logits.rows();
                    let mut total_loss = 0.0f32;
                    let mut grad = Tensor::zeros(logits.shape().dims().to_vec());
                    for (ti, &(lo, hi)) in teachers.iter().zip(&blocks) {
                        let t_block = ti.logits.select_rows(idx);
                        let p = softmax_with_temperature(&t_block, temperature);
                        for r in 0..rows {
                            let q_row = &q.row(r)[lo..hi];
                            let mass: f32 = q_row.iter().sum::<f32>().max(1e-12);
                            let p_row = p.row(r);
                            let mut kl = 0.0f32;
                            for (j, (&qv, &pv)) in q_row.iter().zip(p_row).enumerate() {
                                let q_cond = qv / mass;
                                if pv > 0.0 {
                                    kl += pv * (pv.ln() - q_cond.max(1e-12).ln());
                                }
                                grad.row_mut(r)[lo + j] +=
                                    temperature * (q_cond - pv) / rows as f32;
                            }
                            total_loss += temperature * temperature * kl / rows as f32;
                        }
                    }
                    (total_loss, grad)
                }
            }
        },
        eval_every,
        eval_fn,
    );
    (student, report)
}

/// Block-conditional accuracy: the argmax is restricted to the block that
/// owns the true label. This isolates how well a merged student learned
/// each teacher's *conditional* distribution, independent of the
/// cross-block logit scales (which SD leaves uncontrolled — the paper's
/// logit scale problem).
pub fn block_conditional_accuracy(
    logits: &Tensor,
    labels: &[usize],
    blocks: &[(usize, usize)],
) -> f64 {
    assert_eq!(logits.rows(), labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    let mut ok = 0usize;
    for (r, &l) in labels.iter().enumerate() {
        let &(lo, hi) = blocks
            .iter()
            .find(|&&(lo, hi)| l >= lo && l < hi)
            .expect("label outside every block");
        let row = &logits.row(r)[lo..hi];
        let mut arg = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[arg] {
                arg = j;
            }
        }
        ok += usize::from(lo + arg == l);
    }
    ok as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_data::synth::{generate, GaussianHierarchyConfig};
    use poe_tensor::ops::accuracy;
    use poe_tensor::Prng;

    /// Synthetic, well-calibrated teachers (the shape CKD produces): +4 on
    /// the true class for in-task samples, ≈0 logits elsewhere and for
    /// out-of-task samples.
    fn calibrated_teacher_logits(
        data: &Dataset,
        block_classes: &[usize],
        lo: usize,
        hi: usize,
        noise_seed: u64,
    ) -> Tensor {
        let mut rng = Prng::seed_from_u64(noise_seed);
        let mut t = Tensor::zeros([data.len(), hi - lo]);
        for r in 0..data.len() {
            let label = data.labels[r]; // position within block_classes
            let _ = block_classes;
            if label >= lo && label < hi {
                t.row_mut(r)[label - lo] = 4.0;
            }
            for v in t.row_mut(r) {
                *v += rng.normal() * 0.1;
            }
        }
        t
    }

    fn merge_setup() -> (Dataset, Dataset, Vec<usize>, Vec<(usize, usize)>) {
        let (split, h) = generate(
            &GaussianHierarchyConfig {
                dim: 8,
                ..GaussianHierarchyConfig::balanced(3, 2)
            }
            .with_samples(25, 10)
            .with_seed(51),
        );
        let tasks = [0usize, 2];
        let mut block_classes = Vec::new();
        let mut blocks = Vec::new();
        let mut off = 0;
        for &t in &tasks {
            let cs = &h.primitive(t).classes;
            blocks.push((off, off + cs.len()));
            off += cs.len();
            block_classes.extend_from_slice(cs);
        }
        (
            split.train.task_view(&block_classes),
            split.test.task_view(&block_classes),
            block_classes,
            blocks,
        )
    }

    /// Trains a merge student and returns (overall acc, block-conditional acc).
    fn merged_metrics(method: MergeMethod, calibrated: bool) -> (f64, f64) {
        let (merge_train, merge_test, block_classes, blocks) = merge_setup();
        let teachers: Vec<MergeTeacher> = blocks
            .iter()
            .enumerate()
            .map(|(i, &(lo, hi))| {
                let logits = if calibrated {
                    calibrated_teacher_logits(&merge_train, &block_classes, lo, hi, 60 + i as u64)
                } else {
                    // Pure-noise teachers carry no class signal at all.
                    let mut rng = Prng::seed_from_u64(70 + i as u64);
                    Tensor::randn([merge_train.len(), hi - lo], 1.0, &mut rng)
                };
                MergeTeacher { logits }
            })
            .collect();
        let arch = WrnConfig::new(10, 1.0, 0.5, block_classes.len()).with_unit(8);
        let (mut student, report) = merge_teachers(
            method,
            &arch,
            8,
            &merge_train,
            &teachers,
            4.0,
            &TrainConfig::new(40, 16, 0.01),
            9,
        );
        assert!(report.final_loss().unwrap().is_finite());
        let logits = poe_core::training::logits_of(&mut student, &merge_test.inputs);
        (
            accuracy(&logits, &merge_test.labels),
            block_conditional_accuracy(&logits, &merge_test.labels, &blocks),
        )
    }

    #[test]
    fn sd_merge_learns_block_conditionals() {
        let (acc, cond) = merged_metrics(MergeMethod::Sd, true);
        // Conditionals transfer reliably; overall accuracy is at the mercy
        // of cross-block scales (the paper's logit scale problem), so we
        // only require it to be at least chance.
        assert!(cond > 0.8, "SD conditional acc {cond}");
        assert!(acc >= 0.2, "SD overall acc {acc}");
    }

    #[test]
    fn uhc_merge_learns_block_conditionals() {
        let (acc, cond) = merged_metrics(MergeMethod::Uhc, true);
        assert!(cond > 0.8, "UHC conditional acc {cond}");
        assert!(acc >= 0.2, "UHC overall acc {acc}");
    }

    #[test]
    fn dmc_merge_learns_block_conditionals() {
        let (acc, cond) = merged_metrics(MergeMethod::Dmc, true);
        assert!(cond > 0.8, "DMC conditional acc {cond}");
        assert!(acc >= 0.2, "DMC overall acc {acc}");
    }

    #[test]
    fn dmc_loss_is_zero_on_centred_teacher_logits() {
        // If the student already outputs the mean-centred teacher logits,
        // the DMC objective is exactly zero.
        let t = Tensor::from_vec(vec![3.0, 1.0, -1.0, 5.0], [2, 2]);
        let teachers = [MergeTeacher { logits: t.clone() }];
        let mut centred = t.clone();
        for r in 0..2 {
            let m: f32 = centred.row(r).iter().sum::<f32>() / 2.0;
            for v in centred.row_mut(r) {
                *v -= m;
            }
        }
        // Evaluate the DMC loss expression directly.
        let rows = centred.rows();
        let mut loss = 0.0f32;
        for r in 0..rows {
            let t_row = teachers[0].logits.row(r);
            let mean: f32 = t_row.iter().sum::<f32>() / t_row.len() as f32;
            for (s, &tv) in centred.row(r).iter().zip(t_row) {
                let d = s - (tv - mean);
                loss += 0.5 * d * d;
            }
        }
        assert!(loss.abs() < 1e-10);
    }

    #[test]
    fn noise_teachers_teach_nothing() {
        for method in [MergeMethod::Sd, MergeMethod::Uhc] {
            let (_, good) = merged_metrics(method, true);
            let (_, bad) = merged_metrics(method, false);
            assert!(
                bad + 0.2 < good,
                "{method:?}: noise-teacher conditional acc {bad} not clearly below {good}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "width")]
    fn width_mismatch_rejected() {
        let data = Dataset::new(Tensor::zeros([4, 8]), vec![0, 0, 0, 0], 2);
        let teachers = vec![MergeTeacher {
            logits: Tensor::zeros([4, 2]),
        }];
        let arch = WrnConfig::new(10, 1.0, 0.5, 3).with_unit(4);
        merge_teachers(
            MergeMethod::Sd,
            &arch,
            8,
            &data,
            &teachers,
            4.0,
            &TrainConfig::new(1, 4, 0.1),
            1,
        );
    }

    #[test]
    fn uhc_gradient_matches_finite_difference() {
        // Check the hand-derived UHC gradient on a tiny fixed case.
        let teachers = [
            Tensor::from_vec(vec![2.0, -1.0, 0.5, 1.0], [2, 2]),
            Tensor::from_vec(vec![0.0, 1.0, -0.5, 0.3], [2, 2]),
        ];
        let t = 2.0f32;
        let eval = |s: &Tensor| -> (f32, Tensor) {
            let q = softmax_with_temperature(s, t);
            let rows = s.rows();
            let mut loss = 0.0f32;
            let mut grad = Tensor::zeros(s.shape().dims().to_vec());
            for (i, tt) in teachers.iter().enumerate() {
                let (lo, hi) = (2 * i, 2 * i + 2);
                let p = softmax_with_temperature(tt, t);
                for r in 0..rows {
                    let q_row = &q.row(r)[lo..hi];
                    let mass: f32 = q_row.iter().sum();
                    for (j, (&qv, &pv)) in q_row.iter().zip(p.row(r)).enumerate() {
                        let q_cond = qv / mass;
                        if pv > 0.0 {
                            loss += t * t * pv * (pv.ln() - q_cond.ln()) / rows as f32;
                        }
                        grad.row_mut(r)[lo + j] += t * (q_cond - pv) / rows as f32;
                    }
                }
            }
            (loss, grad)
        };
        let s = Tensor::from_vec(vec![0.3, -0.2, 1.0, 0.5, -0.4, 0.8, 0.0, 0.1], [2, 4]);
        let (_, g) = eval(&s);
        let eps = 1e-2f32;
        for i in 0..s.numel() {
            let mut sp = s.clone();
            sp.data_mut()[i] += eps;
            let mut sm = s.clone();
            sm.data_mut()[i] -= eps;
            let num = (eval(&sp).0 - eval(&sm).0) / (2.0 * eps);
            assert!(
                (num - g.data()[i]).abs() < 2e-2 * (1.0 + num.abs()),
                "UHC grad mismatch at {i}: fd {num} analytic {}",
                g.data()[i]
            );
        }
    }
}
