//! # poe-baselines
//!
//! Every comparison method from the PoE paper's evaluation:
//!
//! * [`methods::train_scratch`] — the **Scratch** baseline (specialized
//!   architecture, cross-entropy, task data only),
//! * [`methods::train_transfer`] — the **Transfer** baseline (frozen
//!   library, head trained on task data),
//! * [`methods::train_generic_kd`] — the **KD** baseline (entire oracle
//!   knowledge distilled into the tiny architecture),
//! * [`merge`] — the **SD** and **UHC** model-unification baselines that
//!   merge independently built primitive teachers into one student.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod merge;
pub mod methods;

pub use merge::{block_conditional_accuracy, merge_teachers, MergeMethod, MergeTeacher};
pub use methods::{library_head_logits, train_generic_kd, train_scratch, train_transfer};
