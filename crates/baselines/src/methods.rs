//! The paper's non-merging baselines: **KD**, **Scratch**, **Transfer**
//! (Section 5.2), applicable to both primitive and composite tasks.

use poe_core::training::{train_cross_entropy, train_distill};
use poe_data::Dataset;
use poe_models::{build_mlp_head, build_wrn_mlp, SplitModel, WrnConfig};
use poe_nn::layers::Sequential;
use poe_nn::train::{predict, TrainConfig, TrainReport};
use poe_nn::Module;
use poe_tensor::{Prng, Tensor};

/// **Scratch**: trains the specialized architecture from scratch with
/// cross-entropy on the task-specific dataset only (no oracle involved).
///
/// `task_data` must be a `task_view` (labels in `0..arch.num_classes`).
pub fn train_scratch(
    arch: &WrnConfig,
    input_dim: usize,
    task_data: &Dataset,
    cfg: &TrainConfig,
    seed: u64,
) -> (SplitModel, TrainReport) {
    assert_eq!(
        arch.num_classes, task_data.num_classes,
        "arch/task class mismatch"
    );
    let mut rng = Prng::seed_from_u64(seed);
    let mut model = build_wrn_mlp(arch, input_dim, &mut rng);
    let report = train_cross_entropy(&mut model, task_data, cfg);
    (model, report)
}

/// **Transfer**: freezes the PoE library component and trains only the
/// expert-shaped head with cross-entropy on the task-specific dataset.
///
/// Returns the trained head; compose it with the library for inference.
pub fn train_transfer(
    library: &Sequential,
    head_arch: &WrnConfig,
    task_data: &Dataset,
    cfg: &TrainConfig,
    seed: u64,
) -> (Sequential, TrainReport) {
    assert_eq!(head_arch.num_classes, task_data.num_classes);
    let mut rng = Prng::seed_from_u64(seed);
    let mut lib = library.clone();
    lib.set_trainable(false);
    let features = predict(&mut lib, &task_data.inputs, 256);
    let mut head = build_mlp_head("transfer", head_arch, head_arch.num_classes, &mut rng);
    let labels = task_data.labels.clone();
    let report = poe_nn::train::train_batches(&mut head, &features, cfg, &mut |logits, idx| {
        let batch: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
        poe_nn::loss::cross_entropy(logits, &batch)
    });
    (head, report)
}

/// **KD (generic)**: distills the oracle's *entire* knowledge into the
/// tiny specialized architecture (output width = all classes). Evaluated
/// with task-specific accuracy, this is the paper's weakest method at
/// expert scale — the small model cannot hold the full knowledge.
pub fn train_generic_kd(
    arch: &WrnConfig,
    input_dim: usize,
    train_inputs: &Tensor,
    oracle_logits: &Tensor,
    temperature: f32,
    cfg: &TrainConfig,
    seed: u64,
) -> (SplitModel, TrainReport) {
    assert_eq!(
        arch.num_classes,
        oracle_logits.cols(),
        "arch must cover all classes"
    );
    let mut rng = Prng::seed_from_u64(seed);
    let mut model = build_wrn_mlp(arch, input_dim, &mut rng);
    let report = train_distill(&mut model, train_inputs, oracle_logits, temperature, cfg);
    (model, report)
}

/// Runs `library → head` inference over a dataset and returns logits.
pub fn library_head_logits(library: &Sequential, head: &Sequential, inputs: &Tensor) -> Tensor {
    let mut lib = library.clone();
    let mut h = head.clone();
    let f = predict(&mut lib, inputs, 256);
    predict(&mut h, &f, 256)
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_core::training::{eval_accuracy, logits_of, train_cross_entropy as tce};
    use poe_data::synth::{generate, GaussianHierarchyConfig};
    use poe_tensor::ops::accuracy;

    fn tiny() -> (poe_data::SplitDataset, poe_data::ClassHierarchy) {
        generate(
            &GaussianHierarchyConfig {
                dim: 8,
                ..GaussianHierarchyConfig::balanced(3, 2)
            }
            .with_samples(25, 10)
            .with_seed(41),
        )
    }

    #[test]
    fn scratch_learns_its_task() {
        let (split, h) = tiny();
        let classes = h.primitive(1).classes.clone();
        let train_view = split.train.task_view(&classes);
        let arch = WrnConfig::new(10, 1.0, 0.25, classes.len()).with_unit(8);
        let (mut m, report) = train_scratch(
            &arch,
            8,
            &train_view,
            &TrainConfig::new(40, 16, 0.05).with_milestones(vec![25], 0.1),
            1,
        );
        assert!(report.final_loss().unwrap() < report.records[0].mean_loss);
        let test_view = split.test.task_view(&classes);
        let acc = eval_accuracy(&mut m, &test_view);
        assert!(acc > 0.6, "scratch acc {acc}");
    }

    #[test]
    fn transfer_trains_head_only() {
        let (split, h) = tiny();
        // Library: trunk of a scratch-trained generic student.
        let mut rng = Prng::seed_from_u64(2);
        let mut student = build_wrn_mlp(&WrnConfig::new(10, 1.0, 1.0, 6).with_unit(8), 8, &mut rng);
        tce(&mut student, &split.train, &TrainConfig::new(20, 32, 0.08));
        let library = student.trunk().clone();
        let lib_snapshot = poe_nn::snapshot_params(&library);

        let classes = h.primitive(0).classes.clone();
        let train_view = split.train.task_view(&classes);
        let head_arch = WrnConfig::new(10, 1.0, 0.25, classes.len()).with_unit(8);
        let (head, _) = train_transfer(
            &library,
            &head_arch,
            &train_view,
            &TrainConfig::new(25, 16, 0.08),
            3,
        );

        // Library untouched.
        assert_eq!(poe_nn::snapshot_params(&library), lib_snapshot);
        // Composite inference works.
        let test_view = split.test.task_view(&classes);
        let logits = library_head_logits(&library, &head, &test_view.inputs);
        let acc = accuracy(&logits, &test_view.labels);
        assert!(acc > 0.7, "transfer acc {acc}");
    }

    #[test]
    fn generic_kd_is_weakest_at_expert_scale() {
        let (split, h) = tiny();
        let mut rng = Prng::seed_from_u64(4);
        let mut oracle = build_wrn_mlp(&WrnConfig::new(10, 2.0, 2.0, 6).with_unit(8), 8, &mut rng);
        tce(&mut oracle, &split.train, &TrainConfig::new(30, 32, 0.08));
        let ol = logits_of(&mut oracle, &split.train.inputs);

        let arch = WrnConfig::new(10, 1.0, 0.25, 6).with_unit(4);
        let (mut kd_model, _) = train_generic_kd(
            &arch,
            8,
            &split.train.inputs,
            &ol,
            4.0,
            &TrainConfig::new(25, 32, 0.02),
            5,
        );
        // It still learns *something* on average. Which tasks the
        // capacity-starved student favors is chaotic (it flips with the
        // training seed and even with kernel accumulation order), so
        // assert on the mean over all tasks, not any single one.
        let mean_acc = (0..h.num_primitives())
            .map(|t| {
                let classes = h.primitive(t).classes.clone();
                poe_core::training::eval_task_specific_accuracy(
                    &mut kd_model,
                    &split.test,
                    &classes,
                )
            })
            .sum::<f64>()
            / h.num_primitives() as f64;
        assert!(
            mean_acc > 0.5,
            "generic KD mean task-specific acc {mean_acc}"
        );
    }

    #[test]
    #[should_panic(expected = "class mismatch")]
    fn scratch_rejects_wrong_width() {
        let (split, h) = tiny();
        let classes = h.primitive(0).classes.clone();
        let view = split.train.task_view(&classes);
        let arch = WrnConfig::new(10, 1.0, 0.25, 5).with_unit(4); // 5 ≠ 2
        train_scratch(&arch, 8, &view, &TrainConfig::new(1, 8, 0.1), 1);
    }
}
