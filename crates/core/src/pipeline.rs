//! End-to-end preprocessing pipeline: oracle → library → pool of experts.
//!
//! This orchestrates the whole preprocessing phase of Figure 1(a):
//!
//! 1. train (or accept) an **oracle** `M(C)`,
//! 2. distill it into a small generic student and take the student's trunk
//!    as the **library**,
//! 3. for each requested primitive task, extract an **expert** head by CKD
//!    on the frozen library,
//! 4. assemble everything into an [`ExpertPool`] ready for realtime
//!    querying.
//!
//! The pipeline caches the oracle's training-set logits and the library's
//! training-set features, which the experiment harness also reuses for the
//! baseline methods.

use crate::ckd::{extract_expert, CkdConfig};
use crate::library::{extract_library, LibraryConfig};
use crate::pool::{Expert, ExpertPool};
use crate::training::{logits_of, train_cross_entropy};
use poe_data::{ClassHierarchy, Dataset};
use poe_models::{build_mlp_head_with_depth, build_wrn_mlp_with_depth, SplitModel, WrnConfig};
use poe_nn::train::{predict, TrainConfig, TrainReport};
use poe_nn::Module;
use poe_tensor::{Prng, Tensor};
use std::collections::BTreeMap;

/// Architecture and optimization settings of a full preprocessing run
/// (MLP-analog realization; see DESIGN.md §2).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Oracle architecture (e.g. the analog of WRN-40-(4, 4)).
    pub oracle_arch: WrnConfig,
    /// Library-student architecture (e.g. the analog of WRN-16-(1, 1)).
    pub student_arch: WrnConfig,
    /// Expert `k_s` (0.25 in the paper); `k_c`/depth/unit follow the
    /// student so heads fit the library features.
    pub expert_ks: f32,
    /// Oracle training settings (cross-entropy from scratch).
    pub oracle_train: TrainConfig,
    /// Library distillation settings.
    pub library_train: TrainConfig,
    /// Expert CKD settings.
    pub expert_train: TrainConfig,
    /// Distillation temperature `T` (shared by library KD and CKD).
    pub temperature: f32,
    /// CKD `α` (0.3 in the paper).
    pub alpha: f32,
    /// Weight-initialization seed.
    pub seed: u64,
    /// Library depth `ℓ` — how many of the four groups the shared library
    /// keeps (paper: 3, i.e. conv1–conv3). Controls the tradeoff between
    /// shared-component size and per-expert size (Section 4.1).
    pub library_groups: usize,
}

impl PipelineConfig {
    /// Calibrated defaults: oracle trained with cross-entropy at lr 0.08;
    /// the distillation phases use a lower rate (0.02 / 0.04) because the
    /// T²-scaled KD gradient is ≈T× larger than a cross-entropy gradient
    /// and diverges at the oracle's rate.
    pub fn defaults(oracle_arch: WrnConfig, student_arch: WrnConfig, epochs: usize) -> Self {
        PipelineConfig {
            oracle_arch,
            student_arch,
            expert_ks: 0.25,
            oracle_train: TrainConfig::new(epochs, 64, 0.08),
            library_train: TrainConfig::new(epochs, 64, 0.02),
            expert_train: TrainConfig::new(epochs, 64, 0.04),
            temperature: 4.0,
            alpha: 0.3,
            seed: 0xC0DE,
            library_groups: poe_models::DEFAULT_LIBRARY_GROUPS,
        }
    }

    /// The expert architecture implied by the student and `expert_ks`.
    pub fn expert_arch(&self, num_outputs: usize) -> WrnConfig {
        WrnConfig {
            ks: self.expert_ks,
            num_classes: num_outputs,
            ..self.student_arch
        }
    }

    /// CKD loss/training configuration for expert extraction.
    pub fn ckd_config(&self) -> CkdConfig {
        let mut loss = poe_nn::loss::CkdLoss::paper(self.temperature);
        loss.alpha = self.alpha;
        CkdConfig {
            loss,
            train: self.expert_train.clone(),
        }
    }
}

/// Everything the preprocessing phase produces (plus cached intermediates
/// the experiment harness reuses).
pub struct Preprocessed {
    /// The trained oracle `M(C)`.
    pub oracle: SplitModel,
    /// The distilled generic student (trunk = library).
    pub student: SplitModel,
    /// The pool: library + experts, ready for the service phase.
    pub pool: ExpertPool,
    /// Oracle logits over the training inputs (row-aligned).
    pub oracle_logits: Tensor,
    /// Frozen-library features over the training inputs (row-aligned).
    pub library_features: Tensor,
    /// Oracle training history.
    pub oracle_report: TrainReport,
    /// Library distillation history.
    pub library_report: TrainReport,
    /// Per-task expert extraction histories.
    pub expert_reports: BTreeMap<usize, TrainReport>,
}

/// Runs the full preprocessing phase on feature data.
///
/// `expert_tasks` selects which primitive tasks get experts (`None` = all
/// of them, as a production deployment would).
pub fn preprocess(
    train: &Dataset,
    hierarchy: &ClassHierarchy,
    cfg: &PipelineConfig,
    expert_tasks: Option<&[usize]>,
) -> Preprocessed {
    let input_dim = match train.sample_shape().as_slice() {
        [d] => *d,
        other => panic!("feature pipeline expects flat samples, got {other:?}"),
    };
    assert_eq!(train.num_classes, hierarchy.num_classes());
    assert_eq!(cfg.oracle_arch.num_classes, hierarchy.num_classes());
    assert_eq!(cfg.student_arch.num_classes, hierarchy.num_classes());

    let mut rng = Prng::seed_from_u64(cfg.seed);

    // 1. Oracle.
    let mut oracle =
        build_wrn_mlp_with_depth(&cfg.oracle_arch, input_dim, cfg.library_groups, &mut rng);
    let oracle_report = {
        let _span = poe_obs::span("pipeline.train_oracle");
        train_cross_entropy(&mut oracle, train, &cfg.oracle_train)
    };
    let oracle_logits = logits_of(&mut oracle, &train.inputs);

    // 2. Library via standard KD.
    let student0 =
        build_wrn_mlp_with_depth(&cfg.student_arch, input_dim, cfg.library_groups, &mut rng);
    let lib_cfg = LibraryConfig {
        temperature: cfg.temperature,
        train: cfg.library_train.clone(),
    };
    let extraction = {
        let _span = poe_obs::span("pipeline.extract_library");
        extract_library(student0, &train.inputs, &oracle_logits, &lib_cfg)
    };
    let library_report = extraction.report.clone();
    let mut library = extraction.library();
    let student = extraction.student;
    library.set_trainable(false);
    let library_features = predict(&mut library, &train.inputs, crate::training::EVAL_BATCH);

    // 3. Experts via CKD.
    let all_tasks: Vec<usize> = (0..hierarchy.num_primitives()).collect();
    let tasks = expert_tasks.unwrap_or(&all_tasks);
    let ckd_cfg = cfg.ckd_config();
    let mut pool = ExpertPool::new(hierarchy.clone(), library);
    pool.library_arch = cfg.student_arch.arch_string();
    pool.expert_arch = cfg.expert_arch(0).arch_string();
    let mut expert_reports = BTreeMap::new();
    for &t in tasks {
        let classes = hierarchy.primitive(t).classes.clone();
        let sub = oracle_logits.select_cols(&classes);
        let head_arch = cfg.expert_arch(classes.len());
        let head = build_mlp_head_with_depth(
            &format!("expert{t}"),
            &head_arch,
            cfg.library_groups,
            classes.len(),
            &mut rng,
        );
        let ext = extract_expert(&library_features, &sub, head, &ckd_cfg);
        expert_reports.insert(t, ext.report);
        pool.insert_expert(Expert {
            task_index: t,
            classes,
            head: ext.head,
        });
    }

    Preprocessed {
        oracle,
        student,
        pool,
        oracle_logits,
        library_features,
        oracle_report,
        library_report,
        expert_reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{eval_accuracy, eval_task_specific_accuracy};
    use poe_data::synth::{generate, GaussianHierarchyConfig};
    use poe_tensor::ops::accuracy;

    fn tiny_pipeline() -> (poe_data::SplitDataset, ClassHierarchy, Preprocessed) {
        let (split, h) = generate(
            &GaussianHierarchyConfig {
                dim: 8,
                ..GaussianHierarchyConfig::balanced(4, 2)
            }
            .with_samples(25, 10)
            .with_seed(31),
        );
        let cfg = PipelineConfig {
            oracle_arch: WrnConfig::new(10, 2.0, 2.0, 8).with_unit(8),
            student_arch: WrnConfig::new(10, 1.0, 1.0, 8).with_unit(8),
            expert_ks: 0.25,
            oracle_train: TrainConfig::new(25, 32, 0.08),
            library_train: TrainConfig::new(20, 32, 0.02),
            expert_train: TrainConfig::new(25, 32, 0.05),
            temperature: 4.0,
            alpha: 0.3,
            seed: 5,
            library_groups: 3,
        };
        let pre = preprocess(&split.train, &h, &cfg, None);
        (split, h, pre)
    }

    #[test]
    fn full_preprocessing_yields_working_pool() {
        let (split, h, mut pre) = tiny_pipeline();
        // Oracle is competent.
        let oracle_acc = eval_accuracy(&mut pre.oracle, &split.test);
        assert!(oracle_acc > 0.55, "oracle acc {oracle_acc}");
        // Pool covers every primitive task.
        assert_eq!(pre.pool.num_experts(), h.num_primitives());

        // Consolidate a 2-task composite and evaluate it end-to-end.
        let (model, stats) = pre.pool.consolidate(&[0, 2]).unwrap();
        assert_eq!(stats.num_experts, 2);
        let classes = h.composite_classes(&[0, 2]);
        let view = split.test.task_view(&classes);
        // BranchedModel outputs follow query order (task 0 then task 2),
        // which here equals sorted class order.
        assert_eq!(model.class_layout(), classes);
        let logits = model.infer(&view.inputs);
        let acc = accuracy(&logits, &view.labels);

        // PoE should be competitive with the oracle's task-specific accuracy.
        let oracle_ts = eval_task_specific_accuracy(&mut pre.oracle, &split.test, &classes);
        assert!(
            acc > oracle_ts - 0.25,
            "PoE composite acc {acc} too far below oracle {oracle_ts}"
        );
        assert!(acc > 0.5, "PoE composite acc {acc}");
    }

    #[test]
    #[should_panic]
    fn mismatched_class_count_rejected() {
        let (split, h) = generate(
            &GaussianHierarchyConfig {
                dim: 6,
                ..GaussianHierarchyConfig::balanced(2, 2)
            }
            .with_samples(4, 2)
            .with_seed(1),
        );
        // Oracle declared for 7 classes but the hierarchy has 4.
        let cfg = PipelineConfig::defaults(
            WrnConfig::new(10, 1.0, 1.0, 7).with_unit(4),
            WrnConfig::new(10, 1.0, 1.0, 4).with_unit(4),
            1,
        );
        preprocess(&split.train, &h, &cfg, None);
    }

    #[test]
    fn expert_subset_extraction() {
        let (split, h) = generate(
            &GaussianHierarchyConfig {
                dim: 8,
                ..GaussianHierarchyConfig::balanced(4, 2)
            }
            .with_samples(15, 5)
            .with_seed(32),
        );
        let cfg = PipelineConfig {
            oracle_arch: WrnConfig::new(10, 1.0, 1.0, 8).with_unit(4),
            student_arch: WrnConfig::new(10, 1.0, 1.0, 8).with_unit(4),
            expert_ks: 0.25,
            oracle_train: TrainConfig::new(5, 32, 0.08),
            library_train: TrainConfig::new(5, 32, 0.08),
            expert_train: TrainConfig::new(5, 32, 0.08),
            temperature: 4.0,
            alpha: 0.3,
            seed: 6,
            library_groups: 3,
        };
        let pre = preprocess(&split.train, &h, &cfg, Some(&[1, 3]));
        assert_eq!(pre.pool.pooled_tasks(), vec![1, 3]);
        assert!(pre.pool.consolidate(&[1, 3]).is_ok());
        assert!(pre.pool.consolidate(&[0]).is_err());
    }
}
