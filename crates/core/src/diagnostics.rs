//! Pool diagnostics: quantifying expert calibration and the logit-scale
//! problem.
//!
//! The paper's Section 4.2 identifies two failure modes when composing
//! specialists: *overconfidence* on unknown classes and *mismatched logit
//! scales* across experts. This module measures both on a reference
//! dataset, giving operators of a PoE deployment a health check before
//! they serve a pool (and giving this reproduction a direct view of what
//! `L_scale` changes).

use crate::pool::ExpertPool;
use poe_data::Dataset;
use poe_nn::train::predict;
use poe_tensor::ops::{accuracy, softmax};
use std::fmt;

/// Measurements for one pooled expert on the reference data.
#[derive(Debug, Clone)]
pub struct ExpertDiagnostics {
    /// The expert's primitive-task index.
    pub task_index: usize,
    /// Mean of the per-sample max logit on in-task samples — the expert's
    /// characteristic *scale* (what `L_scale` aligns across experts).
    pub in_task_mean_max_logit: f32,
    /// Mean of the per-sample max logit on out-of-task samples.
    pub ood_mean_max_logit: f32,
    /// Mean max softmax probability on in-task samples.
    pub in_task_mean_confidence: f64,
    /// Mean max softmax probability on out-of-task samples (should be low
    /// for a properly calibrated expert — Figure 5).
    pub ood_mean_confidence: f64,
    /// In-task classification accuracy through the library.
    pub in_task_accuracy: f64,
}

/// Pool-wide diagnostics.
#[derive(Debug, Clone)]
pub struct PoolDiagnostics {
    /// Per-expert rows, ordered by task index.
    pub experts: Vec<ExpertDiagnostics>,
}

impl PoolDiagnostics {
    /// Ratio of the largest to the smallest in-task logit scale across
    /// experts (≥ 1). Values near 1 mean the experts are scale-aligned and
    /// safe to concatenate; large values are the *logit scale problem*.
    pub fn scale_dispersion(&self) -> f32 {
        let scales: Vec<f32> = self
            .experts
            .iter()
            .map(|e| e.in_task_mean_max_logit.max(1e-6))
            .collect();
        if scales.is_empty() {
            return 1.0;
        }
        let max = scales.iter().copied().fold(f32::MIN, f32::max);
        let min = scales.iter().copied().fold(f32::MAX, f32::min);
        max / min
    }

    /// Mean out-of-task confidence across experts (low = calibrated).
    pub fn mean_ood_confidence(&self) -> f64 {
        if self.experts.is_empty() {
            return 0.0;
        }
        self.experts
            .iter()
            .map(|e| e.ood_mean_confidence)
            .sum::<f64>()
            / self.experts.len() as f64
    }
}

impl fmt::Display for PoolDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>5}  {:>9}  {:>10}  {:>9}  {:>9}  {:>8}",
            "task", "scale(in)", "scale(ood)", "conf(in)", "conf(ood)", "acc(in)"
        )?;
        for e in &self.experts {
            writeln!(
                f,
                "{:>5}  {:>9.2}  {:>10.2}  {:>9.3}  {:>9.3}  {:>8.3}",
                e.task_index,
                e.in_task_mean_max_logit,
                e.ood_mean_max_logit,
                e.in_task_mean_confidence,
                e.ood_mean_confidence,
                e.in_task_accuracy,
            )?;
        }
        writeln!(
            f,
            "scale dispersion (max/min): {:.2}   mean OOD confidence: {:.3}",
            self.scale_dispersion(),
            self.mean_ood_confidence()
        )
    }
}

/// Runs every pooled expert over the reference dataset (global labels) and
/// collects calibration/scale measurements. Out-of-task inputs are thinned
/// by `ood_stride` to bound cost on large reference sets.
pub fn diagnose_pool(pool: &ExpertPool, reference: &Dataset, ood_stride: usize) -> PoolDiagnostics {
    assert!(ood_stride > 0);
    let mut library = pool.library().clone();
    let mut experts = Vec::new();
    for t in pool.pooled_tasks() {
        let expert = pool.expert(t).expect("pooled task");
        let classes = &expert.classes;

        let in_view = reference.task_view(classes);
        let ood_view = reference.out_of_task_view(classes).thin(ood_stride);

        let mut head = expert.head.clone();
        let f_in = predict(&mut library, &in_view.inputs, 256);
        let logits_in = predict(&mut head, &f_in, 256);
        let f_ood = predict(&mut library, &ood_view.inputs, 256);
        let logits_ood = predict(&mut head, &f_ood, 256);

        let mean = |v: &[f32]| -> f32 {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f32>() / v.len() as f32
            }
        };
        let mean64 = |v: &[f32]| -> f64 {
            if v.is_empty() {
                0.0
            } else {
                v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64
            }
        };

        experts.push(ExpertDiagnostics {
            task_index: t,
            in_task_mean_max_logit: mean(&logits_in.max_rows()),
            ood_mean_max_logit: mean(&logits_ood.max_rows()),
            in_task_mean_confidence: mean64(&softmax(&logits_in).max_rows()),
            ood_mean_confidence: mean64(&softmax(&logits_ood).max_rows()),
            in_task_accuracy: accuracy(&logits_in, &in_view.labels),
        });
    }
    PoolDiagnostics { experts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::Expert;
    use poe_data::ClassHierarchy;
    use poe_nn::layers::{Linear, Sequential};
    use poe_nn::Module;
    use poe_tensor::{Prng, Tensor};

    fn toy() -> (ExpertPool, Dataset) {
        let mut rng = Prng::seed_from_u64(1);
        let hierarchy = ClassHierarchy::contiguous(4, 2);
        let library = Sequential::new().push(Linear::new("lib", 3, 4, &mut rng));
        let mut pool = ExpertPool::new(hierarchy, library);
        for t in 0..2 {
            let classes = pool.hierarchy().primitive(t).classes.clone();
            let mut head = Sequential::new().push(Linear::new(&format!("e{t}"), 4, 2, &mut rng));
            if t == 1 {
                // Give expert 1 a deliberately inflated scale.
                head.visit_params(&mut |p| p.value.scale(10.0));
            }
            pool.insert_expert(Expert {
                task_index: t,
                classes,
                head,
            });
        }
        let data = Dataset::new(
            Tensor::randn([40, 3], 1.0, &mut Prng::seed_from_u64(2)),
            (0..40).map(|i| i % 4).collect(),
            4,
        );
        (pool, data)
    }

    #[test]
    fn diagnostics_cover_every_expert() {
        let (pool, data) = toy();
        let d = diagnose_pool(&pool, &data, 1);
        assert_eq!(d.experts.len(), 2);
        assert_eq!(d.experts[0].task_index, 0);
        for e in &d.experts {
            assert!((0.0..=1.0).contains(&e.in_task_accuracy));
            assert!(e.in_task_mean_confidence >= 0.5 - 1e-6); // 2-class max prob ≥ 0.5
        }
    }

    #[test]
    fn inflated_expert_shows_up_as_dispersion() {
        let (pool, data) = toy();
        let d = diagnose_pool(&pool, &data, 1);
        assert!(
            d.scale_dispersion() > 3.0,
            "10× weight inflation should dominate dispersion: {}",
            d.scale_dispersion()
        );
    }

    #[test]
    fn display_renders_one_row_per_expert() {
        let (pool, data) = toy();
        let d = diagnose_pool(&pool, &data, 2);
        let text = d.to_string();
        assert_eq!(text.lines().count(), 1 + 2 + 1); // header + rows + summary
        assert!(text.contains("scale dispersion"));
    }

    #[test]
    fn empty_pool_is_safe() {
        let mut rng = Prng::seed_from_u64(3);
        let hierarchy = ClassHierarchy::contiguous(4, 2);
        let library = Sequential::new().push(Linear::new("lib", 3, 4, &mut rng));
        let pool = ExpertPool::new(hierarchy, library);
        let data = Dataset::new(Tensor::zeros([4, 3]), vec![0, 1, 2, 3], 4);
        let d = diagnose_pool(&pool, &data, 1);
        assert!(d.experts.is_empty());
        assert_eq!(d.scale_dispersion(), 1.0);
        assert_eq!(d.mean_ood_confidence(), 0.0);
    }
}
