//! The realtime model-querying service (the paper's AIaaS scenario).
//!
//! [`QueryService`] wraps an [`ExpertPool`] behind a read-write lock so
//! many clients can query concurrently while experts can still be installed
//! or refreshed online. Every query returns an assembled task-specific
//! model plus latency statistics — the measurable version of the paper's
//! "instantly deliver resource-efficient models for any on-demand tasks".

use crate::pool::{ConsolidationStats, Expert, ExpertPool, QueryError};
use parking_lot::{Mutex, RwLock};
use poe_models::BranchedModel;

/// Aggregate service counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Queries answered successfully.
    pub queries_served: u64,
    /// Queries rejected with an error.
    pub queries_rejected: u64,
    /// Sum of assembly latencies (seconds) over served queries.
    pub total_assembly_secs: f64,
}

impl ServiceStats {
    /// Mean assembly latency per served query.
    pub fn mean_assembly_secs(&self) -> f64 {
        if self.queries_served == 0 {
            0.0
        } else {
            self.total_assembly_secs / self.queries_served as f64
        }
    }
}

/// Result of a successful model query.
#[derive(Debug)]
pub struct QueryResult {
    /// The assembled task-specific model `M(Q)` — ready for inference.
    pub model: BranchedModel,
    /// Global class ids of the unified logit, column by column.
    pub class_layout: Vec<usize>,
    /// Assembly statistics.
    pub stats: ConsolidationStats,
}

/// A concurrent, realtime model-querying front end over an expert pool.
pub struct QueryService {
    pool: RwLock<ExpertPool>,
    stats: Mutex<ServiceStats>,
}

impl QueryService {
    /// Wraps a preprocessed pool.
    pub fn new(pool: ExpertPool) -> Self {
        QueryService {
            pool: RwLock::new(pool),
            stats: Mutex::new(ServiceStats::default()),
        }
    }

    /// Answers a composite-task query `Q` given as primitive-task indices.
    pub fn query(&self, tasks: &[usize]) -> Result<QueryResult, QueryError> {
        let result = {
            let pool = self.pool.read();
            pool.consolidate(tasks)
        };
        let mut stats = self.stats.lock();
        match result {
            Ok((model, cstats)) => {
                stats.queries_served += 1;
                stats.total_assembly_secs += cstats.assembly_secs;
                Ok(QueryResult {
                    class_layout: model.class_layout(),
                    model,
                    stats: cstats,
                })
            }
            Err(e) => {
                stats.queries_rejected += 1;
                Err(e)
            }
        }
    }

    /// Answers a query phrased as *global class ids* (e.g. "cat, fox,
    /// wolf"): the smallest set of primitive tasks covering all the classes
    /// is consolidated.
    pub fn query_classes(&self, classes: &[usize]) -> Result<QueryResult, QueryError> {
        let tasks: Vec<usize> = {
            let pool = self.pool.read();
            let h = pool.hierarchy();
            let mut seen = vec![false; h.num_primitives()];
            let mut tasks = Vec::new();
            for &c in classes {
                if c >= h.num_classes() {
                    return Err(QueryError::UnknownTask(c));
                }
                let t = h.primitive_of_class(c);
                if !seen[t] {
                    seen[t] = true;
                    tasks.push(t);
                }
            }
            tasks
        };
        self.query(&tasks)
    }

    /// Installs (or replaces) an expert while the service is live.
    pub fn install_expert(&self, expert: Expert) {
        self.pool.write().insert_expert(expert);
    }

    /// Current counters.
    pub fn stats(&self) -> ServiceStats {
        *self.stats.lock()
    }

    /// Read access to the underlying pool.
    pub fn with_pool<R>(&self, f: impl FnOnce(&ExpertPool) -> R) -> R {
        f(&self.pool.read())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_data::ClassHierarchy;
    use poe_nn::layers::{Linear, Relu, Sequential};
    use poe_tensor::Prng;

    fn service(num_tasks: usize, with_experts: &[usize]) -> QueryService {
        let mut rng = Prng::seed_from_u64(3);
        let hierarchy = ClassHierarchy::contiguous(3 * num_tasks, num_tasks);
        let library = Sequential::new()
            .push(Linear::new("lib", 4, 5, &mut rng))
            .push(Relu::new());
        let mut pool = ExpertPool::new(hierarchy, library);
        for &t in with_experts {
            let classes = pool.hierarchy().primitive(t).classes.clone();
            let head =
                Sequential::new().push(Linear::new(&format!("e{t}"), 5, classes.len(), &mut rng));
            pool.insert_expert(Expert { task_index: t, classes, head });
        }
        QueryService::new(pool)
    }

    #[test]
    fn query_returns_model_and_updates_stats() {
        let svc = service(4, &[0, 1, 2, 3]);
        let r = svc.query(&[1, 3]).unwrap();
        assert_eq!(r.class_layout, vec![3, 4, 5, 9, 10, 11]);
        assert_eq!(r.stats.num_experts, 2);
        let s = svc.stats();
        assert_eq!(s.queries_served, 1);
        assert_eq!(s.queries_rejected, 0);
    }

    #[test]
    fn failed_queries_count_as_rejected() {
        let svc = service(4, &[0]);
        assert!(svc.query(&[2]).is_err());
        assert_eq!(svc.stats().queries_rejected, 1);
    }

    #[test]
    fn class_query_finds_covering_tasks() {
        let svc = service(4, &[0, 1, 2, 3]);
        // Classes 0 and 7 live in tasks 0 and 2.
        let r = svc.query_classes(&[0, 7]).unwrap();
        assert_eq!(r.stats.num_experts, 2);
        assert!(r.class_layout.contains(&7));
    }

    #[test]
    fn install_expert_enables_new_queries() {
        let svc = service(3, &[0]);
        assert!(svc.query(&[1]).is_err());
        let mut rng = Prng::seed_from_u64(4);
        let classes = svc.with_pool(|p| p.hierarchy().primitive(1).classes.clone());
        svc.install_expert(Expert {
            task_index: 1,
            classes,
            head: Sequential::new().push(Linear::new("late", 5, 3, &mut rng)),
        });
        assert!(svc.query(&[1]).is_ok());
    }

    #[test]
    fn concurrent_queries_succeed() {
        let svc = std::sync::Arc::new(service(6, &[0, 1, 2, 3, 4, 5]));
        let mut handles = Vec::new();
        for i in 0..8 {
            let svc = svc.clone();
            handles.push(std::thread::spawn(move || {
                let tasks = [i % 6, (i + 1) % 6];
                svc.query(&tasks).map(|r| r.stats.num_experts)
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap().unwrap(), 2);
        }
        assert_eq!(svc.stats().queries_served, 8);
    }
}
