//! The realtime model-querying service (the paper's AIaaS scenario).
//!
//! [`QueryService`] wraps an [`ExpertPool`] behind a read-write lock so
//! many clients can query concurrently while experts can still be installed
//! or refreshed online. Every query returns an assembled task-specific
//! model plus latency statistics — the measurable version of the paper's
//! "instantly deliver resource-efficient models for any on-demand tasks".
//!
//! Repeated queries for the same *set* of primitive tasks are answered from
//! a small LRU **consolidation cache**: the cached library trunk and expert
//! branches are copy-on-write clones ([`poe_tensor::Tensor`] shares its
//! storage), so a cache hit re-materializes the model with a handful of
//! refcount bumps and no parameter copies. Installing an expert invalidates
//! the cache, so hits never serve stale weights.
//!
//! Every service owns a private [`poe_obs::Observability`] bundle. Counters
//! and histograms live in its registry under `service.*` names (merged with
//! the process-wide kernel metrics when the serving layer exports a
//! snapshot), spans are emitted against its trace collector, and
//! [`ServiceStats`] is reconstructed from the instruments on demand — the
//! registry is the single source of truth.

use crate::pool::{ConsolidationStats, Expert, ExpertPool, QueryError};
use poe_models::{Branch, BranchedModel, Prediction};
use poe_nn::layers::Sequential;
use poe_obs::{ensure_context, span, AtomicHistogram, Counter, Gauge, Observability};
use poe_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, RwLock};
use std::time::Instant;

/// Renders a sorted task set as flight-recorder detail: `tasks=0,1,2`.
fn task_list(key: &[usize]) -> String {
    let mut out = String::with_capacity(7 + key.len() * 3);
    out.push_str("tasks=");
    for (i, t) in key.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&t.to_string());
    }
    out
}

pub use poe_obs::LatencyHistogram;

/// Default number of consolidated task sets kept in the cache.
pub const DEFAULT_CACHE_CAPACITY: usize = 32;

/// Default cap on rows per batched forward pass: larger
/// [`QueryService::predict_batch`] inputs are split into chunks of at most
/// this many rows so one enormous batch cannot monopolize the CPU.
pub const DEFAULT_MAX_BATCH_ROWS: usize = 1024;

/// Aggregate service counters, reconstructed from the service's metrics
/// registry by [`QueryService::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Queries answered successfully.
    pub queries_served: u64,
    /// Queries rejected with an error.
    pub queries_rejected: u64,
    /// Sum of assembly latencies (seconds) over served queries.
    pub total_assembly_secs: f64,
    /// Served queries answered from the consolidation cache.
    pub cache_hits: u64,
    /// Served queries that required a full consolidation.
    pub cache_misses: u64,
    /// Distribution of per-query assembly latency.
    pub assembly_latency: LatencyHistogram,
}

impl ServiceStats {
    /// Mean assembly latency per served query, or `None` before the first
    /// served query (an idle service has no mean latency; `0.0` would read
    /// as impossibly fast).
    pub fn mean_assembly_secs(&self) -> Option<f64> {
        if self.queries_served == 0 {
            None
        } else {
            Some(self.total_assembly_secs / self.queries_served as f64)
        }
    }

    /// Median assembly latency (seconds); `None` when nothing was served.
    pub fn assembly_p50_secs(&self) -> Option<f64> {
        self.assembly_latency.quantile(0.50)
    }

    /// 95th-percentile assembly latency (seconds); `None` when nothing was
    /// served.
    pub fn assembly_p95_secs(&self) -> Option<f64> {
        self.assembly_latency.quantile(0.95)
    }

    /// 99th-percentile assembly latency (seconds); `None` when nothing was
    /// served.
    pub fn assembly_p99_secs(&self) -> Option<f64> {
        self.assembly_latency.quantile(0.99)
    }
}

/// Instrument handles fetched once at service construction, so the hot
/// path records through relaxed atomics without touching the registry's
/// name map.
struct ServiceMetrics {
    served: Arc<Counter>,
    rejected: Arc<Counter>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    assembly_ns: Arc<Counter>,
    assembly: Arc<AtomicHistogram>,
    cache_entries: Arc<Gauge>,
    batch_calls: Arc<Counter>,
    batch_rows: Arc<Counter>,
    batch_size: Arc<AtomicHistogram>,
    batch_infer: Arc<AtomicHistogram>,
}

impl ServiceMetrics {
    fn register(obs: &Observability) -> Self {
        let r = &obs.registry;
        ServiceMetrics {
            served: r.counter("service.queries_served"),
            rejected: r.counter("service.queries_rejected"),
            hits: r.counter("service.cache.hits"),
            misses: r.counter("service.cache.misses"),
            assembly_ns: r.counter("service.assembly_ns_total"),
            assembly: r.histogram("service.assembly_secs"),
            cache_entries: r.gauge("service.cache.entries"),
            batch_calls: r.counter("service.batch.calls"),
            batch_rows: r.counter("service.batch.rows"),
            batch_size: r.histogram("service.batch.size"),
            batch_infer: r.histogram("service.batch.infer_secs"),
        }
    }
}

/// Result of a successful model query.
#[derive(Debug)]
pub struct QueryResult {
    /// The assembled task-specific model `M(Q)` — ready for inference.
    pub model: BranchedModel,
    /// Global class ids of the unified logit, column by column.
    pub class_layout: Vec<usize>,
    /// Assembly statistics.
    pub stats: ConsolidationStats,
}

/// One cached consolidation: the components of an assembled model for a
/// task *set*, with branches sorted by task index so any query order can be
/// rebuilt by permutation.
struct CacheEntry {
    arch: String,
    library: Arc<Sequential>,
    branches: Vec<Arc<Branch>>,
    params: usize,
    /// Pool generation this entry was assembled from.
    generation: u64,
}

impl CacheEntry {
    /// Re-materializes a model in the requested query order. The clones
    /// are copy-on-write, so this copies no parameter data.
    fn assemble(&self, query: &[usize]) -> BranchedModel {
        let branches: Vec<Arc<Branch>> = query
            .iter()
            .map(|t| {
                let i = self
                    .branches
                    .binary_search_by_key(t, |b| b.task_index)
                    .expect("cache entry covers the query");
                Arc::clone(&self.branches[i])
            })
            .collect();
        BranchedModel::from_shared(self.arch.clone(), Arc::clone(&self.library), branches)
    }
}

/// LRU map from sorted task sets to cached consolidations. Entries are
/// most-recently-used first; linear scans are fine at the default capacity.
struct ConsolidationCache {
    entries: Vec<(Vec<usize>, CacheEntry)>,
    capacity: usize,
}

impl ConsolidationCache {
    fn new(capacity: usize) -> Self {
        ConsolidationCache {
            entries: Vec::new(),
            capacity,
        }
    }

    fn get(&mut self, key: &[usize]) -> Option<&CacheEntry> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let hit = self.entries.remove(pos);
        self.entries.insert(0, hit);
        Some(&self.entries[0].1)
    }

    fn insert(&mut self, key: Vec<usize>, entry: CacheEntry) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        }
        self.entries.insert(0, (key, entry));
        self.entries.truncate(self.capacity);
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Configures and constructs a [`QueryService`].
///
/// Obtained from [`QueryService::builder`]; every knob has a production
/// default, so `QueryService::builder(pool).build()` is the common case.
pub struct QueryServiceBuilder {
    pool: ExpertPool,
    cache_capacity: usize,
    obs: Option<Arc<Observability>>,
    max_batch_rows: usize,
}

impl QueryServiceBuilder {
    /// Keeps at most `capacity` consolidated task sets in the LRU cache
    /// (0 disables caching). Default: [`DEFAULT_CACHE_CAPACITY`].
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Uses an existing observability bundle instead of a fresh private
    /// one — lets embedders aggregate several services into one registry
    /// or pre-enable tracing before the first query.
    pub fn observability(mut self, obs: Arc<Observability>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Caps rows per batched forward pass: larger
    /// [`QueryService::predict_batch`] inputs run as several chunked
    /// passes. Default: [`DEFAULT_MAX_BATCH_ROWS`].
    ///
    /// # Panics
    /// Panics if `rows` is 0 — a service that can never run a forward
    /// pass is a configuration error, not a policy.
    pub fn max_batch_rows(mut self, rows: usize) -> Self {
        assert!(rows > 0, "max_batch_rows must be ≥ 1");
        self.max_batch_rows = rows;
        self
    }

    /// Builds the service.
    pub fn build(self) -> QueryService {
        let obs = self.obs.unwrap_or_default();
        let metrics = ServiceMetrics::register(&obs);
        QueryService {
            pool: RwLock::new(self.pool),
            cache: Mutex::new(ConsolidationCache::new(self.cache_capacity)),
            generation: AtomicU64::new(0),
            obs,
            metrics,
            max_batch_rows: self.max_batch_rows,
        }
    }
}

/// A concurrent, realtime model-querying front end over an expert pool.
pub struct QueryService {
    pool: RwLock<ExpertPool>,
    cache: Mutex<ConsolidationCache>,
    /// Bumped on every pool mutation; consolidations from an older
    /// generation are not admitted to the cache.
    generation: AtomicU64,
    obs: Arc<Observability>,
    metrics: ServiceMetrics,
    max_batch_rows: usize,
}

impl QueryService {
    /// Starts configuring a service over a preprocessed pool. Every knob
    /// defaults to its production value; `builder(pool).build()` matches
    /// what `poe serve` runs.
    pub fn builder(pool: ExpertPool) -> QueryServiceBuilder {
        QueryServiceBuilder {
            pool,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            obs: None,
            max_batch_rows: DEFAULT_MAX_BATCH_ROWS,
        }
    }

    /// This service's observability bundle: its metrics registry, trace
    /// collector, and slow-query log. The serving layer toggles tracing and
    /// exports snapshots through this handle.
    pub fn obs(&self) -> &Arc<Observability> {
        &self.obs
    }

    /// Answers a composite-task query `Q` given as primitive-task indices.
    ///
    /// Runs under a `service.query` span. If the calling thread carries no
    /// request context (direct library use), one rooted at this service's
    /// collector is installed for the duration of the call.
    pub fn query(&self, tasks: &[usize]) -> Result<QueryResult, QueryError> {
        ensure_context(&self.obs.trace, || self.query_traced(tasks))
    }

    fn query_traced(&self, tasks: &[usize]) -> Result<QueryResult, QueryError> {
        let _span = span("service.query");
        let start = Instant::now();

        // Cache lookup is keyed by the *sorted* task set; the entry is
        // replayed in the requested order (query order defines the logit
        // layout). Invalid queries never form a valid key — duplicates
        // shrink under dedup and are caught here, the rest fall through to
        // `consolidate`, which produces the specific error.
        let mut key: Vec<usize> = tasks.to_vec();
        key.sort_unstable();
        for w in key.windows(2) {
            if w[0] == w[1] {
                self.reject();
                return Err(QueryError::DuplicateTask(w[0]));
            }
        }

        if let Some((model, params)) = {
            let mut cache = self.cache.lock().unwrap();
            cache.get(&key).map(|e| (e.assemble(tasks), e.params))
        } {
            let stats = ConsolidationStats {
                assembly_secs: start.elapsed().as_secs_f64(),
                num_experts: tasks.len(),
                params,
                cache_hit: true,
            };
            self.obs.flight.record("cache.hit", task_list(&key));
            self.record_served(&stats);
            return Ok(QueryResult {
                class_layout: model.class_layout(),
                model,
                stats,
            });
        }

        self.obs.flight.record("cache.miss", task_list(&key));
        let generation = self.generation.load(Ordering::Acquire);
        let result = {
            let pool = self.pool.read().unwrap();
            pool.consolidate(tasks)
        };
        match result {
            Ok((model, cstats)) => {
                self.admit(key, &model, cstats.params, generation);
                self.record_served(&cstats);
                Ok(QueryResult {
                    class_layout: model.class_layout(),
                    model,
                    stats: cstats,
                })
            }
            Err(e) => {
                self.reject();
                Err(e)
            }
        }
    }

    /// Caches a freshly consolidated model unless the pool changed while
    /// it was being assembled.
    fn admit(&self, key: Vec<usize>, model: &BranchedModel, params: usize, generation: u64) {
        let mut branches = model.shared_branches();
        branches.sort_unstable_by_key(|b| b.task_index);
        let entry = CacheEntry {
            arch: model.arch.clone(),
            library: model.shared_library(),
            branches,
            params,
            generation,
        };
        let mut cache = self.cache.lock().unwrap();
        if self.generation.load(Ordering::Acquire) == entry.generation {
            cache.insert(key, entry);
            self.metrics.cache_entries.set(cache.entries.len() as f64);
        }
    }

    fn record_served(&self, cstats: &ConsolidationStats) {
        // `queries_served` is bumped *before* the hit/miss counter. A
        // snapshot reads counters in name order (`service.cache.hits` <
        // `service.queries_served`), so observers never see
        // `hits + misses > queries_served` — the counters converge to
        // equality at quiescence but can only ever lag, not lead.
        self.metrics.served.inc();
        self.metrics
            .assembly_ns
            .add((cstats.assembly_secs.max(0.0) * 1e9) as u64);
        self.metrics.assembly.record(cstats.assembly_secs);
        if cstats.cache_hit {
            self.metrics.hits.inc();
        } else {
            self.metrics.misses.inc();
        }
    }

    fn reject(&self) {
        self.metrics.rejected.inc();
    }

    /// The flight recorder this service reports cache activity to.
    pub fn flight(&self) -> &Arc<poe_obs::FlightRecorder> {
        &self.obs.flight
    }

    /// Classifies a whole batch of feature rows against the task set `Q`
    /// with **one** consolidation and one forward pass per chunk — the
    /// entry point behind the serve layer's micro-batching scheduler.
    ///
    /// The consolidation goes through [`QueryService::query`], so it
    /// shares the consolidation cache (and its hit/miss accounting) with
    /// single-sample traffic. `inputs` must be `[n, …]` with the
    /// per-sample shape the pool expects; row `i` of the result is the
    /// prediction for row `i` of the input, exactly what single-sample
    /// `infer` would have produced. Batches larger than the configured
    /// `max_batch_rows` run as several chunked forward passes.
    ///
    /// Records `service.batch.{calls,rows}` counters plus the
    /// `service.batch.size` and `service.batch.infer_secs` histograms.
    pub fn predict_batch(
        &self,
        tasks: &[usize],
        inputs: &Tensor,
    ) -> Result<Vec<Prediction>, QueryError> {
        ensure_context(&self.obs.trace, || self.predict_batch_traced(tasks, inputs))
    }

    fn predict_batch_traced(
        &self,
        tasks: &[usize],
        inputs: &Tensor,
    ) -> Result<Vec<Prediction>, QueryError> {
        let _span = span("service.predict_batch");
        let dims = inputs.dims();
        assert!(dims.len() >= 2, "predict_batch expects [n, …] inputs");
        let rows = dims[0];
        let r = self.query(tasks)?;

        let start = Instant::now();
        let preds = if rows <= self.max_batch_rows {
            r.model.predict_with_provenance(inputs)
        } else {
            // Row-major storage: a run of whole rows is a contiguous slice.
            let row_len: usize = dims[1..].iter().product();
            let data = inputs.data();
            let mut preds = Vec::with_capacity(rows);
            let mut at = 0;
            while at < rows {
                let take = (rows - at).min(self.max_batch_rows);
                let mut shape = dims.to_vec();
                shape[0] = take;
                let chunk =
                    Tensor::from_vec(data[at * row_len..(at + take) * row_len].to_vec(), shape);
                preds.extend(r.model.predict_with_provenance(&chunk));
                at += take;
            }
            preds
        };
        self.metrics.batch_calls.inc();
        self.metrics.batch_rows.add(rows as u64);
        self.metrics.batch_size.record_n(rows as u64);
        self.metrics
            .batch_infer
            .record(start.elapsed().as_secs_f64());
        Ok(preds)
    }

    /// Answers a query phrased as *global class ids* (e.g. "cat, fox,
    /// wolf"): the smallest set of primitive tasks covering all the classes
    /// is consolidated.
    pub fn query_classes(&self, classes: &[usize]) -> Result<QueryResult, QueryError> {
        let tasks: Vec<usize> = {
            let pool = self.pool.read().unwrap();
            let h = pool.hierarchy();
            let mut seen = vec![false; h.num_primitives()];
            let mut tasks = Vec::new();
            for &c in classes {
                if c >= h.num_classes() {
                    return Err(QueryError::UnknownTask(c));
                }
                let t = h.primitive_of_class(c);
                if !seen[t] {
                    seen[t] = true;
                    tasks.push(t);
                }
            }
            tasks
        };
        self.query(&tasks)
    }

    /// Installs (or replaces) an expert while the service is live,
    /// bumping its version. Cached consolidations are invalidated so
    /// subsequent hits cannot serve the replaced weights; in-flight
    /// queries keep their already-assembled (copy-on-write) models.
    /// Returns the expert's new version.
    pub fn install_expert(&self, expert: Expert) -> u64 {
        let mut pool = self.pool.write().unwrap();
        self.generation.fetch_add(1, Ordering::AcqRel);
        let evicted = self.invalidate_cache();
        self.obs.flight.record(
            "cache.invalidate",
            format!("task={} evicted={evicted}", expert.task_index),
        );
        pool.insert_expert(expert)
    }

    /// Hot-swaps one expert from the pool's backing store: re-reads the
    /// store's *current on-disk index* (picking up a segment that a
    /// re-extraction atomically replaced), then installs the fresh
    /// version under the generation guard. The store I/O happens before
    /// any lock is taken, so queries keep flowing while the replacement
    /// loads, and a failed reload leaves the old version serving. Returns
    /// the installed version.
    pub fn reload_expert(&self, task: usize) -> Result<u64, QueryError> {
        // Phase 1 — no locks: pull the replacement out of the store.
        let loaded = {
            let pool = self.pool.read().unwrap();
            pool.reload_from_source(task)
        }?;
        // A mid-swap crash (chaos-injected here) happens after the store
        // read but before installation: no lock is held, so nothing is
        // poisoned and the old version keeps serving.
        poe_chaos::maybe_panic(poe_chaos::sites::POOL_SWAP_PANIC);
        // Phase 2 — the write lock covers only the in-memory install.
        let mut pool = self.pool.write().unwrap();
        self.generation.fetch_add(1, Ordering::AcqRel);
        let evicted = self.invalidate_cache();
        let version = pool.install_loaded(loaded);
        self.obs.flight.record(
            "expert.swap",
            format!("task={task} version={version} evicted={evicted}"),
        );
        Ok(version)
    }

    /// Clears the consolidation cache, returning how many entries went.
    fn invalidate_cache(&self) -> usize {
        let evicted = {
            let mut cache = self.cache.lock().unwrap();
            let n = cache.entries.len();
            cache.clear();
            n
        };
        self.metrics.cache_entries.set(0.0);
        evicted
    }

    /// Number of task sets currently cached.
    pub fn cached_consolidations(&self) -> usize {
        self.cache.lock().unwrap().entries.len()
    }

    /// Current counters, reconstructed from the metrics registry.
    ///
    /// Reads are ordered so the invariant `cache_hits + cache_misses ≤
    /// queries_served` holds even against concurrent recording (see
    /// `record_served`).
    pub fn stats(&self) -> ServiceStats {
        let cache_hits = self.metrics.hits.get();
        let cache_misses = self.metrics.misses.get();
        let queries_served = self.metrics.served.get();
        ServiceStats {
            queries_served,
            queries_rejected: self.metrics.rejected.get(),
            total_assembly_secs: self.metrics.assembly_ns.get() as f64 * 1e-9,
            cache_hits,
            cache_misses,
            assembly_latency: self.metrics.assembly.snapshot(),
        }
    }

    /// Read access to the underlying pool.
    pub fn with_pool<R>(&self, f: impl FnOnce(&ExpertPool) -> R) -> R {
        f(&self.pool.read().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_data::ClassHierarchy;
    use poe_nn::layers::{Linear, Relu, Sequential};
    use poe_tensor::{Prng, Tensor};

    fn toy_pool(num_tasks: usize, with_experts: &[usize]) -> ExpertPool {
        let mut rng = Prng::seed_from_u64(3);
        let hierarchy = ClassHierarchy::contiguous(3 * num_tasks, num_tasks);
        let library = Sequential::new()
            .push(Linear::new("lib", 4, 5, &mut rng))
            .push(Relu::new());
        let mut pool = ExpertPool::new(hierarchy, library);
        for &t in with_experts {
            let classes = pool.hierarchy().primitive(t).classes.clone();
            let head =
                Sequential::new().push(Linear::new(&format!("e{t}"), 5, classes.len(), &mut rng));
            pool.insert_expert(Expert {
                task_index: t,
                classes,
                head,
            });
        }
        pool
    }

    fn service(num_tasks: usize, with_experts: &[usize]) -> QueryService {
        QueryService::builder(toy_pool(num_tasks, with_experts)).build()
    }

    #[test]
    fn cache_hits_share_storage_with_the_entry() {
        let svc = service(4, &[0, 1, 2, 3]);
        // The miss admits its own shared handles to the cache, so the hit
        // must hand back the very same trunk allocation — zero copies.
        let miss = svc.query(&[0, 2]).unwrap();
        let hit = svc.query(&[0, 2]).unwrap();
        assert!(hit.stats.cache_hit);
        assert!(Arc::ptr_eq(
            &miss.model.shared_library(),
            &hit.model.shared_library()
        ));
        // Running the hit's model detaches it lazily without disturbing
        // the cached entry.
        let m = hit.model;
        m.infer(&Tensor::zeros([1, 4]));
        let again = svc.query(&[0, 2]).unwrap();
        assert!(Arc::ptr_eq(
            &miss.model.shared_library(),
            &again.model.shared_library()
        ));
    }

    #[test]
    fn query_returns_model_and_updates_stats() {
        let svc = service(4, &[0, 1, 2, 3]);
        let r = svc.query(&[1, 3]).unwrap();
        assert_eq!(r.class_layout, vec![3, 4, 5, 9, 10, 11]);
        assert_eq!(r.stats.num_experts, 2);
        let s = svc.stats();
        assert_eq!(s.queries_served, 1);
        assert_eq!(s.queries_rejected, 0);
        assert_eq!(s.assembly_latency.count(), 1);
        assert!(s.assembly_p99_secs().unwrap() >= s.assembly_p50_secs().unwrap());
    }

    #[test]
    fn failed_queries_count_as_rejected() {
        let svc = service(4, &[0]);
        assert!(svc.query(&[2]).is_err());
        assert_eq!(svc.stats().queries_rejected, 1);
    }

    #[test]
    fn class_query_finds_covering_tasks() {
        let svc = service(4, &[0, 1, 2, 3]);
        // Classes 0 and 7 live in tasks 0 and 2.
        let r = svc.query_classes(&[0, 7]).unwrap();
        assert_eq!(r.stats.num_experts, 2);
        assert!(r.class_layout.contains(&7));
    }

    #[test]
    fn install_expert_enables_new_queries() {
        let svc = service(3, &[0]);
        assert!(svc.query(&[1]).is_err());
        let mut rng = Prng::seed_from_u64(4);
        let classes = svc.with_pool(|p| p.hierarchy().primitive(1).classes.clone());
        let version = svc.install_expert(Expert {
            task_index: 1,
            classes,
            head: Sequential::new().push(Linear::new("late", 5, 3, &mut rng)),
        });
        assert_eq!(version, 1);
        assert!(svc.query(&[1]).is_ok());
    }

    /// In-memory [`ExpertSource`] whose single expert can be replaced
    /// out of band, simulating a re-extraction + store re-save.
    struct SwapSource {
        expert: Mutex<(Expert, u64)>,
    }

    impl crate::pool::ExpertSource for SwapSource {
        fn catalog(&self) -> Vec<crate::pool::SourceEntry> {
            let (e, v) = &*self.expert.lock().unwrap();
            vec![crate::pool::SourceEntry {
                task: e.task_index,
                version: *v,
                bytes: 64,
            }]
        }

        fn load(
            &self,
            task: usize,
        ) -> Result<crate::pool::LoadedExpert, poe_models::serialize::SerializeError> {
            let (e, v) = &*self.expert.lock().unwrap();
            if task != e.task_index {
                return Err(poe_models::serialize::SerializeError::Format(format!(
                    "task {task} not in source"
                )));
            }
            Ok(crate::pool::LoadedExpert {
                expert: e.clone(),
                quantized: None,
                version: *v,
            })
        }

        fn reload(
            &self,
            task: usize,
        ) -> Result<crate::pool::LoadedExpert, poe_models::serialize::SerializeError> {
            self.load(task)
        }
    }

    #[test]
    fn reload_expert_hot_swaps_and_invalidates_cache() {
        let mut rng = Prng::seed_from_u64(21);
        let mut pool = toy_pool(2, &[0, 1]);
        let classes = pool.hierarchy().primitive(0).classes.clone();
        let head = Sequential::new().push(Linear::new("e0", 5, classes.len(), &mut rng));
        let source = Arc::new(SwapSource {
            expert: Mutex::new((
                Expert {
                    task_index: 0,
                    classes: classes.clone(),
                    head: head.clone(),
                },
                2,
            )),
        });
        pool.attach_source(source.clone());
        let svc = QueryService::builder(pool).build();

        let x = Tensor::randn([2, 4], 1.0, &mut Prng::seed_from_u64(22));
        let before = svc.query(&[0]).unwrap();
        let y_before = before.model.infer(&x);
        assert_eq!(svc.cached_consolidations(), 1);

        // A query mid-swap keeps its already-assembled model.
        let version = svc.reload_expert(0).unwrap();
        assert_eq!(version, 2);
        assert_eq!(svc.with_pool(|p| p.expert_version(0)), Some(2));
        assert_eq!(svc.cached_consolidations(), 0, "swap clears the cache");
        assert!(before.model.infer(&x).max_abs_diff(&y_before) == 0.0);

        // Fresh queries see the swapped weights.
        let after = svc.query(&[0]).unwrap();
        assert!(
            after.model.infer(&x).max_abs_diff(&y_before) > 0.0,
            "swap must change served weights"
        );

        // Swapping a task the store does not know is a typed error and
        // leaves the pool serving the old weights.
        let err = svc.reload_expert(1).unwrap_err();
        assert!(matches!(err, QueryError::ExpertLoad { task: 1, .. }));
        assert!(svc.query(&[1]).is_ok());
    }

    #[test]
    fn concurrent_queries_succeed() {
        let svc = std::sync::Arc::new(service(6, &[0, 1, 2, 3, 4, 5]));
        let mut handles = Vec::new();
        for i in 0..8 {
            let svc = svc.clone();
            handles.push(std::thread::spawn(move || {
                let tasks = [i % 6, (i + 1) % 6];
                svc.query(&tasks).map(|r| r.stats.num_experts)
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap().unwrap(), 2);
        }
        assert_eq!(svc.stats().queries_served, 8);
    }

    #[test]
    fn repeat_query_hits_the_cache_with_identical_output() {
        let svc = service(4, &[0, 1, 2, 3]);
        let x = Tensor::randn([2, 4], 1.0, &mut Prng::seed_from_u64(11));
        let cold = svc.query(&[1, 3]).unwrap();
        assert!(!cold.stats.cache_hit);
        let warm = svc.query(&[1, 3]).unwrap();
        assert!(warm.stats.cache_hit);
        assert_eq!(warm.class_layout, cold.class_layout);
        assert_eq!(warm.stats.params, cold.stats.params);
        assert_eq!(warm.model.infer(&x), cold.model.infer(&x));
        let s = svc.stats();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
    }

    #[test]
    fn cache_hit_replays_any_query_order() {
        let svc = service(4, &[0, 1, 2, 3]);
        svc.query(&[0, 2]).unwrap();
        // Same set, reversed order: must hit and honor the new layout.
        let r = svc.query(&[2, 0]).unwrap();
        assert!(r.stats.cache_hit);
        assert_eq!(r.class_layout, vec![6, 7, 8, 0, 1, 2]);
        assert_eq!(svc.stats().cache_hits, 1);
    }

    #[test]
    fn install_expert_invalidates_cache() {
        let svc = service(3, &[0, 1, 2]);
        svc.query(&[0, 1]).unwrap();
        assert_eq!(svc.cached_consolidations(), 1);
        let mut rng = Prng::seed_from_u64(5);
        let classes = svc.with_pool(|p| p.hierarchy().primitive(1).classes.clone());
        svc.install_expert(Expert {
            task_index: 1,
            classes,
            head: Sequential::new().push(Linear::new("v2", 5, 3, &mut rng)),
        });
        assert_eq!(svc.cached_consolidations(), 0);
        // The next query re-consolidates against the fresh expert.
        let r = svc.query(&[0, 1]).unwrap();
        assert!(!r.stats.cache_hit);
    }

    #[test]
    fn cache_capacity_is_bounded_lru() {
        let mut rng = Prng::seed_from_u64(3);
        let hierarchy = ClassHierarchy::contiguous(15, 5);
        let library = Sequential::new()
            .push(Linear::new("lib", 4, 5, &mut rng))
            .push(Relu::new());
        let mut pool = ExpertPool::new(hierarchy, library);
        for t in 0..5 {
            let classes = pool.hierarchy().primitive(t).classes.clone();
            let head =
                Sequential::new().push(Linear::new(&format!("e{t}"), 5, classes.len(), &mut rng));
            pool.insert_expert(Expert {
                task_index: t,
                classes,
                head,
            });
        }
        let svc = QueryService::builder(pool).cache_capacity(2).build();
        svc.query(&[0]).unwrap();
        svc.query(&[1]).unwrap();
        svc.query(&[2]).unwrap(); // evicts {0}
        assert_eq!(svc.cached_consolidations(), 2);
        assert!(!svc.query(&[0]).unwrap().stats.cache_hit);
        assert!(svc.query(&[2]).unwrap().stats.cache_hit);
    }

    #[test]
    fn duplicate_tasks_rejected_before_cache() {
        let svc = service(3, &[0, 1, 2]);
        svc.query(&[0, 1]).unwrap();
        assert_eq!(
            svc.query(&[0, 1, 0]).unwrap_err(),
            QueryError::DuplicateTask(0)
        );
        assert_eq!(svc.stats().queries_rejected, 1);
    }

    #[test]
    fn idle_service_reports_no_latency_stats() {
        let svc = service(3, &[0, 1, 2]);
        let s = svc.stats();
        assert_eq!(s.queries_served, 0);
        assert_eq!(s.mean_assembly_secs(), None);
        assert_eq!(s.assembly_p50_secs(), None);
        assert_eq!(s.assembly_p99_secs(), None);
        // After one query the percentiles materialize.
        svc.query(&[0]).unwrap();
        let s = svc.stats();
        assert!(s.mean_assembly_secs().unwrap() >= 0.0);
        assert!(s.assembly_p99_secs().unwrap() > 0.0);
    }

    #[test]
    fn stats_mirror_the_metrics_registry() {
        let svc = service(3, &[0, 1, 2]);
        svc.query(&[0, 1]).unwrap();
        svc.query(&[0, 1]).unwrap();
        assert!(svc.query(&[9]).is_err());
        let snap = svc.obs().registry.snapshot();
        assert_eq!(snap.counters["service.queries_served"], 2);
        assert_eq!(snap.counters["service.queries_rejected"], 1);
        assert_eq!(snap.counters["service.cache.hits"], 1);
        assert_eq!(snap.counters["service.cache.misses"], 1);
        assert_eq!(snap.gauges["service.cache.entries"], 1.0);
        assert_eq!(snap.histograms["service.assembly_secs"].count(), 2);
        let s = svc.stats();
        assert_eq!(s.queries_served, 2);
        assert_eq!(s.cache_hits + s.cache_misses, s.queries_served);
    }

    #[test]
    fn queries_emit_spans_when_tracing_is_enabled() {
        let svc = service(3, &[0, 1, 2]);
        svc.query(&[0]).unwrap(); // tracing off: nothing recorded
        assert_eq!(svc.obs().trace.spans_recorded(), 0);
        svc.obs().trace.set_enabled(true);
        svc.query(&[0, 1]).unwrap(); // miss: service.query + pool.consolidate
        svc.query(&[0, 1]).unwrap(); // hit: service.query only
        let names: Vec<&str> = svc.obs().trace.recent(16).iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            vec!["pool.consolidate", "service.query", "service.query"]
        );
    }

    #[test]
    fn builder_defaults_match_production_knobs() {
        let svc = QueryService::builder(toy_pool(3, &[0, 1, 2])).build();
        assert_eq!(svc.max_batch_rows, DEFAULT_MAX_BATCH_ROWS);
        svc.query(&[0]).unwrap();
        svc.query(&[1]).unwrap();
        assert_eq!(svc.cached_consolidations(), 2);
    }

    #[test]
    fn builder_zero_cache_capacity_disables_caching() {
        let svc = QueryService::builder(toy_pool(3, &[0, 1, 2]))
            .cache_capacity(0)
            .build();
        svc.query(&[0, 1]).unwrap();
        assert_eq!(svc.cached_consolidations(), 0);
        assert!(!svc.query(&[0, 1]).unwrap().stats.cache_hit);
    }

    #[test]
    fn builder_accepts_external_observability() {
        let obs = Observability::new();
        let svc = QueryService::builder(toy_pool(3, &[0, 1, 2]))
            .observability(Arc::clone(&obs))
            .build();
        svc.query(&[0]).unwrap();
        // The caller's bundle is the service's bundle: counters land there.
        assert!(Arc::ptr_eq(&obs, svc.obs()));
        assert_eq!(
            obs.registry.snapshot().counters["service.queries_served"],
            1
        );
    }

    #[test]
    #[should_panic(expected = "max_batch_rows")]
    fn builder_rejects_zero_batch_rows() {
        QueryService::builder(toy_pool(1, &[0])).max_batch_rows(0);
    }

    #[test]
    fn predict_batch_matches_single_sample_inference() {
        let svc = service(4, &[0, 1, 2, 3]);
        let mut rng = Prng::seed_from_u64(21);
        let batch = Tensor::randn([16, 4], 1.0, &mut rng);
        let preds = svc.predict_batch(&[2, 0], &batch).unwrap();
        assert_eq!(preds.len(), 16);
        let model = svc.query(&[2, 0]).unwrap().model;
        for (i, p) in preds.iter().enumerate() {
            let row = Tensor::from_vec(batch.row(i).to_vec(), [1, 4]);
            let single = model.predict_with_provenance(&row)[0];
            assert_eq!(p.class, single.class);
            assert_eq!(p.task_index, single.task_index);
            assert!((p.confidence - single.confidence).abs() < 1e-5);
        }
    }

    #[test]
    fn predict_batch_chunks_large_inputs_identically() {
        let pool = toy_pool(3, &[0, 1, 2]);
        let svc = QueryService::builder(pool).max_batch_rows(2).build();
        let whole = QueryService::builder(toy_pool(3, &[0, 1, 2])).build();
        let mut rng = Prng::seed_from_u64(22);
        let batch = Tensor::randn([5, 4], 1.0, &mut rng);
        let chunked = svc.predict_batch(&[0, 2], &batch).unwrap();
        let reference = whole.predict_batch(&[0, 2], &batch).unwrap();
        assert_eq!(chunked.len(), 5);
        for (c, r) in chunked.iter().zip(&reference) {
            assert_eq!(c.class, r.class);
            assert!((c.confidence - r.confidence).abs() < 1e-6);
        }
    }

    #[test]
    fn predict_batch_shares_the_consolidation_cache() {
        let svc = service(3, &[0, 1, 2]);
        svc.query(&[1, 2]).unwrap();
        let x = Tensor::zeros([3, 4]);
        svc.predict_batch(&[1, 2], &x).unwrap();
        let s = svc.stats();
        // The batch consolidation hit the entry admitted by the query.
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
    }

    #[test]
    fn predict_batch_records_batch_metrics() {
        let svc = service(3, &[0, 1, 2]);
        let x = Tensor::zeros([7, 4]);
        svc.predict_batch(&[0], &x).unwrap();
        svc.predict_batch(&[0], &x).unwrap();
        let snap = svc.obs().registry.snapshot();
        assert_eq!(snap.counters["service.batch.calls"], 2);
        assert_eq!(snap.counters["service.batch.rows"], 14);
        assert_eq!(snap.histograms["service.batch.size"].count(), 2);
        assert_eq!(snap.histograms["service.batch.infer_secs"].count(), 2);
        assert!(
            snap.histograms["service.batch.size"]
                .quantile_n(0.5)
                .unwrap()
                >= 7
        );
    }

    #[test]
    fn predict_batch_propagates_query_errors() {
        let svc = service(3, &[0]);
        let x = Tensor::zeros([2, 4]);
        assert!(matches!(
            svc.predict_batch(&[1], &x),
            Err(QueryError::MissingExpert(1))
        ));
        assert_eq!(svc.stats().queries_rejected, 1);
        assert_eq!(
            svc.obs().registry.snapshot().counters["service.batch.calls"],
            0
        );
    }
}
