//! Preprocessing phase, step 2: **expert extraction by conditional
//! knowledge distillation** (Section 4.1, Eq. (2)–(4)).
//!
//! For each primitive task `H_i`, CKD trains a tiny expert head on top of
//! the *frozen* library with
//! `L_CKD = L_soft + α·L_scale`, where both terms compare the expert's
//! logits with the oracle's **sub-logits** `t_{H_i}` over the **full**
//! training set — including out-of-distribution samples, which is what
//! keeps experts properly unconfident about classes they do not know.
//!
//! Because the library is frozen, its features over the training set are
//! precomputed once (`library.forward(inputs, eval)`) and the expert head
//! trains directly on those features — numerically identical to the paper's
//! "freeze library, update only conv4" and much faster.

use poe_nn::layers::Sequential;
use poe_nn::loss::CkdLoss;
use poe_nn::train::{train_batches, TrainConfig, TrainReport};
use poe_tensor::Tensor;

/// Configuration of one CKD expert extraction.
#[derive(Debug, Clone)]
pub struct CkdConfig {
    /// The CKD loss (temperature, α, term flags).
    pub loss: CkdLoss,
    /// Optimization settings for the expert head.
    pub train: TrainConfig,
}

impl CkdConfig {
    /// The paper's loss configuration (`α = 0.3`, both terms) with the
    /// given training settings and `T = 4`.
    pub fn paper(train: TrainConfig) -> Self {
        CkdConfig {
            loss: CkdLoss::paper(4.0),
            train,
        }
    }
}

/// Output of [`extract_expert`].
pub struct ExpertExtraction {
    /// The trained expert head (maps library features to `|H_i|` logits).
    pub head: Sequential,
    /// Training history.
    pub report: TrainReport,
}

/// Trains one expert head by CKD.
///
/// * `library_features` — frozen-library features of the **full** training
///   set, `[n × w3]`.
/// * `oracle_sub_logits` — the oracle's sub-logits `t_{H_i}` for the same
///   rows, `[n × |H_i|]` (take `full_logits.select_cols(&task.classes)`).
/// * `head` — a freshly initialized expert head whose output width is
///   `|H_i|`.
///
/// # Panics
/// Panics if row counts disagree.
pub fn extract_expert(
    library_features: &Tensor,
    oracle_sub_logits: &Tensor,
    mut head: Sequential,
    cfg: &CkdConfig,
) -> ExpertExtraction {
    assert_eq!(
        library_features.dims()[0],
        oracle_sub_logits.rows(),
        "features and oracle sub-logits must align row-by-row"
    );
    let _span = poe_obs::span("ckd.extract_expert");
    let loss = cfg.loss;
    let report = train_batches(
        &mut head,
        library_features,
        &cfg.train,
        &mut |logits, idx| {
            let t = oracle_sub_logits.select_rows(idx);
            loss.eval(logits, &t)
        },
    );
    poe_obs::global_counter!("ckd.experts_extracted").inc();
    ExpertExtraction { head, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{eval_accuracy, logits_of, train_cross_entropy};
    use poe_data::synth::{generate, GaussianHierarchyConfig};
    use poe_models::{build_mlp_head, build_wrn_mlp, WrnConfig};
    use poe_nn::train::predict;
    use poe_nn::Module;
    use poe_tensor::ops::softmax;
    use poe_tensor::Prng;

    /// End-to-end CKD on a tiny problem: oracle → library features →
    /// expert; the expert must (a) classify its own task well and (b) stay
    /// unconfident on out-of-distribution samples.
    #[test]
    fn ckd_expert_is_accurate_and_calibrated() {
        let (split, h) = generate(
            &GaussianHierarchyConfig {
                dim: 8,
                ..GaussianHierarchyConfig::balanced(3, 3)
            }
            .with_samples(30, 12)
            .with_seed(21),
        );
        let mut rng = Prng::seed_from_u64(2);
        let mut oracle = build_wrn_mlp(&WrnConfig::new(10, 2.0, 2.0, 9).with_unit(8), 8, &mut rng);
        train_cross_entropy(&mut oracle, &split.train, &TrainConfig::new(30, 32, 0.08));
        assert!(eval_accuracy(&mut oracle, &split.test) > 0.6);

        // Library: reuse the oracle's trunk shape via a small student; for
        // this unit test, a freshly scratch-trained student trunk suffices.
        let mut student = build_wrn_mlp(&WrnConfig::new(10, 1.0, 1.0, 9).with_unit(8), 8, &mut rng);
        train_cross_entropy(&mut student, &split.train, &TrainConfig::new(20, 32, 0.08));
        let mut library = student.trunk().clone();
        library.set_trainable(false);

        let features = predict(&mut library, &split.train.inputs, 256);
        let oracle_logits = logits_of(&mut oracle, &split.train.inputs);

        let task = h.primitive(0).clone();
        let sub = oracle_logits.select_cols(&task.classes);
        let head = build_mlp_head(
            "e0",
            &WrnConfig::new(10, 1.0, 0.25, task.classes.len()).with_unit(8),
            task.classes.len(),
            &mut rng,
        );
        let cfg = CkdConfig::paper(TrainConfig::new(30, 32, 0.08));
        let ext = extract_expert(&features, &sub, head, &cfg);
        let mut expert = ext.head;

        // (a) In-task accuracy through library + expert.
        let view = split.test.task_view(&task.classes);
        let f_test = predict(&mut library, &view.inputs, 256);
        let logits = predict(&mut expert, &f_test, 256);
        let acc = poe_tensor::ops::accuracy(&logits, &view.labels);
        assert!(acc > 0.6, "expert in-task accuracy {acc}");

        // (b) Max confidence on OOD samples is lower than on in-task ones.
        let ood = split.test.out_of_task_view(&task.classes);
        let f_ood = predict(&mut library, &ood.inputs, 256);
        let p_ood = softmax(&predict(&mut expert, &f_ood, 256));
        let p_in = softmax(&logits);
        let mean_conf = |p: &Tensor| -> f64 {
            let m = p.max_rows();
            m.iter().map(|&x| x as f64).sum::<f64>() / m.len() as f64
        };
        let (ci, co) = (mean_conf(&p_in), mean_conf(&p_ood));
        assert!(
            co < ci - 0.05,
            "OOD confidence {co} not below in-task confidence {ci}"
        );
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_rows_panic() {
        let mut rng = Prng::seed_from_u64(3);
        let head = build_mlp_head(
            "e",
            &WrnConfig::new(10, 1.0, 0.25, 2).with_unit(4),
            2,
            &mut rng,
        );
        let feats = Tensor::zeros([5, 16]);
        let subs = Tensor::zeros([4, 2]);
        extract_expert(
            &feats,
            &subs,
            head,
            &CkdConfig::paper(TrainConfig::new(1, 4, 0.1)),
        );
    }
}
