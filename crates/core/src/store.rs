//! Standalone pool persistence: a self-describing on-disk **model store**.
//!
//! [`crate::pool::ExpertPool::save_to_dir`] persists weights but needs an
//! identically-structured pool to load into. The store adds a versioned
//! *manifest* capturing everything required to rebuild the pool from
//! nothing — the class hierarchy, the architecture hyperparameters, and
//! the set of pooled experts — completing the paper's framing of PoE as a
//! database that can be closed and reopened:
//!
//! ```text
//! pool_dir/
//!   manifest.poep      hierarchy + architecture + expert index
//!   library.poem       library weights
//!   experts.poem       POEM v4 segment: every expert head, offset-indexed
//!   expert_<t>.poem    legacy per-expert layout (still readable)
//! ```
//!
//! [`save_standalone`] writes the segment layout; [`load_standalone`]
//! opens it **lazily** — only the manifest, library, and segment *index*
//! are read at startup (O(1) in the catalog size), and each expert's
//! payload streams in on first use via the [`SegmentSource`] attached to
//! the pool. Directories from before the segment format (one
//! `expert_<t>.poem` per task) load eagerly exactly as they always did.
//! Byte-level format details live in `docs/FORMATS.md`.

use crate::pool::{Expert, ExpertPool, ExpertSource, LoadedExpert, SourceEntry};
use poe_data::{ClassHierarchy, PrimitiveTask};
use poe_models::serialize::{
    atomic_write, deserialize_module_quantized, encode_segment, load_module, load_module_quantized,
    read_segment_index, read_segment_payload, save_module, serialize_module,
    serialize_module_quantized, SegmentEntry, SerializeError,
};
use poe_models::wire::{WireBuf, WireRead};
use poe_models::{build_mlp_head_with_depth, build_wrn_mlp_with_depth, WrnConfig};
use poe_nn::layers::Sequential;
use poe_tensor::Prng;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

const MANIFEST_MAGIC: &[u8; 4] = b"POEP";
const MANIFEST_VERSION: u32 = 1;
const MANIFEST_FILE: &str = "manifest.poep";
/// File name of the POEM v4 expert segment inside a store directory.
pub const SEGMENT_FILE: &str = "experts.poem";

/// Everything needed to rebuild a pool's module structure from scratch.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSpec {
    /// The library student's architecture (its trunk is the library).
    pub student_arch: WrnConfig,
    /// `k_s` of the expert heads.
    pub expert_ks: f32,
    /// Library depth `ℓ` (shared groups).
    pub library_groups: usize,
    /// Input feature dimensionality.
    pub input_dim: usize,
}

fn put_string(buf: &mut WireBuf, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8]) -> Result<String, SerializeError> {
    if buf.remaining() < 4 {
        return Err(SerializeError::Format("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(SerializeError::Format("truncated string".into()));
    }
    let mut v = vec![0u8; len];
    buf.copy_to_slice(&mut v);
    String::from_utf8(v).map_err(|_| SerializeError::Format("non-utf8 string".into()))
}

fn put_arch(buf: &mut WireBuf, a: &WrnConfig) {
    buf.put_u32_le(a.depth as u32);
    buf.put_f32_le(a.kc);
    buf.put_f32_le(a.ks);
    buf.put_u32_le(a.unit as u32);
    buf.put_u32_le(a.num_classes as u32);
}

fn get_arch(buf: &mut &[u8]) -> Result<WrnConfig, SerializeError> {
    if buf.remaining() < 20 {
        return Err(SerializeError::Format("truncated architecture".into()));
    }
    Ok(WrnConfig {
        depth: buf.get_u32_le() as usize,
        kc: buf.get_f32_le(),
        ks: buf.get_f32_le(),
        unit: buf.get_u32_le() as usize,
        num_classes: buf.get_u32_le() as usize,
    })
}

/// Serializes the manifest for a pool with the given rebuild spec.
fn encode_manifest(pool: &ExpertPool, spec: &PoolSpec) -> WireBuf {
    let h = pool.hierarchy();
    let mut buf = WireBuf::new();
    buf.put_slice(MANIFEST_MAGIC);
    buf.put_u32_le(MANIFEST_VERSION);
    put_arch(&mut buf, &spec.student_arch);
    buf.put_f32_le(spec.expert_ks);
    buf.put_u32_le(spec.library_groups as u32);
    buf.put_u32_le(spec.input_dim as u32);
    put_string(&mut buf, &pool.library_arch);
    put_string(&mut buf, &pool.expert_arch);
    // Hierarchy.
    buf.put_u32_le(h.num_classes() as u32);
    buf.put_u32_le(h.num_primitives() as u32);
    for p in h.primitives() {
        put_string(&mut buf, &p.name);
        buf.put_u32_le(p.classes.len() as u32);
        for &c in &p.classes {
            buf.put_u32_le(c as u32);
        }
    }
    // Pooled experts.
    let pooled = pool.pooled_tasks();
    buf.put_u32_le(pooled.len() as u32);
    for t in pooled {
        buf.put_u32_le(t as u32);
    }
    buf
}

struct Manifest {
    spec: PoolSpec,
    library_arch: String,
    expert_arch: String,
    hierarchy: ClassHierarchy,
    pooled: Vec<usize>,
}

fn decode_manifest(mut buf: &[u8]) -> Result<Manifest, SerializeError> {
    if buf.remaining() < 8 {
        return Err(SerializeError::Format("truncated manifest header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MANIFEST_MAGIC {
        return Err(SerializeError::Format("bad manifest magic".into()));
    }
    let version = buf.get_u32_le();
    if version != MANIFEST_VERSION {
        return Err(SerializeError::Format(format!(
            "unsupported manifest version {version}"
        )));
    }
    let student_arch = get_arch(&mut buf)?;
    if buf.remaining() < 12 {
        return Err(SerializeError::Format("truncated spec".into()));
    }
    let expert_ks = buf.get_f32_le();
    let library_groups = buf.get_u32_le() as usize;
    let input_dim = buf.get_u32_le() as usize;
    let library_arch = get_string(&mut buf)?;
    let expert_arch = get_string(&mut buf)?;

    if buf.remaining() < 8 {
        return Err(SerializeError::Format("truncated hierarchy header".into()));
    }
    let num_classes = buf.get_u32_le() as usize;
    let num_primitives = buf.get_u32_le() as usize;
    let mut groups = Vec::with_capacity(num_primitives);
    for _ in 0..num_primitives {
        let name = get_string(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(SerializeError::Format("truncated task".into()));
        }
        let n = buf.get_u32_le() as usize;
        if buf.remaining() < 4 * n {
            return Err(SerializeError::Format("truncated task classes".into()));
        }
        let classes = (0..n).map(|_| buf.get_u32_le() as usize).collect();
        groups.push(PrimitiveTask { name, classes });
    }
    let hierarchy = ClassHierarchy::new(num_classes, groups);

    if buf.remaining() < 4 {
        return Err(SerializeError::Format("truncated expert index".into()));
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < 4 * n {
        return Err(SerializeError::Format("truncated expert list".into()));
    }
    let pooled = (0..n).map(|_| buf.get_u32_le() as usize).collect();

    Ok(Manifest {
        spec: PoolSpec {
            student_arch,
            expert_ks,
            library_groups,
            input_dim,
        },
        library_arch,
        expert_arch,
        hierarchy,
        pooled,
    })
}

/// Rebuilds the module skeleton of one expert head exactly the way the
/// preprocessing pipeline names and shapes it; the weights are then
/// overwritten from the stored payload.
fn build_head_skeleton(spec: &PoolSpec, hierarchy: &ClassHierarchy, task: usize) -> Sequential {
    let classes = &hierarchy.primitive(task).classes;
    let arch = WrnConfig {
        ks: spec.expert_ks,
        num_classes: classes.len(),
        ..spec.student_arch
    };
    let mut rng = Prng::seed_from_u64(0); // weights are overwritten
    build_mlp_head_with_depth(
        &format!("expert{task}"),
        &arch,
        spec.library_groups,
        classes.len(),
        &mut rng,
    )
}

/// Lazy expert backend over a POEM v4 segment file — the
/// [`ExpertSource`] that [`load_standalone`] attaches to the pool.
/// `load` seeks one payload out of the segment using the index read at
/// open time; `reload` re-reads the on-disk index first, so a segment
/// atomically replaced by a re-extraction is picked up (the hot-swap
/// path).
pub struct SegmentSource {
    path: PathBuf,
    spec: PoolSpec,
    hierarchy: ClassHierarchy,
    index: Mutex<BTreeMap<usize, SegmentEntry>>,
}

impl SegmentSource {
    /// Opens a segment file, reading and validating only its index.
    pub fn open(
        path: impl Into<PathBuf>,
        spec: PoolSpec,
        hierarchy: ClassHierarchy,
    ) -> Result<Self, SerializeError> {
        let path = path.into();
        let index = Self::index_map(read_segment_index(&path)?);
        Ok(SegmentSource {
            path,
            spec,
            hierarchy,
            index: Mutex::new(index),
        })
    }

    fn index_map(entries: Vec<SegmentEntry>) -> BTreeMap<usize, SegmentEntry> {
        entries.into_iter().map(|e| (e.task as usize, e)).collect()
    }

    fn load_entry(&self, entry: SegmentEntry) -> Result<LoadedExpert, SerializeError> {
        let task = entry.task as usize;
        let payload = read_segment_payload(&self.path, &entry)?;
        let mut head = build_head_skeleton(&self.spec, &self.hierarchy, task);
        let quantized = deserialize_module_quantized(&mut head, &payload)?;
        Ok(LoadedExpert {
            expert: Expert {
                task_index: task,
                classes: self.hierarchy.primitive(task).classes.clone(),
                head,
            },
            quantized,
            version: entry.version as u64,
        })
    }

    fn entry(&self, task: usize) -> Result<SegmentEntry, SerializeError> {
        self.index
            .lock()
            .unwrap()
            .get(&task)
            .copied()
            .ok_or_else(|| SerializeError::Format(format!("task {task} not in segment index")))
    }
}

impl ExpertSource for SegmentSource {
    fn catalog(&self) -> Vec<SourceEntry> {
        self.index
            .lock()
            .unwrap()
            .values()
            .map(|e| SourceEntry {
                task: e.task as usize,
                version: e.version as u64,
                bytes: e.len as u64,
            })
            .collect()
    }

    fn load(&self, task: usize) -> Result<LoadedExpert, SerializeError> {
        self.load_entry(self.entry(task)?)
    }

    fn reload(&self, task: usize) -> Result<LoadedExpert, SerializeError> {
        let fresh = Self::index_map(read_segment_index(&self.path)?);
        let entry = fresh.get(&task).copied();
        *self.index.lock().unwrap() = fresh;
        let entry = entry
            .ok_or_else(|| SerializeError::Format(format!("task {task} not in segment index")))?;
        self.load_entry(entry)
    }
}

/// Persists a pool **with its manifest** in the segment layout
/// (`manifest.poep` + `library.poem` + `experts.poem`), so
/// [`load_standalone`] can reopen it lazily without any pre-built
/// structure. Non-resident experts of a segment-backed pool are
/// materialized on the fly while writing. Returns total bytes written.
pub fn save_standalone(
    pool: &ExpertPool,
    spec: &PoolSpec,
    dir: impl AsRef<Path>,
) -> Result<u64, SerializeError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).map_err(SerializeError::Io)?;
    let manifest = encode_manifest(pool, spec);
    // Atomic (temp + fsync + rename): a crash mid-save leaves the
    // previous manifest intact instead of a torn store.
    atomic_write(dir.join(MANIFEST_FILE), manifest.as_ref()).map_err(SerializeError::Io)?;
    let library_bytes = save_module(dir.join("library.poem"), pool.library())?;
    let mut entries = Vec::new();
    for t in pool.pooled_tasks() {
        let loaded = pool.loaded_expert(t).ok_or_else(|| {
            SerializeError::Format(format!("expert {t} could not be materialized for save"))
        })?;
        let payload = match &loaded.quantized {
            Some(q) => serialize_module_quantized(&loaded.expert.head, q),
            None => serialize_module(&loaded.expert.head),
        };
        entries.push((
            t as u32,
            loaded.version.min(u32::MAX as u64) as u32,
            payload,
        ));
    }
    let segment = encode_segment(&entries);
    atomic_write(dir.join(SEGMENT_FILE), &segment).map_err(SerializeError::Io)?;
    Ok(manifest.len() as u64 + library_bytes + segment.len() as u64)
}

/// Reopens a pool saved by [`save_standalone`]: rebuilds the hierarchy
/// and library from the manifest, then attaches a lazy [`SegmentSource`]
/// over `experts.poem` — startup reads only the segment *index*, and
/// experts stream in on first query. Directories without a segment (the
/// pre-v4 per-file layout) load every `expert_<t>.poem` eagerly instead.
pub fn load_standalone(dir: impl AsRef<Path>) -> Result<(ExpertPool, PoolSpec), SerializeError> {
    let dir = dir.as_ref();
    let bytes = std::fs::read(dir.join(MANIFEST_FILE)).map_err(SerializeError::Io)?;
    let m = decode_manifest(&bytes)?;

    // Rebuild the library as the trunk of a freshly-built student (the
    // parameter names match the pipeline's construction), then overwrite
    // its weights from disk.
    let mut rng = Prng::seed_from_u64(0); // weights are overwritten below
    let student = build_wrn_mlp_with_depth(
        &m.spec.student_arch,
        m.spec.input_dim,
        m.spec.library_groups,
        &mut rng,
    );
    let (mut library, _) = student.into_parts();
    load_module(dir.join("library.poem"), &mut library)?;

    let mut pool = ExpertPool::new(m.hierarchy.clone(), library);
    pool.library_arch = m.library_arch;
    pool.expert_arch = m.expert_arch;

    let segment_path = dir.join(SEGMENT_FILE);
    if segment_path.is_file() {
        // Segment layout: validate the index now (a corrupt index means a
        // degraded start), defer every payload to first use. The segment
        // index, not the manifest's expert list, is the catalog of record.
        let source = SegmentSource::open(segment_path, m.spec.clone(), m.hierarchy.clone())?;
        pool.attach_source(Arc::new(source));
        return Ok((pool, m.spec));
    }

    // Legacy per-file layout: load everything eagerly, as before v4.
    for &t in &m.pooled {
        let classes = m.hierarchy.primitive(t).classes.clone();
        let mut head = build_head_skeleton(&m.spec, &m.hierarchy, t);
        // Version-3 expert files keep their int8 payload (the head stays
        // on placeholder weights, dequantized at assemble time); dense
        // v1/v2 files load as before and return no payload.
        let quantized = load_module_quantized(dir.join(format!("expert_{t}.poem")), &mut head)?;
        pool.insert_expert(Expert {
            task_index: t,
            classes,
            head,
        });
        if let Some(q) = quantized {
            pool.attach_quantized(t, q);
        }
    }
    Ok((pool, m.spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{preprocess, PipelineConfig};
    use crate::pool::QueryError;
    use poe_data::synth::{generate, GaussianHierarchyConfig};
    use poe_tensor::Tensor;

    fn built_pool() -> (ExpertPool, PoolSpec, poe_data::SplitDataset) {
        let cfg = GaussianHierarchyConfig {
            dim: 6,
            ..GaussianHierarchyConfig::balanced(3, 2)
        }
        .with_samples(10, 4)
        .with_seed(61);
        let (split, h) = generate(&cfg);
        let pipe = PipelineConfig {
            seed: 8,
            ..PipelineConfig::defaults(
                WrnConfig::new(10, 1.0, 1.0, 6).with_unit(4),
                WrnConfig::new(10, 1.0, 1.0, 6).with_unit(4),
                3,
            )
        };
        let pre = preprocess(&split.train, &h, &pipe, None);
        let spec = PoolSpec {
            student_arch: pipe.student_arch,
            expert_ks: pipe.expert_ks,
            library_groups: pipe.library_groups,
            input_dim: 6,
        };
        (pre.pool, spec, split)
    }

    #[test]
    fn standalone_round_trip_rebuilds_identical_pool() {
        let (pool, spec, _split) = built_pool();
        let dir = std::env::temp_dir().join("poe_standalone_test");
        std::fs::remove_dir_all(&dir).ok();
        let written = save_standalone(&pool, &spec, &dir).unwrap();
        assert!(written > pool.volumes().total_bytes);

        let (reopened, spec2) = load_standalone(&dir).unwrap();
        assert_eq!(spec, spec2);
        assert_eq!(reopened.num_experts(), pool.num_experts());
        assert_eq!(reopened.hierarchy(), pool.hierarchy());
        // The segment store opens lazily: nothing resident yet.
        assert!(reopened.has_source());
        assert_eq!(reopened.resident_experts(), 0);

        let x = Tensor::randn([4, 6], 1.0, &mut Prng::seed_from_u64(3));
        let (a, _) = pool.consolidate(&[0, 2]).unwrap();
        let (b, _) = reopened.consolidate(&[0, 2]).unwrap();
        assert!(a.infer(&x).max_abs_diff(&b.infer(&x)) < 1e-6);
        assert_eq!(reopened.resident_experts(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn standalone_round_trip_preserves_quantized_experts() {
        let (mut pool, spec, _split) = built_pool();
        let report = pool.quantize_experts();
        assert!(report.experts > 0);
        let dir = std::env::temp_dir().join("poe_standalone_quant_test");
        std::fs::remove_dir_all(&dir).ok();
        save_standalone(&pool, &spec, &dir).unwrap();

        let (reopened, _) = load_standalone(&dir).unwrap();
        for t in reopened.pooled_tasks() {
            // Force residency, then the int8 payload must be attached.
            reopened.expert(t).unwrap();
            assert!(reopened.is_quantized(t), "task {t} lost its payload");
        }
        // Identical int8 payloads ⇒ bit-identical assembled models.
        let x = Tensor::randn([4, 6], 1.0, &mut Prng::seed_from_u64(5));
        let (a, _) = pool.consolidate(&[0, 2]).unwrap();
        let (b, _) = reopened.consolidate(&[0, 2]).unwrap();
        assert!(a.infer(&x).max_abs_diff(&b.infer(&x)) < 1e-6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_is_an_error() {
        let (pool, spec, _) = built_pool();
        let dir = std::env::temp_dir().join("poe_standalone_corrupt");
        std::fs::remove_dir_all(&dir).ok();
        save_standalone(&pool, &spec, &dir).unwrap();
        // Truncate the manifest.
        let path = dir.join(MANIFEST_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_standalone(&dir).is_err());
        // Bad magic.
        std::fs::write(&path, b"NOPE").unwrap();
        assert!(load_standalone(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_weight_file_is_an_error() {
        let (pool, spec, _) = built_pool();
        let dir = std::env::temp_dir().join("poe_standalone_missing");
        std::fs::remove_dir_all(&dir).ok();
        save_standalone(&pool, &spec, &dir).unwrap();
        // A truncated segment index is detected at open time — the store
        // refuses to start rather than trusting bogus offsets.
        let seg = dir.join(SEGMENT_FILE);
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..20]).unwrap();
        assert!(matches!(
            load_standalone(&dir),
            Err(SerializeError::Corrupt(_))
        ));
        // With the segment gone entirely, the reader falls back to the
        // legacy per-file layout — whose files were never written here.
        std::fs::remove_file(&seg).unwrap();
        assert!(matches!(load_standalone(&dir), Err(SerializeError::Io(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_per_file_layout_still_loads() {
        let (pool, spec, _) = built_pool();
        let dir = std::env::temp_dir().join("poe_standalone_legacy");
        std::fs::remove_dir_all(&dir).ok();
        // Write the pre-v4 layout by hand: manifest + flat weight files.
        std::fs::create_dir_all(&dir).unwrap();
        atomic_write(
            dir.join(MANIFEST_FILE),
            encode_manifest(&pool, &spec).as_ref(),
        )
        .unwrap();
        pool.save_to_dir(&dir).unwrap();

        let (reopened, _) = load_standalone(&dir).unwrap();
        assert!(!reopened.has_source(), "legacy layout loads eagerly");
        assert_eq!(reopened.resident_experts(), pool.num_experts());
        let x = Tensor::randn([4, 6], 1.0, &mut Prng::seed_from_u64(7));
        let (a, _) = pool.consolidate(&[0, 1]).unwrap();
        let (b, _) = reopened.consolidate(&[0, 1]).unwrap();
        assert!(a.infer(&x).max_abs_diff(&b.infer(&x)) < 1e-6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn per_payload_corruption_fails_only_that_expert() {
        let (pool, spec, _) = built_pool();
        let dir = std::env::temp_dir().join("poe_standalone_payload_corrupt");
        std::fs::remove_dir_all(&dir).ok();
        save_standalone(&pool, &spec, &dir).unwrap();
        // Flip a byte inside the *last* payload: the index stays valid.
        let seg = dir.join(SEGMENT_FILE);
        let mut bytes = std::fs::read(&seg).unwrap();
        let index = read_segment_index(&seg).unwrap();
        let last = index.last().unwrap();
        let mid = last.offset as usize + last.len as usize / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&seg, &bytes).unwrap();

        let (reopened, _) = load_standalone(&dir).unwrap();
        let bad_task = last.task as usize;
        // Healthy experts keep serving.
        let ok_query: Vec<usize> = reopened
            .pooled_tasks()
            .into_iter()
            .filter(|&t| t != bad_task)
            .collect();
        reopened.consolidate(&ok_query).unwrap();
        // The corrupted one fails typed, at query time.
        let err = reopened.consolidate(&[bad_task]).unwrap_err();
        assert!(
            matches!(err, QueryError::ExpertLoad { task, .. } if task == bad_task),
            "{err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resaved_segment_hot_swaps_through_reload() {
        let (pool, spec, _) = built_pool();
        let dir = std::env::temp_dir().join("poe_standalone_swap");
        std::fs::remove_dir_all(&dir).ok();
        save_standalone(&pool, &spec, &dir).unwrap();
        let (reader, _) = load_standalone(&dir).unwrap();
        let x = Tensor::randn([4, 6], 1.0, &mut Prng::seed_from_u64(9));
        let (before, _) = reader.consolidate(&[1]).unwrap();
        assert_eq!(reader.expert_version(1), Some(1));

        // A "re-extraction" elsewhere: reinstall expert 1 with perturbed
        // weights (version bumps to 2) and atomically re-save the store.
        let (mut writer, _) = load_standalone(&dir).unwrap();
        let mut expert = writer.expert(1).unwrap();
        use poe_nn::Module;
        expert.head.visit_params(&mut |p| {
            p.value.map_in_place(|v| v + 0.25);
        });
        let v = writer.insert_expert(expert);
        assert_eq!(v, 2);
        save_standalone(&writer, &spec, &dir).unwrap();

        // The open reader picks up the new version via reload.
        let loaded = reader.reload_from_source(1).unwrap();
        assert_eq!(loaded.version, 2);
        let mut reader = reader;
        reader.install_loaded(loaded);
        assert_eq!(reader.expert_version(1), Some(2));
        let (after, _) = reader.consolidate(&[1]).unwrap();
        assert!(after.infer(&x).max_abs_diff(&before.infer(&x)) > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
