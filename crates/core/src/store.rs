//! Standalone pool persistence: a self-describing on-disk **model store**.
//!
//! [`crate::pool::ExpertPool::save_to_dir`] persists weights but needs an
//! identically-structured pool to load into. The store adds a versioned
//! *manifest* capturing everything required to rebuild the pool from
//! nothing — the class hierarchy, the architecture hyperparameters, and
//! the set of pooled experts — completing the paper's framing of PoE as a
//! database that can be closed and reopened:
//!
//! ```text
//! pool_dir/
//!   manifest.poep      hierarchy + architecture + expert index
//!   library.poem       library weights
//!   expert_<t>.poem    one weight file per pooled expert
//! ```

use crate::pool::{Expert, ExpertPool};
use poe_data::{ClassHierarchy, PrimitiveTask};
use poe_models::serialize::{atomic_write, load_module, load_module_quantized, SerializeError};
use poe_models::wire::{WireBuf, WireRead};
use poe_models::{build_mlp_head_with_depth, build_wrn_mlp_with_depth, WrnConfig};
use poe_tensor::Prng;
use std::path::Path;

const MANIFEST_MAGIC: &[u8; 4] = b"POEP";
const MANIFEST_VERSION: u32 = 1;
const MANIFEST_FILE: &str = "manifest.poep";

/// Everything needed to rebuild a pool's module structure from scratch.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSpec {
    /// The library student's architecture (its trunk is the library).
    pub student_arch: WrnConfig,
    /// `k_s` of the expert heads.
    pub expert_ks: f32,
    /// Library depth `ℓ` (shared groups).
    pub library_groups: usize,
    /// Input feature dimensionality.
    pub input_dim: usize,
}

fn put_string(buf: &mut WireBuf, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8]) -> Result<String, SerializeError> {
    if buf.remaining() < 4 {
        return Err(SerializeError::Format("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(SerializeError::Format("truncated string".into()));
    }
    let mut v = vec![0u8; len];
    buf.copy_to_slice(&mut v);
    String::from_utf8(v).map_err(|_| SerializeError::Format("non-utf8 string".into()))
}

fn put_arch(buf: &mut WireBuf, a: &WrnConfig) {
    buf.put_u32_le(a.depth as u32);
    buf.put_f32_le(a.kc);
    buf.put_f32_le(a.ks);
    buf.put_u32_le(a.unit as u32);
    buf.put_u32_le(a.num_classes as u32);
}

fn get_arch(buf: &mut &[u8]) -> Result<WrnConfig, SerializeError> {
    if buf.remaining() < 20 {
        return Err(SerializeError::Format("truncated architecture".into()));
    }
    Ok(WrnConfig {
        depth: buf.get_u32_le() as usize,
        kc: buf.get_f32_le(),
        ks: buf.get_f32_le(),
        unit: buf.get_u32_le() as usize,
        num_classes: buf.get_u32_le() as usize,
    })
}

/// Serializes the manifest for a pool with the given rebuild spec.
fn encode_manifest(pool: &ExpertPool, spec: &PoolSpec) -> WireBuf {
    let h = pool.hierarchy();
    let mut buf = WireBuf::new();
    buf.put_slice(MANIFEST_MAGIC);
    buf.put_u32_le(MANIFEST_VERSION);
    put_arch(&mut buf, &spec.student_arch);
    buf.put_f32_le(spec.expert_ks);
    buf.put_u32_le(spec.library_groups as u32);
    buf.put_u32_le(spec.input_dim as u32);
    put_string(&mut buf, &pool.library_arch);
    put_string(&mut buf, &pool.expert_arch);
    // Hierarchy.
    buf.put_u32_le(h.num_classes() as u32);
    buf.put_u32_le(h.num_primitives() as u32);
    for p in h.primitives() {
        put_string(&mut buf, &p.name);
        buf.put_u32_le(p.classes.len() as u32);
        for &c in &p.classes {
            buf.put_u32_le(c as u32);
        }
    }
    // Pooled experts.
    let pooled = pool.pooled_tasks();
    buf.put_u32_le(pooled.len() as u32);
    for t in pooled {
        buf.put_u32_le(t as u32);
    }
    buf
}

struct Manifest {
    spec: PoolSpec,
    library_arch: String,
    expert_arch: String,
    hierarchy: ClassHierarchy,
    pooled: Vec<usize>,
}

fn decode_manifest(mut buf: &[u8]) -> Result<Manifest, SerializeError> {
    if buf.remaining() < 8 {
        return Err(SerializeError::Format("truncated manifest header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MANIFEST_MAGIC {
        return Err(SerializeError::Format("bad manifest magic".into()));
    }
    let version = buf.get_u32_le();
    if version != MANIFEST_VERSION {
        return Err(SerializeError::Format(format!(
            "unsupported manifest version {version}"
        )));
    }
    let student_arch = get_arch(&mut buf)?;
    if buf.remaining() < 12 {
        return Err(SerializeError::Format("truncated spec".into()));
    }
    let expert_ks = buf.get_f32_le();
    let library_groups = buf.get_u32_le() as usize;
    let input_dim = buf.get_u32_le() as usize;
    let library_arch = get_string(&mut buf)?;
    let expert_arch = get_string(&mut buf)?;

    if buf.remaining() < 8 {
        return Err(SerializeError::Format("truncated hierarchy header".into()));
    }
    let num_classes = buf.get_u32_le() as usize;
    let num_primitives = buf.get_u32_le() as usize;
    let mut groups = Vec::with_capacity(num_primitives);
    for _ in 0..num_primitives {
        let name = get_string(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(SerializeError::Format("truncated task".into()));
        }
        let n = buf.get_u32_le() as usize;
        if buf.remaining() < 4 * n {
            return Err(SerializeError::Format("truncated task classes".into()));
        }
        let classes = (0..n).map(|_| buf.get_u32_le() as usize).collect();
        groups.push(PrimitiveTask { name, classes });
    }
    let hierarchy = ClassHierarchy::new(num_classes, groups);

    if buf.remaining() < 4 {
        return Err(SerializeError::Format("truncated expert index".into()));
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < 4 * n {
        return Err(SerializeError::Format("truncated expert list".into()));
    }
    let pooled = (0..n).map(|_| buf.get_u32_le() as usize).collect();

    Ok(Manifest {
        spec: PoolSpec {
            student_arch,
            expert_ks,
            library_groups,
            input_dim,
        },
        library_arch,
        expert_arch,
        hierarchy,
        pooled,
    })
}

/// Persists a pool **with its manifest**, so [`load_standalone`] can
/// reopen it without any pre-built structure. Returns total bytes written.
pub fn save_standalone(
    pool: &ExpertPool,
    spec: &PoolSpec,
    dir: impl AsRef<Path>,
) -> Result<u64, SerializeError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).map_err(SerializeError::Io)?;
    let manifest = encode_manifest(pool, spec);
    // Atomic (temp + fsync + rename): a crash mid-save leaves the
    // previous manifest intact instead of a torn store.
    atomic_write(dir.join(MANIFEST_FILE), manifest.as_ref()).map_err(SerializeError::Io)?;
    let weights = pool.save_to_dir(dir)?;
    Ok(manifest.len() as u64 + weights)
}

/// Reopens a pool saved by [`save_standalone`]: rebuilds the hierarchy and
/// module structure from the manifest, then loads every weight file.
pub fn load_standalone(dir: impl AsRef<Path>) -> Result<(ExpertPool, PoolSpec), SerializeError> {
    let dir = dir.as_ref();
    let bytes = std::fs::read(dir.join(MANIFEST_FILE)).map_err(SerializeError::Io)?;
    let m = decode_manifest(&bytes)?;

    // Rebuild the library as the trunk of a freshly-built student (the
    // parameter names match the pipeline's construction), then overwrite
    // its weights from disk.
    let mut rng = Prng::seed_from_u64(0); // weights are overwritten below
    let student = build_wrn_mlp_with_depth(
        &m.spec.student_arch,
        m.spec.input_dim,
        m.spec.library_groups,
        &mut rng,
    );
    let (mut library, _) = student.into_parts();
    load_module(dir.join("library.poem"), &mut library)?;

    let mut pool = ExpertPool::new(m.hierarchy.clone(), library);
    pool.library_arch = m.library_arch;
    pool.expert_arch = m.expert_arch;
    for &t in &m.pooled {
        let classes = m.hierarchy.primitive(t).classes.clone();
        let arch = WrnConfig {
            ks: m.spec.expert_ks,
            num_classes: classes.len(),
            ..m.spec.student_arch
        };
        let mut head = build_mlp_head_with_depth(
            &format!("expert{t}"),
            &arch,
            m.spec.library_groups,
            classes.len(),
            &mut rng,
        );
        // Version-3 expert files keep their int8 payload (the head stays
        // on placeholder weights, dequantized at assemble time); dense
        // v1/v2 files load as before and return no payload.
        let quantized = load_module_quantized(dir.join(format!("expert_{t}.poem")), &mut head)?;
        pool.insert_expert(Expert {
            task_index: t,
            classes,
            head,
        });
        if let Some(q) = quantized {
            pool.attach_quantized(t, q);
        }
    }
    Ok((pool, m.spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{preprocess, PipelineConfig};
    use poe_data::synth::{generate, GaussianHierarchyConfig};
    use poe_tensor::Tensor;

    fn built_pool() -> (ExpertPool, PoolSpec, poe_data::SplitDataset) {
        let cfg = GaussianHierarchyConfig {
            dim: 6,
            ..GaussianHierarchyConfig::balanced(3, 2)
        }
        .with_samples(10, 4)
        .with_seed(61);
        let (split, h) = generate(&cfg);
        let pipe = PipelineConfig {
            seed: 8,
            ..PipelineConfig::defaults(
                WrnConfig::new(10, 1.0, 1.0, 6).with_unit(4),
                WrnConfig::new(10, 1.0, 1.0, 6).with_unit(4),
                3,
            )
        };
        let pre = preprocess(&split.train, &h, &pipe, None);
        let spec = PoolSpec {
            student_arch: pipe.student_arch,
            expert_ks: pipe.expert_ks,
            library_groups: pipe.library_groups,
            input_dim: 6,
        };
        (pre.pool, spec, split)
    }

    #[test]
    fn standalone_round_trip_rebuilds_identical_pool() {
        let (pool, spec, _split) = built_pool();
        let dir = std::env::temp_dir().join("poe_standalone_test");
        std::fs::remove_dir_all(&dir).ok();
        let written = save_standalone(&pool, &spec, &dir).unwrap();
        assert!(written > pool.volumes().total_bytes);

        let (reopened, spec2) = load_standalone(&dir).unwrap();
        assert_eq!(spec, spec2);
        assert_eq!(reopened.num_experts(), pool.num_experts());
        assert_eq!(reopened.hierarchy(), pool.hierarchy());

        let x = Tensor::randn([4, 6], 1.0, &mut Prng::seed_from_u64(3));
        let (a, _) = pool.consolidate(&[0, 2]).unwrap();
        let (b, _) = reopened.consolidate(&[0, 2]).unwrap();
        assert!(a.infer(&x).max_abs_diff(&b.infer(&x)) < 1e-6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn standalone_round_trip_preserves_quantized_experts() {
        let (mut pool, spec, _split) = built_pool();
        let report = pool.quantize_experts();
        assert!(report.experts > 0);
        let dir = std::env::temp_dir().join("poe_standalone_quant_test");
        std::fs::remove_dir_all(&dir).ok();
        save_standalone(&pool, &spec, &dir).unwrap();

        let (reopened, _) = load_standalone(&dir).unwrap();
        for t in reopened.pooled_tasks() {
            assert!(reopened.is_quantized(t), "task {t} lost its payload");
        }
        // Identical int8 payloads ⇒ bit-identical assembled models.
        let x = Tensor::randn([4, 6], 1.0, &mut Prng::seed_from_u64(5));
        let (a, _) = pool.consolidate(&[0, 2]).unwrap();
        let (b, _) = reopened.consolidate(&[0, 2]).unwrap();
        assert!(a.infer(&x).max_abs_diff(&b.infer(&x)) < 1e-6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_is_an_error() {
        let (pool, spec, _) = built_pool();
        let dir = std::env::temp_dir().join("poe_standalone_corrupt");
        std::fs::remove_dir_all(&dir).ok();
        save_standalone(&pool, &spec, &dir).unwrap();
        // Truncate the manifest.
        let path = dir.join(MANIFEST_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_standalone(&dir).is_err());
        // Bad magic.
        std::fs::write(&path, b"NOPE").unwrap();
        assert!(load_standalone(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_weight_file_is_an_error() {
        let (pool, spec, _) = built_pool();
        let dir = std::env::temp_dir().join("poe_standalone_missing");
        std::fs::remove_dir_all(&dir).ok();
        save_standalone(&pool, &spec, &dir).unwrap();
        std::fs::remove_file(dir.join("expert_1.poem")).unwrap();
        assert!(matches!(load_standalone(&dir), Err(SerializeError::Io(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
