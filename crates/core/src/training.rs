//! Shared training / evaluation helpers used by the PoE phases and by the
//! baseline methods.

use poe_data::Dataset;
use poe_nn::loss::{cross_entropy, kd_loss};
use poe_nn::train::{predict, train_batches, TrainConfig, TrainReport};
use poe_nn::Module;
use poe_tensor::ops::accuracy;
use poe_tensor::Tensor;

/// Inference batch size used by evaluation helpers.
pub const EVAL_BATCH: usize = 256;

/// Full-dataset logits of a model (inference mode, batched).
pub fn logits_of(model: &mut dyn Module, inputs: &Tensor) -> Tensor {
    predict(model, inputs, EVAL_BATCH)
}

/// Plain classification accuracy of a model on a dataset whose labels are
/// already in the model's output space.
pub fn eval_accuracy(model: &mut dyn Module, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let logits = logits_of(model, &data.inputs);
    accuracy(&logits, &data.labels)
}

/// *Task-specific accuracy* of a **generic** model (Section 5.2): restrict
/// the test set to `classes`, take the model's sub-logits for those classes,
/// and argmax within the task only.
pub fn eval_task_specific_accuracy(
    model: &mut dyn Module,
    test: &Dataset,
    classes: &[usize],
) -> f64 {
    let view = test.task_view(classes);
    if view.is_empty() {
        return 0.0;
    }
    let full = logits_of(model, &view.inputs);
    let sub = full.select_cols(classes);
    accuracy(&sub, &view.labels)
}

/// Trains a model from scratch with the cross-entropy loss on a dataset
/// whose labels match the model's output space (the paper's **Scratch**
/// setting when the dataset is a task view).
pub fn train_cross_entropy(
    model: &mut dyn Module,
    data: &Dataset,
    cfg: &TrainConfig,
) -> TrainReport {
    let labels = data.labels.clone();
    train_batches(model, &data.inputs, cfg, &mut |logits, idx| {
        let batch: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
        cross_entropy(logits, &batch)
    })
}

/// Like [`train_cross_entropy`] but reporting an evaluation metric every
/// `eval_every` epochs (used for learning curves — Figures 6/7).
pub fn train_cross_entropy_with_eval(
    model: &mut dyn Module,
    data: &Dataset,
    cfg: &TrainConfig,
    eval_every: usize,
    eval_fn: &mut dyn FnMut(&mut dyn Module) -> f64,
) -> TrainReport {
    let labels = data.labels.clone();
    poe_nn::train::train_batches_with_eval(
        model,
        &data.inputs,
        cfg,
        &mut |logits, idx| {
            let batch: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
            cross_entropy(logits, &batch)
        },
        eval_every,
        eval_fn,
    )
}

/// Distills a teacher into a student with the standard KD loss of Eq. (1),
/// using **precomputed** teacher logits aligned row-by-row with
/// `train_inputs` (the teacher runs once, not once per epoch).
pub fn train_distill(
    student: &mut dyn Module,
    train_inputs: &Tensor,
    teacher_logits: &Tensor,
    temperature: f32,
    cfg: &TrainConfig,
) -> TrainReport {
    assert_eq!(
        train_inputs.dims()[0],
        teacher_logits.rows(),
        "teacher logits must align with training inputs"
    );
    train_batches(student, train_inputs, cfg, &mut |logits, idx| {
        let t = teacher_logits.select_rows(idx);
        kd_loss(logits, &t, temperature, true)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_data::synth::{generate, GaussianHierarchyConfig};
    use poe_nn::layers::{Linear, Relu, Sequential};
    use poe_tensor::Prng;

    fn tiny_data() -> (poe_data::SplitDataset, poe_data::ClassHierarchy) {
        generate(
            &GaussianHierarchyConfig {
                dim: 8,
                ..GaussianHierarchyConfig::balanced(3, 2)
            }
            .with_samples(20, 10)
            .with_seed(3),
        )
    }

    fn small_net(in_dim: usize, out: usize, seed: u64) -> Sequential {
        let mut rng = Prng::seed_from_u64(seed);
        Sequential::new()
            .push(Linear::new("l1", in_dim, 24, &mut rng))
            .push(Relu::new())
            .push(Linear::new("l2", 24, out, &mut rng))
    }

    #[test]
    fn scratch_training_learns_the_global_task() {
        let (split, _) = tiny_data();
        let mut model = small_net(8, 6, 1);
        let cfg = TrainConfig::new(25, 32, 0.1);
        train_cross_entropy(&mut model, &split.train, &cfg);
        let acc = eval_accuracy(&mut model, &split.test);
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn task_specific_accuracy_beats_chance_for_trained_generic() {
        let (split, h) = tiny_data();
        let mut model = small_net(8, 6, 2);
        let cfg = TrainConfig::new(25, 32, 0.1);
        train_cross_entropy(&mut model, &split.train, &cfg);
        let classes = &h.primitive(0).classes;
        let acc = eval_task_specific_accuracy(&mut model, &split.test, classes);
        assert!(acc > 0.6, "task-specific accuracy {acc}");
    }

    #[test]
    fn distillation_transfers_teacher_knowledge() {
        let (split, _) = tiny_data();
        // Teacher: train a capable model first.
        let mut teacher = small_net(8, 6, 3);
        train_cross_entropy(&mut teacher, &split.train, &TrainConfig::new(30, 32, 0.1));
        let teacher_acc = eval_accuracy(&mut teacher, &split.test);
        // Student distilled from the teacher without ever seeing labels.
        let t_logits = logits_of(&mut teacher, &split.train.inputs);
        let mut student = small_net(8, 6, 4);
        train_distill(
            &mut student,
            &split.train.inputs,
            &t_logits,
            4.0,
            &TrainConfig::new(30, 32, 0.1),
        );
        let student_acc = eval_accuracy(&mut student, &split.test);
        assert!(
            student_acc > teacher_acc - 0.15,
            "student {student_acc} vs teacher {teacher_acc}"
        );
    }

    #[test]
    fn teacher_logit_row_mismatch_panics() {
        let (split, _) = tiny_data();
        let mut student = small_net(8, 6, 5);
        let bad = Tensor::zeros([3, 6]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            train_distill(
                &mut student,
                &split.train.inputs,
                &bad,
                4.0,
                &TrainConfig::new(1, 8, 0.1),
            );
        }));
        assert!(r.is_err());
    }

    #[test]
    fn eval_on_empty_dataset_is_zero() {
        let (split, _) = tiny_data();
        let mut model = small_net(8, 6, 6);
        let empty = split.test.task_view(&[]);
        assert_eq!(eval_accuracy(&mut model, &empty), 0.0);
    }
}
