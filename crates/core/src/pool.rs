//! The expert pool and train-free knowledge consolidation (Section 4.2).
//!
//! [`ExpertPool`] is the persistent artifact of the preprocessing phase —
//! the paper's view of a neural network as a *database*: one shared
//! *library* component plus one tiny *expert* per primitive task. The
//! service phase answers a composite-task query by cloning the library and
//! the required experts into a [`BranchedModel`] whose logits are
//! concatenated — no training, just assembly.

use poe_data::ClassHierarchy;
use poe_models::serialize::{
    load_module, load_module_quantized, module_byte_size, module_byte_size_quantized, save_module,
    save_module_quantized, SerializeError,
};
use poe_models::{Branch, BranchedModel, QuantizedModule};
use poe_nn::layers::Sequential;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::time::Instant;

/// One pooled expert: the trained head for a primitive task.
#[derive(Clone)]
pub struct Expert {
    /// Primitive-task index within the pool's hierarchy.
    pub task_index: usize,
    /// Global class ids covered, in the head's output order.
    pub classes: Vec<usize>,
    /// The trained head (library features → `|H_i|` logits).
    pub head: Sequential,
}

/// Errors from pool queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The composite task was empty.
    EmptyQuery,
    /// A task index exceeds the hierarchy.
    UnknownTask(usize),
    /// A task index was named twice.
    DuplicateTask(usize),
    /// No expert has been extracted for this task yet.
    MissingExpert(usize),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyQuery => write!(f, "composite task is empty"),
            QueryError::UnknownTask(t) => write!(f, "unknown primitive task {t}"),
            QueryError::DuplicateTask(t) => write!(f, "primitive task {t} listed twice"),
            QueryError::MissingExpert(t) => write!(f, "no expert pooled for task {t}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Timing and size statistics of one consolidation.
#[derive(Debug, Clone, Copy)]
pub struct ConsolidationStats {
    /// Wall-clock seconds spent assembling the model (the paper's
    /// "knowledge consolidation time"; training-based methods need
    /// tens-to-hundreds of seconds here).
    pub assembly_secs: f64,
    /// Number of expert branches, `n(Q)`.
    pub num_experts: usize,
    /// Parameter count of the assembled task-specific model.
    pub params: usize,
    /// Whether the model came from a consolidation cache rather than a
    /// fresh assembly. Always `false` for [`ExpertPool::consolidate`];
    /// the service layer sets it on cache hits.
    pub cache_hit: bool,
}

/// Byte-level storage report of a pool (Table 4).
#[derive(Debug, Clone)]
pub struct VolumeReport {
    /// Serialized size of the library component.
    pub library_bytes: u64,
    /// Serialized size of each expert, keyed by task index.
    pub expert_bytes: BTreeMap<usize, u64>,
    /// Library plus all experts.
    pub total_bytes: u64,
}

impl VolumeReport {
    /// Mean expert size in bytes (0 when no experts are pooled).
    pub fn mean_expert_bytes(&self) -> u64 {
        if self.expert_bytes.is_empty() {
            0
        } else {
            self.expert_bytes.values().sum::<u64>() / self.expert_bytes.len() as u64
        }
    }
}

/// Result of quantizing a pool's experts ([`ExpertPool::quantize_experts`]).
#[derive(Debug, Clone)]
pub struct QuantizationReport {
    /// Number of experts quantized.
    pub experts: usize,
    /// Serialized expert bytes before quantization (dense f32).
    pub dense_bytes: u64,
    /// Serialized expert bytes after quantization (int8 row-wise).
    pub quantized_bytes: u64,
    /// Worst-case per-weight dequantization error across all experts.
    pub max_error_bound: f32,
}

impl QuantizationReport {
    /// Dense-to-quantized compression ratio (0 when nothing quantized).
    pub fn ratio(&self) -> f64 {
        if self.quantized_bytes == 0 {
            0.0
        } else {
            self.dense_bytes as f64 / self.quantized_bytes as f64
        }
    }
}

impl fmt::Display for QuantizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "quantized {} experts: {} B -> {} B ({:.2}x, max weight error {:.2e})",
            self.experts,
            self.dense_bytes,
            self.quantized_bytes,
            self.ratio(),
            self.max_error_bound
        )
    }
}

/// The pool: hierarchy + library + experts.
#[derive(Clone)]
pub struct ExpertPool {
    hierarchy: ClassHierarchy,
    library: Sequential,
    experts: BTreeMap<usize, Expert>,
    /// Int8 payloads for experts whose heads hold placeholder weights;
    /// consolidation dequantizes from here at assemble time.
    quantized: BTreeMap<usize, QuantizedModule>,
    /// Architecture tag of the library (for display).
    pub library_arch: String,
    /// Architecture tag of the experts (for display).
    pub expert_arch: String,
}

impl ExpertPool {
    /// Creates a pool around an extracted library.
    pub fn new(hierarchy: ClassHierarchy, library: Sequential) -> Self {
        ExpertPool {
            hierarchy,
            library,
            experts: BTreeMap::new(),
            quantized: BTreeMap::new(),
            library_arch: String::new(),
            expert_arch: String::new(),
        }
    }

    /// The class hierarchy this pool serves.
    pub fn hierarchy(&self) -> &ClassHierarchy {
        &self.hierarchy
    }

    /// The shared library component.
    pub fn library(&self) -> &Sequential {
        &self.library
    }

    /// Inserts (or replaces) an expert.
    ///
    /// # Panics
    /// Panics if the expert's task/classes disagree with the hierarchy.
    pub fn insert_expert(&mut self, expert: Expert) {
        assert!(
            expert.task_index < self.hierarchy.num_primitives(),
            "task {} out of range",
            expert.task_index
        );
        assert_eq!(
            expert.classes,
            self.hierarchy.primitive(expert.task_index).classes,
            "expert class list disagrees with hierarchy for task {}",
            expert.task_index
        );
        // A freshly inserted head is dense: any stale int8 payload from a
        // previously quantized expert for this task must not shadow it.
        self.quantized.remove(&expert.task_index);
        self.experts.insert(expert.task_index, expert);
    }

    /// True when the expert for `task_index` is stored quantized (its head
    /// holds placeholder weights backed by an int8 payload).
    pub fn is_quantized(&self, task_index: usize) -> bool {
        self.quantized.contains_key(&task_index)
    }

    /// Quantizes every pooled expert head to int8 row-wise weights,
    /// replacing the dense `f32` weight tensors with shared placeholders.
    /// Consolidation transparently dequantizes at assemble time; storage
    /// and serialization shrink roughly 4×. Idempotent: already-quantized
    /// experts are left alone.
    pub fn quantize_experts(&mut self) -> QuantizationReport {
        let mut report = QuantizationReport {
            experts: 0,
            dense_bytes: 0,
            quantized_bytes: 0,
            max_error_bound: 0.0,
        };
        for (&t, e) in &mut self.experts {
            if self.quantized.contains_key(&t) {
                continue;
            }
            report.dense_bytes += module_byte_size(&e.head);
            let q = QuantizedModule::from_module(&e.head);
            QuantizedModule::strip_weights(&mut e.head);
            report.quantized_bytes += module_byte_size_quantized(&e.head, &q);
            report.max_error_bound = report.max_error_bound.max(q.error_bound());
            report.experts += 1;
            self.quantized.insert(t, q);
        }
        report
    }

    /// Attaches an int8 payload for an already-inserted expert whose head
    /// holds placeholder weights — the load path of a quantized store.
    ///
    /// # Panics
    /// Panics if no expert exists for `task_index`.
    pub fn attach_quantized(&mut self, task_index: usize, q: QuantizedModule) {
        assert!(
            self.experts.contains_key(&task_index),
            "no expert pooled for task {task_index}"
        );
        self.quantized.insert(task_index, q);
    }

    /// Number of pooled experts.
    pub fn num_experts(&self) -> usize {
        self.experts.len()
    }

    /// True when an expert exists for the task.
    pub fn has_expert(&self, task_index: usize) -> bool {
        self.experts.contains_key(&task_index)
    }

    /// Borrows an expert, if pooled.
    pub fn expert(&self, task_index: usize) -> Option<&Expert> {
        self.experts.get(&task_index)
    }

    /// Task indices with pooled experts, ascending.
    pub fn pooled_tasks(&self) -> Vec<usize> {
        self.experts.keys().copied().collect()
    }

    /// **Train-free knowledge consolidation**: assembles the task-specific
    /// model for the composite task `query` (a set of primitive-task
    /// indices) by logit concatenation.
    pub fn consolidate(
        &self,
        query: &[usize],
    ) -> Result<(BranchedModel, ConsolidationStats), QueryError> {
        if query.is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        let mut seen = vec![false; self.hierarchy.num_primitives()];
        for &t in query {
            if t >= self.hierarchy.num_primitives() {
                return Err(QueryError::UnknownTask(t));
            }
            if seen[t] {
                return Err(QueryError::DuplicateTask(t));
            }
            seen[t] = true;
            if !self.experts.contains_key(&t) {
                return Err(QueryError::MissingExpert(t));
            }
        }

        let _span = poe_obs::span("pool.consolidate");
        let start = Instant::now();
        let branches: Vec<Branch> = query
            .iter()
            .map(|t| {
                let e = &self.experts[t];
                let mut head = e.head.clone();
                if let Some(q) = self.quantized.get(t) {
                    // Dequantize-on-assemble: the pooled head only holds
                    // placeholders; materialize dense weights into this
                    // clone (copy-on-write detaches it from the pool).
                    q.restore_into(&mut head)
                        .expect("quantized payload matches its own expert head");
                    poe_obs::global_counter!("pool.dequantize.experts").inc();
                }
                Branch {
                    task_index: e.task_index,
                    head,
                    classes: e.classes.clone(),
                }
            })
            .collect();
        let arch = format!(
            "{} + [{}]ᵀ×{}",
            self.library_arch,
            self.expert_arch,
            query.len()
        );
        let model = BranchedModel::new(arch, self.library.clone(), branches);
        let stats = ConsolidationStats {
            assembly_secs: start.elapsed().as_secs_f64(),
            num_experts: query.len(),
            params: poe_nn::Module::param_count(&model),
            cache_hit: false,
        };
        Ok((model, stats))
    }

    /// Byte-level storage accounting (Table 4).
    pub fn volumes(&self) -> VolumeReport {
        let library_bytes = module_byte_size(&self.library);
        let expert_bytes: BTreeMap<usize, u64> = self
            .experts
            .iter()
            .map(|(&t, e)| match self.quantized.get(&t) {
                Some(q) => (t, module_byte_size_quantized(&e.head, q)),
                None => (t, module_byte_size(&e.head)),
            })
            .collect();
        let total_bytes = library_bytes + expert_bytes.values().sum::<u64>();
        VolumeReport {
            library_bytes,
            expert_bytes,
            total_bytes,
        }
    }

    /// Persists the pool to a directory: `library.poem` plus
    /// `expert_<task>.poem` per expert. Returns total bytes written.
    pub fn save_to_dir(&self, dir: impl AsRef<Path>) -> Result<u64, SerializeError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(SerializeError::Io)?;
        let mut total = save_module(dir.join("library.poem"), &self.library)?;
        for (t, e) in &self.experts {
            let path = dir.join(format!("expert_{t}.poem"));
            total += match self.quantized.get(t) {
                Some(q) => save_module_quantized(path, &e.head, q)?,
                None => save_module(path, &e.head)?,
            };
        }
        Ok(total)
    }

    /// Reloads parameter values from a directory written by
    /// [`ExpertPool::save_to_dir`] into this pool's identically-structured
    /// components.
    pub fn load_from_dir(&mut self, dir: impl AsRef<Path>) -> Result<(), SerializeError> {
        let dir = dir.as_ref();
        load_module(dir.join("library.poem"), &mut self.library)?;
        let mut quantized = BTreeMap::new();
        for (t, e) in &mut self.experts {
            let path = dir.join(format!("expert_{t}.poem"));
            if let Some(q) = load_module_quantized(path, &mut e.head)? {
                quantized.insert(*t, q);
            }
        }
        // Replace wholesale: dense files clear any stale int8 payloads.
        self.quantized = quantized;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_nn::layers::{Linear, Relu};
    use poe_nn::Module;
    use poe_tensor::{Prng, Tensor};

    fn toy_pool(num_tasks: usize, with_experts: &[usize]) -> ExpertPool {
        let mut rng = Prng::seed_from_u64(7);
        let hierarchy = ClassHierarchy::contiguous(2 * num_tasks, num_tasks);
        let library = Sequential::new()
            .push(Linear::new("lib", 4, 6, &mut rng))
            .push(Relu::new());
        let mut pool = ExpertPool::new(hierarchy, library);
        for &t in with_experts {
            let classes = pool.hierarchy().primitive(t).classes.clone();
            let head =
                Sequential::new().push(Linear::new(&format!("e{t}"), 6, classes.len(), &mut rng));
            pool.insert_expert(Expert {
                task_index: t,
                classes,
                head,
            });
        }
        pool
    }

    #[test]
    fn consolidation_assembles_query_order() {
        let pool = toy_pool(4, &[0, 1, 2, 3]);
        let (model, stats) = pool.consolidate(&[2, 0]).unwrap();
        assert_eq!(stats.num_experts, 2);
        assert_eq!(model.class_layout(), vec![4, 5, 0, 1]);
        let y = model.infer(&Tensor::zeros([1, 4]));
        assert_eq!(y.dims(), &[1, 4]);
        assert!(stats.assembly_secs < 1.0);
        assert_eq!(stats.params, model.param_count());
    }

    #[test]
    fn query_errors_are_specific() {
        let pool = toy_pool(4, &[0, 1]);
        assert_eq!(pool.consolidate(&[]).unwrap_err(), QueryError::EmptyQuery);
        assert_eq!(
            pool.consolidate(&[9]).unwrap_err(),
            QueryError::UnknownTask(9)
        );
        assert_eq!(
            pool.consolidate(&[0, 0]).unwrap_err(),
            QueryError::DuplicateTask(0)
        );
        assert_eq!(
            pool.consolidate(&[0, 3]).unwrap_err(),
            QueryError::MissingExpert(3)
        );
    }

    #[test]
    #[should_panic(expected = "disagrees")]
    fn insert_expert_validates_classes() {
        let mut pool = toy_pool(3, &[]);
        let mut rng = Prng::seed_from_u64(8);
        pool.insert_expert(Expert {
            task_index: 0,
            classes: vec![4, 5], // wrong: task 0 owns {0, 1}
            head: Sequential::new().push(Linear::new("e", 6, 2, &mut rng)),
        });
    }

    #[test]
    fn volumes_account_every_component() {
        let pool = toy_pool(3, &[0, 2]);
        let v = pool.volumes();
        assert!(v.library_bytes > 0);
        assert_eq!(v.expert_bytes.len(), 2);
        assert_eq!(
            v.total_bytes,
            v.library_bytes + v.expert_bytes.values().sum::<u64>()
        );
        assert!(v.mean_expert_bytes() > 0);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("poe_pool_test");
        let pool = toy_pool(3, &[0, 1, 2]);
        let written = pool.save_to_dir(&dir).unwrap();
        assert_eq!(written, pool.volumes().total_bytes);

        // A pool with the same structure but different weights converges to
        // the saved weights after load.
        let mut other = toy_pool(3, &[0, 1, 2]);
        other
            .library
            .visit_params(&mut |p| p.value.map_in_place(|_| 0.123));
        other.load_from_dir(&dir).unwrap();

        let (a, _) = pool.consolidate(&[0, 1, 2]).unwrap();
        let (b, _) = other.consolidate(&[0, 1, 2]).unwrap();
        let x = Tensor::randn([3, 4], 1.0, &mut Prng::seed_from_u64(9));
        assert!(a.infer(&x).max_abs_diff(&b.infer(&x)) < 1e-6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn consolidated_models_are_isolated_from_pool_updates() {
        let mut pool = toy_pool(3, &[0, 1, 2]);
        let x = Tensor::randn([2, 4], 1.0, &mut Prng::seed_from_u64(11));
        let (before, _) = pool.consolidate(&[0, 2]).unwrap();
        let y_before = before.infer(&x);

        // Consolidation shares the pool's weight buffers (copy-on-write), so
        // an in-place pool update — a fine-tuning step, a reload — must
        // detach rather than leak into already-assembled models.
        pool.library
            .visit_params(&mut |p| p.value.map_in_place(|v| v + 1.0));
        assert!(before.infer(&x).max_abs_diff(&y_before) == 0.0);

        // Only an explicit re-consolidation observes the new weights.
        let (after, _) = pool.consolidate(&[0, 2]).unwrap();
        assert!(after.infer(&x).max_abs_diff(&y_before) > 1e-3);
    }

    #[test]
    fn quantized_pool_consolidates_within_error_bound() {
        let mut pool = toy_pool(4, &[0, 1, 2, 3]);
        let x = Tensor::randn([3, 4], 1.0, &mut Prng::seed_from_u64(12));
        let (dense, _) = pool.consolidate(&[0, 2, 3]).unwrap();
        let y_dense = dense.infer(&x);

        let report = pool.quantize_experts();
        assert_eq!(report.experts, 4);
        assert!(pool.is_quantized(2));
        assert!(report.quantized_bytes < report.dense_bytes);
        assert!(!report.to_string().is_empty());

        let before = poe_obs::global_counter!("pool.dequantize.experts").get();
        let (quant, _) = pool.consolidate(&[0, 2, 3]).unwrap();
        assert_eq!(
            poe_obs::global_counter!("pool.dequantize.experts").get(),
            before + 3
        );
        // The library is untouched and weight error is bounded, so logits
        // drift by at most (input magnitude · fan-in · bound)-ish; for this
        // toy geometry a loose absolute check suffices.
        let drift = quant.infer(&x).max_abs_diff(&y_dense);
        assert!(drift > 0.0, "quantization should not be a no-op");
        assert!(
            drift <= 16.0 * report.max_error_bound,
            "drift {drift} vs bound {}",
            report.max_error_bound
        );

        // Idempotent.
        let again = pool.quantize_experts();
        assert_eq!(again.experts, 0);
    }

    #[test]
    fn quantized_pool_save_load_round_trip() {
        let dir = std::env::temp_dir().join("poe_pool_quant_test");
        let mut pool = toy_pool(3, &[0, 1, 2]);
        pool.quantize_experts();
        let written = pool.save_to_dir(&dir).unwrap();
        assert_eq!(written, pool.volumes().total_bytes);

        // Quantized files are smaller than the dense equivalents.
        let dense = toy_pool(3, &[0, 1, 2]);
        assert!(
            pool.volumes().expert_bytes.values().sum::<u64>()
                < dense.volumes().expert_bytes.values().sum::<u64>()
        );

        let mut other = toy_pool(3, &[0, 1, 2]);
        other.load_from_dir(&dir).unwrap();
        assert!(other.is_quantized(0) && other.is_quantized(2));
        let x = Tensor::randn([3, 4], 1.0, &mut Prng::seed_from_u64(13));
        let (a, _) = pool.consolidate(&[0, 1, 2]).unwrap();
        let (b, _) = other.consolidate(&[0, 1, 2]).unwrap();
        // Same int8 payload on both sides: assembled models agree exactly.
        assert!(a.infer(&x).max_abs_diff(&b.infer(&x)) < 1e-6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reinserting_an_expert_clears_stale_quantization() {
        let mut pool = toy_pool(3, &[0, 1, 2]);
        pool.quantize_experts();
        assert!(pool.is_quantized(1));
        let mut rng = Prng::seed_from_u64(14);
        let classes = pool.hierarchy().primitive(1).classes.clone();
        let head = Sequential::new().push(Linear::new("e1b", 6, classes.len(), &mut rng));
        pool.insert_expert(Expert {
            task_index: 1,
            classes,
            head,
        });
        assert!(!pool.is_quantized(1));
        // Consolidation still works with a mixed dense/quantized pool.
        pool.consolidate(&[0, 1, 2]).unwrap();
    }

    #[test]
    fn consolidation_is_fast_and_repeatable() {
        let pool = toy_pool(6, &[0, 1, 2, 3, 4, 5]);
        let x = Tensor::randn([2, 4], 1.0, &mut Prng::seed_from_u64(10));
        let (m1, _) = pool.consolidate(&[1, 3, 5]).unwrap();
        let (m2, _) = pool.consolidate(&[1, 3, 5]).unwrap();
        assert!(m1.infer(&x).max_abs_diff(&m2.infer(&x)) == 0.0);
    }
}
