//! The expert pool and train-free knowledge consolidation (Section 4.2).
//!
//! [`ExpertPool`] is the persistent artifact of the preprocessing phase —
//! the paper's view of a neural network as a *database*: one shared
//! *library* component plus one tiny *expert* per primitive task. The
//! service phase answers a composite-task query by cloning the library and
//! the required experts into a [`BranchedModel`] whose logits are
//! concatenated — no training, just assembly.
//!
//! At 10k-expert scale the pool no longer holds every expert in memory.
//! An attached [`ExpertSource`] (the POEM v4 segment store) provides the
//! catalog; experts load lazily on first use, an LRU policy evicts cold
//! ones down to a configurable resident budget, and every expert carries
//! a version so a re-extracted replacement can be hot-swapped while
//! serving. Residency is interior state (a mutex inside the pool), so
//! [`ExpertPool::consolidate`] stays `&self` and the service layer's
//! read-lock fast path is unchanged.

use poe_data::ClassHierarchy;
use poe_models::serialize::{
    load_module, load_module_quantized, module_byte_size, module_byte_size_quantized, save_module,
    save_module_quantized, SerializeError,
};
use poe_models::{Branch, BranchedModel, QuantizedModule};
use poe_nn::layers::Sequential;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One pooled expert: the trained head for a primitive task.
#[derive(Clone)]
pub struct Expert {
    /// Primitive-task index within the pool's hierarchy.
    pub task_index: usize,
    /// Global class ids covered, in the head's output order.
    pub classes: Vec<usize>,
    /// The trained head (library features → `|H_i|` logits).
    pub head: Sequential,
}

/// An expert as delivered by an [`ExpertSource`]: the head, its optional
/// int8 payload, and the version recorded in the store.
pub struct LoadedExpert {
    /// The expert head and class metadata.
    pub expert: Expert,
    /// Int8 payload when the store holds the expert quantized.
    pub quantized: Option<QuantizedModule>,
    /// Version recorded in the store's index for this expert.
    pub version: u64,
}

/// One catalog row of an [`ExpertSource`]: an expert that exists in the
/// backing store, whether or not it is currently resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceEntry {
    /// Primitive-task index.
    pub task: usize,
    /// Stored expert version.
    pub version: u64,
    /// Serialized payload size in bytes (feeds [`VolumeReport`] for
    /// non-resident experts).
    pub bytes: u64,
}

/// A backing store that can enumerate and lazily load experts — the
/// abstraction behind the POEM v4 segment store
/// (`poe_core::store::load_standalone`). Implementations must be safe to
/// call from multiple threads.
pub trait ExpertSource: Send + Sync {
    /// Every expert the store holds, ascending by task.
    fn catalog(&self) -> Vec<SourceEntry>;
    /// Loads one expert's payload from the store.
    fn load(&self, task: usize) -> Result<LoadedExpert, SerializeError>;
    /// Re-reads the store's index from disk before loading, so a segment
    /// that was atomically replaced since open (a re-extraction) is
    /// picked up — the hot-swap path.
    fn reload(&self, task: usize) -> Result<LoadedExpert, SerializeError>;
}

/// Errors from pool queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The composite task was empty.
    EmptyQuery,
    /// A task index exceeds the hierarchy.
    UnknownTask(usize),
    /// A task index was named twice.
    DuplicateTask(usize),
    /// No expert has been extracted for this task yet.
    MissingExpert(usize),
    /// The expert exists in the catalog but its payload failed to load
    /// from the backing store (I/O error or per-payload corruption).
    ExpertLoad {
        /// The task whose expert failed to load.
        task: usize,
        /// Human-readable cause from the store layer.
        detail: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyQuery => write!(f, "composite task is empty"),
            QueryError::UnknownTask(t) => write!(f, "unknown primitive task {t}"),
            QueryError::DuplicateTask(t) => write!(f, "primitive task {t} listed twice"),
            QueryError::MissingExpert(t) => write!(f, "no expert pooled for task {t}"),
            QueryError::ExpertLoad { task, detail } => {
                write!(f, "expert {task} failed to load: {detail}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Timing and size statistics of one consolidation.
#[derive(Debug, Clone, Copy)]
pub struct ConsolidationStats {
    /// Wall-clock seconds spent assembling the model (the paper's
    /// "knowledge consolidation time"; training-based methods need
    /// tens-to-hundreds of seconds here).
    pub assembly_secs: f64,
    /// Number of expert branches, `n(Q)`.
    pub num_experts: usize,
    /// Parameter count of the assembled task-specific model.
    pub params: usize,
    /// Whether the model came from a consolidation cache rather than a
    /// fresh assembly. Always `false` for [`ExpertPool::consolidate`];
    /// the service layer sets it on cache hits.
    pub cache_hit: bool,
}

/// Byte-level storage report of a pool (Table 4).
#[derive(Debug, Clone)]
pub struct VolumeReport {
    /// Serialized size of the library component.
    pub library_bytes: u64,
    /// Serialized size of each expert, keyed by task index. Resident
    /// experts are measured exactly; non-resident ones report the stored
    /// payload size from the segment index.
    pub expert_bytes: BTreeMap<usize, u64>,
    /// Library plus all experts.
    pub total_bytes: u64,
}

impl VolumeReport {
    /// Mean expert size in bytes (0 when no experts are pooled).
    pub fn mean_expert_bytes(&self) -> u64 {
        if self.expert_bytes.is_empty() {
            0
        } else {
            self.expert_bytes.values().sum::<u64>() / self.expert_bytes.len() as u64
        }
    }
}

/// Result of quantizing a pool's experts ([`ExpertPool::quantize_experts`]).
#[derive(Debug, Clone)]
pub struct QuantizationReport {
    /// Number of experts quantized.
    pub experts: usize,
    /// Serialized expert bytes before quantization (dense f32).
    pub dense_bytes: u64,
    /// Serialized expert bytes after quantization (int8 row-wise).
    pub quantized_bytes: u64,
    /// Worst-case per-weight dequantization error across all experts.
    pub max_error_bound: f32,
}

impl QuantizationReport {
    /// Dense-to-quantized compression ratio (0 when nothing quantized).
    pub fn ratio(&self) -> f64 {
        if self.quantized_bytes == 0 {
            0.0
        } else {
            self.dense_bytes as f64 / self.quantized_bytes as f64
        }
    }
}

impl fmt::Display for QuantizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "quantized {} experts: {} B -> {} B ({:.2}x, max weight error {:.2e})",
            self.experts,
            self.dense_bytes,
            self.quantized_bytes,
            self.ratio(),
            self.max_error_bound
        )
    }
}

/// Interior residency state: which experts are in memory right now, what
/// the catalog knows, and the policy knobs. Guarded by a mutex inside
/// [`ExpertPool`] so lazy loads and evictions can happen behind `&self`.
#[derive(Clone, Default)]
struct Residency {
    /// Resident expert heads.
    experts: BTreeMap<usize, Expert>,
    /// Int8 payloads for resident experts whose heads hold placeholder
    /// weights; consolidation dequantizes from here at assemble time.
    quantized: BTreeMap<usize, QuantizedModule>,
    /// The catalog: every known expert (resident or not) and its current
    /// version. Membership here is what `has_expert` answers.
    versions: BTreeMap<usize, u64>,
    /// Stored payload bytes per task, from the source index — the volume
    /// accounting for non-resident experts.
    stored_bytes: BTreeMap<usize, u64>,
    /// Resident tasks, most-recently-used first.
    lru: Vec<usize>,
    /// Resident tasks the backing store cannot reproduce (installed via
    /// `insert_expert` and never re-saved) — exempt from eviction.
    pinned: BTreeSet<usize>,
    /// Lazy-load backend; `None` for a fully in-memory pool.
    source: Option<Arc<dyn ExpertSource>>,
    /// Max resident experts (0 = unlimited). Enforced only when a source
    /// exists — without one, eviction would lose weights.
    budget: usize,
}

impl Residency {
    /// Moves `task` to the front of the LRU order.
    fn touch(&mut self, task: usize) {
        if let Some(pos) = self.lru.iter().position(|&t| t == task) {
            self.lru.remove(pos);
        }
        self.lru.insert(0, task);
    }

    fn resident_gauge(&self) {
        poe_obs::global_gauge!("pool.lazy.resident").set(self.experts.len() as f64);
    }
}

/// The pool: hierarchy + library + experts (resident or source-backed).
pub struct ExpertPool {
    hierarchy: ClassHierarchy,
    library: Sequential,
    state: Mutex<Residency>,
    /// Architecture tag of the library (for display).
    pub library_arch: String,
    /// Architecture tag of the experts (for display).
    pub expert_arch: String,
}

impl Clone for ExpertPool {
    fn clone(&self) -> Self {
        let state = self.state.lock().unwrap().clone();
        ExpertPool {
            hierarchy: self.hierarchy.clone(),
            library: self.library.clone(),
            state: Mutex::new(state),
            library_arch: self.library_arch.clone(),
            expert_arch: self.expert_arch.clone(),
        }
    }
}

impl ExpertPool {
    /// Creates a pool around an extracted library.
    pub fn new(hierarchy: ClassHierarchy, library: Sequential) -> Self {
        ExpertPool {
            hierarchy,
            library,
            state: Mutex::new(Residency::default()),
            library_arch: String::new(),
            expert_arch: String::new(),
        }
    }

    /// The class hierarchy this pool serves.
    pub fn hierarchy(&self) -> &ClassHierarchy {
        &self.hierarchy
    }

    /// The shared library component.
    pub fn library(&self) -> &Sequential {
        &self.library
    }

    fn state(&self) -> std::sync::MutexGuard<'_, Residency> {
        self.state.lock().unwrap()
    }

    /// Inserts (or replaces) an expert, bumping its version. Returns the
    /// new version (1 for a first install). The expert is pinned resident
    /// until a store re-save makes it reproducible, so eviction can never
    /// lose weights that exist only in memory.
    ///
    /// # Panics
    /// Panics if the expert's task/classes disagree with the hierarchy.
    pub fn insert_expert(&mut self, expert: Expert) -> u64 {
        self.validate_expert(&expert);
        let task = expert.task_index;
        let state = self.state.get_mut().unwrap();
        // A freshly inserted head is dense: any stale int8 payload from a
        // previously quantized expert for this task must not shadow it.
        state.quantized.remove(&task);
        state.experts.insert(task, expert);
        state.pinned.insert(task);
        state.touch(task);
        let version = state.versions.get(&task).copied().unwrap_or(0) + 1;
        state.versions.insert(task, version);
        version
    }

    fn validate_expert(&self, expert: &Expert) {
        assert!(
            expert.task_index < self.hierarchy.num_primitives(),
            "task {} out of range",
            expert.task_index
        );
        assert_eq!(
            expert.classes,
            self.hierarchy.primitive(expert.task_index).classes,
            "expert class list disagrees with hierarchy for task {}",
            expert.task_index
        );
    }

    /// Attaches a lazy-load backend. The source's catalog becomes the
    /// pool's catalog: `has_expert`/`pooled_tasks` answer from it without
    /// loading anything, and experts materialize on first use. Already
    /// resident experts (if any) keep their state.
    pub fn attach_source(&mut self, source: Arc<dyn ExpertSource>) {
        let state = self.state.get_mut().unwrap();
        for entry in source.catalog() {
            state.versions.entry(entry.task).or_insert(entry.version);
            state.stored_bytes.insert(entry.task, entry.bytes);
        }
        state.source = Some(source);
    }

    /// True when a lazy-load backend is attached.
    pub fn has_source(&self) -> bool {
        self.state().source.is_some()
    }

    /// Sets the resident-expert budget (0 = unlimited) and immediately
    /// evicts down to it. Only enforced when a source is attached —
    /// a purely in-memory pool never evicts.
    pub fn set_resident_budget(&mut self, budget: usize) {
        let state = self.state.get_mut().unwrap();
        state.budget = budget;
        Self::enforce_budget_locked(state, &[]);
    }

    /// The resident-expert budget (0 = unlimited).
    pub fn resident_budget(&self) -> usize {
        self.state().budget
    }

    /// True when the expert for `task_index` is resident and stored
    /// quantized (its head holds placeholder weights backed by an int8
    /// payload).
    pub fn is_quantized(&self, task_index: usize) -> bool {
        self.state().quantized.contains_key(&task_index)
    }

    /// Quantizes every *resident* expert head to int8 row-wise weights,
    /// replacing the dense `f32` weight tensors with shared placeholders.
    /// Consolidation transparently dequantizes at assemble time; storage
    /// and serialization shrink roughly 4×. Idempotent: already-quantized
    /// experts are left alone. (Preprocessing pools are fully resident;
    /// for a segment-backed pool, quantization happens at store-write
    /// time instead.)
    pub fn quantize_experts(&mut self) -> QuantizationReport {
        let state = self.state.get_mut().unwrap();
        let mut report = QuantizationReport {
            experts: 0,
            dense_bytes: 0,
            quantized_bytes: 0,
            max_error_bound: 0.0,
        };
        for (&t, e) in &mut state.experts {
            if state.quantized.contains_key(&t) {
                continue;
            }
            report.dense_bytes += module_byte_size(&e.head);
            let q = QuantizedModule::from_module(&e.head);
            QuantizedModule::strip_weights(&mut e.head);
            report.quantized_bytes += module_byte_size_quantized(&e.head, &q);
            report.max_error_bound = report.max_error_bound.max(q.error_bound());
            report.experts += 1;
            state.quantized.insert(t, q);
        }
        report
    }

    /// Attaches an int8 payload for an already-resident expert whose head
    /// holds placeholder weights — the load path of a quantized store.
    ///
    /// # Panics
    /// Panics if no resident expert exists for `task_index`.
    pub fn attach_quantized(&mut self, task_index: usize, q: QuantizedModule) {
        let state = self.state.get_mut().unwrap();
        assert!(
            state.experts.contains_key(&task_index),
            "no expert pooled for task {task_index}"
        );
        state.quantized.insert(task_index, q);
    }

    /// Number of pooled experts (resident or source-backed).
    pub fn num_experts(&self) -> usize {
        self.state().versions.len()
    }

    /// Number of experts currently resident in memory.
    pub fn resident_experts(&self) -> usize {
        self.state().experts.len()
    }

    /// True when an expert exists for the task (resident or not).
    pub fn has_expert(&self, task_index: usize) -> bool {
        self.state().versions.contains_key(&task_index)
    }

    /// True when the expert for the task is resident in memory right now.
    pub fn is_resident(&self, task_index: usize) -> bool {
        self.state().experts.contains_key(&task_index)
    }

    /// The expert's current version (bumped on every install/swap), if it
    /// is in the catalog.
    pub fn expert_version(&self, task_index: usize) -> Option<u64> {
        self.state().versions.get(&task_index).copied()
    }

    /// Returns a copy of an expert, lazily loading it from the source if
    /// needed. The copy is cheap — tensors are copy-on-write — and stays
    /// valid even if the pool later evicts or swaps the expert. Returns
    /// `None` if the task is not in the catalog or its payload fails to
    /// load.
    pub fn expert(&self, task_index: usize) -> Option<Expert> {
        let mut state = self.state();
        if !state.experts.contains_key(&task_index) {
            self.ensure_resident_locked(&mut state, task_index).ok()?;
            Self::enforce_budget_locked(&mut state, &[task_index]);
        } else {
            state.touch(task_index);
        }
        state.experts.get(&task_index).cloned()
    }

    /// Like [`ExpertPool::expert`], but also returns the int8 payload and
    /// version — what a store writer needs to re-serialize the expert.
    pub fn loaded_expert(&self, task_index: usize) -> Option<LoadedExpert> {
        let mut state = self.state();
        if !state.experts.contains_key(&task_index) {
            self.ensure_resident_locked(&mut state, task_index).ok()?;
            Self::enforce_budget_locked(&mut state, &[task_index]);
        }
        let expert = state.experts.get(&task_index).cloned()?;
        Some(LoadedExpert {
            expert,
            quantized: state.quantized.get(&task_index).cloned(),
            version: state.versions.get(&task_index).copied().unwrap_or(1),
        })
    }

    /// Task indices with pooled experts (resident or source-backed),
    /// ascending.
    pub fn pooled_tasks(&self) -> Vec<usize> {
        self.state().versions.keys().copied().collect()
    }

    /// Loads `task` into residency from the attached source, recording
    /// the `pool.lazy.loads` counter and an `expert.load` flight event.
    fn ensure_resident_locked(&self, state: &mut Residency, task: usize) -> Result<(), QueryError> {
        if state.experts.contains_key(&task) {
            state.touch(task);
            return Ok(());
        }
        let source = state.source.clone().ok_or_else(|| QueryError::ExpertLoad {
            task,
            detail: "expert not resident and no store attached".into(),
        })?;
        let loaded = source.load(task).map_err(|e| QueryError::ExpertLoad {
            task,
            detail: e.to_string(),
        })?;
        self.validate_expert(&loaded.expert);
        state.experts.insert(task, loaded.expert);
        match loaded.quantized {
            Some(q) => {
                state.quantized.insert(task, q);
            }
            None => {
                state.quantized.remove(&task);
            }
        }
        state.versions.insert(task, loaded.version);
        state.touch(task);
        poe_obs::global_counter!("pool.lazy.loads").inc();
        state.resident_gauge();
        poe_obs::FlightRecorder::global().record(
            "expert.load",
            format!("task={task} version={}", loaded.version),
        );
        Ok(())
    }

    /// Evicts least-recently-used residents down to the budget, skipping
    /// `protect`ed (in-use) and pinned (memory-only) tasks. A no-op
    /// without a source or with budget 0.
    fn enforce_budget_locked(state: &mut Residency, protect: &[usize]) {
        if state.source.is_none() || state.budget == 0 {
            return;
        }
        while state.experts.len() > state.budget {
            let victim = state
                .lru
                .iter()
                .rev()
                .copied()
                .find(|t| !protect.contains(t) && !state.pinned.contains(t));
            let Some(victim) = victim else {
                break;
            };
            state.experts.remove(&victim);
            state.quantized.remove(&victim);
            state.lru.retain(|&t| t != victim);
            poe_obs::global_counter!("pool.lazy.evictions").inc();
            poe_obs::FlightRecorder::global().record("expert.evict", format!("task={victim}"));
        }
        state.resident_gauge();
    }

    /// Re-reads one expert from the attached source's *current on-disk
    /// index* without mutating the pool — the first half of a hot swap.
    /// Install the result with [`ExpertPool::install_loaded`] (the
    /// service layer does both under its generation guard).
    pub fn reload_from_source(&self, task: usize) -> Result<LoadedExpert, QueryError> {
        if task >= self.hierarchy.num_primitives() {
            return Err(QueryError::UnknownTask(task));
        }
        let source = self.state().source.clone();
        let source = source.ok_or_else(|| QueryError::ExpertLoad {
            task,
            detail: "pool has no segment store attached".into(),
        })?;
        // The source I/O runs outside the residency lock: a slow disk
        // must not block lazy loads for unrelated queries.
        let loaded = source.reload(task).map_err(|e| QueryError::ExpertLoad {
            task,
            detail: e.to_string(),
        })?;
        self.validate_expert(&loaded.expert);
        Ok(loaded)
    }

    /// Atomically installs a [`LoadedExpert`] (from
    /// [`ExpertPool::reload_from_source`]) as the expert's new version.
    /// Unlike [`ExpertPool::insert_expert`] this does not pin: the store
    /// just proved it can reproduce the expert. Returns the installed
    /// version.
    ///
    /// # Panics
    /// Panics if the expert's task/classes disagree with the hierarchy.
    pub fn install_loaded(&mut self, loaded: LoadedExpert) -> u64 {
        self.validate_expert(&loaded.expert);
        let task = loaded.expert.task_index;
        let state = self.state.get_mut().unwrap();
        state.experts.insert(task, loaded.expert);
        match loaded.quantized {
            Some(q) => {
                state.quantized.insert(task, q);
            }
            None => {
                state.quantized.remove(&task);
            }
        }
        state.versions.insert(task, loaded.version);
        state.pinned.remove(&task);
        state.touch(task);
        state.resident_gauge();
        Self::enforce_budget_locked(state, &[task]);
        loaded.version
    }

    /// **Train-free knowledge consolidation**: assembles the task-specific
    /// model for the composite task `query` (a set of primitive-task
    /// indices) by logit concatenation. Experts named by the query that
    /// are not resident load lazily from the attached source; afterwards,
    /// cold residents beyond the budget are evicted LRU-first. Assembled
    /// models hold their own copy-on-write references, so later eviction
    /// or swapping never invalidates a model already handed out.
    ///
    /// ```
    /// use poe_core::pool::{Expert, ExpertPool};
    /// use poe_data::ClassHierarchy;
    /// use poe_nn::layers::{Linear, Sequential};
    /// use poe_tensor::{Prng, Tensor};
    ///
    /// let mut rng = Prng::seed_from_u64(1);
    /// let hierarchy = ClassHierarchy::contiguous(4, 2); // 2 tasks × 2 classes
    /// let library = Sequential::new().push(Linear::new("lib", 3, 5, &mut rng));
    /// let mut pool = ExpertPool::new(hierarchy, library);
    /// for t in 0..2 {
    ///     let classes = pool.hierarchy().primitive(t).classes.clone();
    ///     let head = Sequential::new()
    ///         .push(Linear::new(&format!("e{t}"), 5, classes.len(), &mut rng));
    ///     pool.insert_expert(Expert { task_index: t, classes, head });
    /// }
    /// let (model, stats) = pool.consolidate(&[1, 0]).unwrap();
    /// assert_eq!(stats.num_experts, 2);
    /// assert_eq!(model.class_layout(), vec![2, 3, 0, 1]);
    /// let logits = model.infer(&Tensor::zeros([1, 3]));
    /// assert_eq!(logits.dims(), &[1, 4]);
    /// ```
    pub fn consolidate(
        &self,
        query: &[usize],
    ) -> Result<(BranchedModel, ConsolidationStats), QueryError> {
        if query.is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        let mut state = self.state();
        let mut seen = vec![false; self.hierarchy.num_primitives()];
        for &t in query {
            if t >= self.hierarchy.num_primitives() {
                return Err(QueryError::UnknownTask(t));
            }
            if seen[t] {
                return Err(QueryError::DuplicateTask(t));
            }
            seen[t] = true;
            if !state.versions.contains_key(&t) {
                return Err(QueryError::MissingExpert(t));
            }
        }

        let _span = poe_obs::span("pool.consolidate");
        let start = Instant::now();
        for &t in query {
            self.ensure_resident_locked(&mut state, t)?;
        }
        let branches: Vec<Branch> = query
            .iter()
            .map(|t| {
                let e = &state.experts[t];
                let mut head = e.head.clone();
                if let Some(q) = state.quantized.get(t) {
                    // Dequantize-on-assemble: the pooled head only holds
                    // placeholders; materialize dense weights into this
                    // clone (copy-on-write detaches it from the pool).
                    q.restore_into(&mut head)
                        .expect("quantized payload matches its own expert head");
                    poe_obs::global_counter!("pool.dequantize.experts").inc();
                }
                Branch {
                    task_index: e.task_index,
                    head,
                    classes: e.classes.clone(),
                }
            })
            .collect();
        // The branches above hold their own Arc'd tensors, so evicting
        // now (or on any later query) cannot touch this model.
        Self::enforce_budget_locked(&mut state, query);
        drop(state);
        let arch = format!(
            "{} + [{}]ᵀ×{}",
            self.library_arch,
            self.expert_arch,
            query.len()
        );
        let model = BranchedModel::new(arch, self.library.clone(), branches);
        let stats = ConsolidationStats {
            assembly_secs: start.elapsed().as_secs_f64(),
            num_experts: query.len(),
            params: poe_nn::Module::param_count(&model),
            cache_hit: false,
        };
        Ok((model, stats))
    }

    /// Byte-level storage accounting (Table 4). Resident experts are
    /// measured exactly; non-resident ones report the payload size from
    /// the segment index.
    pub fn volumes(&self) -> VolumeReport {
        let state = self.state();
        let library_bytes = module_byte_size(&self.library);
        let expert_bytes: BTreeMap<usize, u64> = state
            .versions
            .keys()
            .map(|&t| match state.experts.get(&t) {
                Some(e) => match state.quantized.get(&t) {
                    Some(q) => (t, module_byte_size_quantized(&e.head, q)),
                    None => (t, module_byte_size(&e.head)),
                },
                None => (t, state.stored_bytes.get(&t).copied().unwrap_or(0)),
            })
            .collect();
        let total_bytes = library_bytes + expert_bytes.values().sum::<u64>();
        VolumeReport {
            library_bytes,
            expert_bytes,
            total_bytes,
        }
    }

    /// Persists the pool to a directory in the *legacy flat layout*:
    /// `library.poem` plus `expert_<task>.poem` per resident expert.
    /// Returns total bytes written. The standalone store
    /// (`poe_core::store::save_standalone`) writes the v4 segment layout
    /// instead; this path remains for fully-resident pools and format
    /// back-compat.
    pub fn save_to_dir(&self, dir: impl AsRef<Path>) -> Result<u64, SerializeError> {
        let state = self.state();
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(SerializeError::Io)?;
        let mut total = save_module(dir.join("library.poem"), &self.library)?;
        for (t, e) in &state.experts {
            let path = dir.join(format!("expert_{t}.poem"));
            total += match state.quantized.get(t) {
                Some(q) => save_module_quantized(path, &e.head, q)?,
                None => save_module(path, &e.head)?,
            };
        }
        Ok(total)
    }

    /// Reloads parameter values from a directory written by
    /// [`ExpertPool::save_to_dir`] into this pool's identically-structured
    /// resident components.
    pub fn load_from_dir(&mut self, dir: impl AsRef<Path>) -> Result<(), SerializeError> {
        let dir = dir.as_ref();
        load_module(dir.join("library.poem"), &mut self.library)?;
        let state = self.state.get_mut().unwrap();
        let mut quantized = BTreeMap::new();
        for (t, e) in &mut state.experts {
            let path = dir.join(format!("expert_{t}.poem"));
            if let Some(q) = load_module_quantized(path, &mut e.head)? {
                quantized.insert(*t, q);
            }
        }
        // Replace wholesale: dense files clear any stale int8 payloads.
        state.quantized = quantized;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_nn::layers::{Linear, Relu};
    use poe_nn::Module;
    use poe_tensor::{Prng, Tensor};

    fn toy_pool(num_tasks: usize, with_experts: &[usize]) -> ExpertPool {
        let mut rng = Prng::seed_from_u64(7);
        let hierarchy = ClassHierarchy::contiguous(2 * num_tasks, num_tasks);
        let library = Sequential::new()
            .push(Linear::new("lib", 4, 6, &mut rng))
            .push(Relu::new());
        let mut pool = ExpertPool::new(hierarchy, library);
        for &t in with_experts {
            let classes = pool.hierarchy().primitive(t).classes.clone();
            let head =
                Sequential::new().push(Linear::new(&format!("e{t}"), 6, classes.len(), &mut rng));
            pool.insert_expert(Expert {
                task_index: t,
                classes,
                head,
            });
        }
        pool
    }

    /// An in-memory source for exercising lazy load / eviction / swap
    /// without touching disk.
    struct MapSource {
        experts: Mutex<BTreeMap<usize, (Expert, u64)>>,
        fail: Mutex<BTreeSet<usize>>,
    }

    impl MapSource {
        fn new(pool: &ExpertPool) -> Self {
            let mut experts = BTreeMap::new();
            for t in pool.pooled_tasks() {
                let e = pool.expert(t).unwrap();
                experts.insert(t, (e, 1));
            }
            MapSource {
                experts: Mutex::new(experts),
                fail: Mutex::new(BTreeSet::new()),
            }
        }
    }

    impl ExpertSource for MapSource {
        fn catalog(&self) -> Vec<SourceEntry> {
            self.experts
                .lock()
                .unwrap()
                .iter()
                .map(|(&task, (_, version))| SourceEntry {
                    task,
                    version: *version,
                    bytes: 64,
                })
                .collect()
        }

        fn load(&self, task: usize) -> Result<LoadedExpert, SerializeError> {
            if self.fail.lock().unwrap().contains(&task) {
                return Err(SerializeError::Io(std::io::Error::other("injected")));
            }
            let experts = self.experts.lock().unwrap();
            let (expert, version) = experts
                .get(&task)
                .ok_or_else(|| SerializeError::Format(format!("task {task} not in source")))?;
            Ok(LoadedExpert {
                expert: expert.clone(),
                quantized: None,
                version: *version,
            })
        }

        fn reload(&self, task: usize) -> Result<LoadedExpert, SerializeError> {
            self.load(task)
        }
    }

    fn lazy_pool(num_tasks: usize) -> (ExpertPool, Arc<MapSource>) {
        let all: Vec<usize> = (0..num_tasks).collect();
        let full = toy_pool(num_tasks, &all);
        let source = Arc::new(MapSource::new(&full));
        let mut pool = toy_pool(num_tasks, &[]);
        pool.attach_source(source.clone());
        (pool, source)
    }

    #[test]
    fn consolidation_assembles_query_order() {
        let pool = toy_pool(4, &[0, 1, 2, 3]);
        let (model, stats) = pool.consolidate(&[2, 0]).unwrap();
        assert_eq!(stats.num_experts, 2);
        assert_eq!(model.class_layout(), vec![4, 5, 0, 1]);
        let y = model.infer(&Tensor::zeros([1, 4]));
        assert_eq!(y.dims(), &[1, 4]);
        assert!(stats.assembly_secs < 1.0);
        assert_eq!(stats.params, model.param_count());
    }

    #[test]
    fn query_errors_are_specific() {
        let pool = toy_pool(4, &[0, 1]);
        assert_eq!(pool.consolidate(&[]).unwrap_err(), QueryError::EmptyQuery);
        assert_eq!(
            pool.consolidate(&[9]).unwrap_err(),
            QueryError::UnknownTask(9)
        );
        assert_eq!(
            pool.consolidate(&[0, 0]).unwrap_err(),
            QueryError::DuplicateTask(0)
        );
        assert_eq!(
            pool.consolidate(&[0, 3]).unwrap_err(),
            QueryError::MissingExpert(3)
        );
    }

    #[test]
    #[should_panic(expected = "disagrees")]
    fn insert_expert_validates_classes() {
        let mut pool = toy_pool(3, &[]);
        let mut rng = Prng::seed_from_u64(8);
        pool.insert_expert(Expert {
            task_index: 0,
            classes: vec![4, 5], // wrong: task 0 owns {0, 1}
            head: Sequential::new().push(Linear::new("e", 6, 2, &mut rng)),
        });
    }

    #[test]
    fn volumes_account_every_component() {
        let pool = toy_pool(3, &[0, 2]);
        let v = pool.volumes();
        assert!(v.library_bytes > 0);
        assert_eq!(v.expert_bytes.len(), 2);
        assert_eq!(
            v.total_bytes,
            v.library_bytes + v.expert_bytes.values().sum::<u64>()
        );
        assert!(v.mean_expert_bytes() > 0);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("poe_pool_test");
        let pool = toy_pool(3, &[0, 1, 2]);
        let written = pool.save_to_dir(&dir).unwrap();
        assert_eq!(written, pool.volumes().total_bytes);

        // A pool with the same structure but different weights converges to
        // the saved weights after load.
        let mut other = toy_pool(3, &[0, 1, 2]);
        other
            .library
            .visit_params(&mut |p| p.value.map_in_place(|_| 0.123));
        other.load_from_dir(&dir).unwrap();

        let (a, _) = pool.consolidate(&[0, 1, 2]).unwrap();
        let (b, _) = other.consolidate(&[0, 1, 2]).unwrap();
        let x = Tensor::randn([3, 4], 1.0, &mut Prng::seed_from_u64(9));
        assert!(a.infer(&x).max_abs_diff(&b.infer(&x)) < 1e-6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn consolidated_models_are_isolated_from_pool_updates() {
        let mut pool = toy_pool(3, &[0, 1, 2]);
        let x = Tensor::randn([2, 4], 1.0, &mut Prng::seed_from_u64(11));
        let (before, _) = pool.consolidate(&[0, 2]).unwrap();
        let y_before = before.infer(&x);

        // Consolidation shares the pool's weight buffers (copy-on-write), so
        // an in-place pool update — a fine-tuning step, a reload — must
        // detach rather than leak into already-assembled models.
        pool.library
            .visit_params(&mut |p| p.value.map_in_place(|v| v + 1.0));
        assert!(before.infer(&x).max_abs_diff(&y_before) == 0.0);

        // Only an explicit re-consolidation observes the new weights.
        let (after, _) = pool.consolidate(&[0, 2]).unwrap();
        assert!(after.infer(&x).max_abs_diff(&y_before) > 1e-3);
    }

    #[test]
    fn quantized_pool_consolidates_within_error_bound() {
        let mut pool = toy_pool(4, &[0, 1, 2, 3]);
        let x = Tensor::randn([3, 4], 1.0, &mut Prng::seed_from_u64(12));
        let (dense, _) = pool.consolidate(&[0, 2, 3]).unwrap();
        let y_dense = dense.infer(&x);

        let report = pool.quantize_experts();
        assert_eq!(report.experts, 4);
        assert!(pool.is_quantized(2));
        assert!(report.quantized_bytes < report.dense_bytes);
        assert!(!report.to_string().is_empty());

        let before = poe_obs::global_counter!("pool.dequantize.experts").get();
        let (quant, _) = pool.consolidate(&[0, 2, 3]).unwrap();
        assert_eq!(
            poe_obs::global_counter!("pool.dequantize.experts").get(),
            before + 3
        );
        // The library is untouched and weight error is bounded, so logits
        // drift by at most (input magnitude · fan-in · bound)-ish; for this
        // toy geometry a loose absolute check suffices.
        let drift = quant.infer(&x).max_abs_diff(&y_dense);
        assert!(drift > 0.0, "quantization should not be a no-op");
        assert!(
            drift <= 16.0 * report.max_error_bound,
            "drift {drift} vs bound {}",
            report.max_error_bound
        );

        // Idempotent.
        let again = pool.quantize_experts();
        assert_eq!(again.experts, 0);
    }

    #[test]
    fn quantized_pool_save_load_round_trip() {
        let dir = std::env::temp_dir().join("poe_pool_quant_test");
        let mut pool = toy_pool(3, &[0, 1, 2]);
        pool.quantize_experts();
        let written = pool.save_to_dir(&dir).unwrap();
        assert_eq!(written, pool.volumes().total_bytes);

        // Quantized files are smaller than the dense equivalents.
        let dense = toy_pool(3, &[0, 1, 2]);
        assert!(
            pool.volumes().expert_bytes.values().sum::<u64>()
                < dense.volumes().expert_bytes.values().sum::<u64>()
        );

        let mut other = toy_pool(3, &[0, 1, 2]);
        other.load_from_dir(&dir).unwrap();
        assert!(other.is_quantized(0) && other.is_quantized(2));
        let x = Tensor::randn([3, 4], 1.0, &mut Prng::seed_from_u64(13));
        let (a, _) = pool.consolidate(&[0, 1, 2]).unwrap();
        let (b, _) = other.consolidate(&[0, 1, 2]).unwrap();
        // Same int8 payload on both sides: assembled models agree exactly.
        assert!(a.infer(&x).max_abs_diff(&b.infer(&x)) < 1e-6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reinserting_an_expert_clears_stale_quantization() {
        let mut pool = toy_pool(3, &[0, 1, 2]);
        pool.quantize_experts();
        assert!(pool.is_quantized(1));
        let mut rng = Prng::seed_from_u64(14);
        let classes = pool.hierarchy().primitive(1).classes.clone();
        let head = Sequential::new().push(Linear::new("e1b", 6, classes.len(), &mut rng));
        pool.insert_expert(Expert {
            task_index: 1,
            classes,
            head,
        });
        assert!(!pool.is_quantized(1));
        // Consolidation still works with a mixed dense/quantized pool.
        pool.consolidate(&[0, 1, 2]).unwrap();
    }

    #[test]
    fn consolidation_is_fast_and_repeatable() {
        let pool = toy_pool(6, &[0, 1, 2, 3, 4, 5]);
        let x = Tensor::randn([2, 4], 1.0, &mut Prng::seed_from_u64(10));
        let (m1, _) = pool.consolidate(&[1, 3, 5]).unwrap();
        let (m2, _) = pool.consolidate(&[1, 3, 5]).unwrap();
        assert!(m1.infer(&x).max_abs_diff(&m2.infer(&x)) == 0.0);
    }

    #[test]
    fn versions_start_at_one_and_bump_on_reinstall() {
        let mut pool = toy_pool(3, &[0, 1]);
        assert_eq!(pool.expert_version(0), Some(1));
        assert_eq!(pool.expert_version(2), None);
        let classes = pool.hierarchy().primitive(0).classes.clone();
        let mut rng = Prng::seed_from_u64(15);
        let head = Sequential::new().push(Linear::new("e0b", 6, classes.len(), &mut rng));
        let v = pool.insert_expert(Expert {
            task_index: 0,
            classes,
            head,
        });
        assert_eq!(v, 2);
        assert_eq!(pool.expert_version(0), Some(2));
    }

    #[test]
    fn source_backed_pool_loads_lazily_and_answers_identically() {
        let all = [0usize, 1, 2, 3];
        let full = toy_pool(4, &all);
        let (lazy, _) = lazy_pool(4);
        assert_eq!(lazy.num_experts(), 4);
        assert_eq!(lazy.resident_experts(), 0);
        assert!(lazy.has_expert(3) && !lazy.is_resident(3));

        let x = Tensor::randn([2, 4], 1.0, &mut Prng::seed_from_u64(16));
        let (a, _) = full.consolidate(&[1, 3]).unwrap();
        let (b, _) = lazy.consolidate(&[1, 3]).unwrap();
        assert!(a.infer(&x).max_abs_diff(&b.infer(&x)) == 0.0);
        assert_eq!(lazy.resident_experts(), 2);
        assert!(lazy.is_resident(1) && lazy.is_resident(3));
    }

    #[test]
    fn eviction_respects_budget_lru_and_pins() {
        let (mut pool, _) = lazy_pool(6);
        pool.set_resident_budget(2);
        pool.consolidate(&[0, 1]).unwrap();
        assert_eq!(pool.resident_experts(), 2);
        // Loading 2 evicts the least-recently-used: 0 and 1 came from the
        // same query, but 0 was touched first, so it is the LRU tail.
        pool.consolidate(&[2]).unwrap();
        assert_eq!(pool.resident_experts(), 2);
        assert!(pool.is_resident(2) && pool.is_resident(1));
        assert!(!pool.is_resident(0), "LRU tail should be evicted");

        // A memory-only insert is pinned: eviction must skip it even
        // when it is the coldest entry.
        let classes = pool.hierarchy().primitive(5).classes.clone();
        let mut rng = Prng::seed_from_u64(17);
        let head = Sequential::new().push(Linear::new("e5b", 6, classes.len(), &mut rng));
        pool.insert_expert(Expert {
            task_index: 5,
            classes,
            head,
        });
        pool.consolidate(&[3]).unwrap();
        pool.consolidate(&[4]).unwrap();
        assert!(pool.is_resident(5), "pinned expert must survive eviction");

        // A query larger than the budget still works; the budget is a
        // target, not a hard ceiling mid-query.
        pool.consolidate(&[0, 1, 2, 3]).unwrap();
        assert!(pool.resident_experts() >= 4);
    }

    #[test]
    fn evicted_expert_reloads_with_identical_logits() {
        let (mut pool, _) = lazy_pool(4);
        pool.set_resident_budget(1);
        let x = Tensor::randn([2, 4], 1.0, &mut Prng::seed_from_u64(18));
        let (first, _) = pool.consolidate(&[2]).unwrap();
        let y_first = first.infer(&x);
        // Force 2 out of residency, then query it again.
        pool.consolidate(&[3]).unwrap();
        assert!(!pool.is_resident(2));
        let (again, _) = pool.consolidate(&[2]).unwrap();
        assert!(again.infer(&x).max_abs_diff(&y_first) == 0.0);
    }

    #[test]
    fn failed_lazy_load_is_a_typed_error_and_recoverable() {
        let (pool, source) = lazy_pool(3);
        source.fail.lock().unwrap().insert(1);
        let err = pool.consolidate(&[0, 1]).unwrap_err();
        match &err {
            QueryError::ExpertLoad { task, detail } => {
                assert_eq!(*task, 1);
                assert!(detail.contains("injected"), "{detail}");
            }
            other => panic!("expected ExpertLoad, got {other:?}"),
        }
        assert!(err.to_string().contains("expert 1 failed to load"));
        // The failure is transient: clearing it makes the query work.
        source.fail.lock().unwrap().clear();
        pool.consolidate(&[0, 1]).unwrap();
    }

    #[test]
    fn reload_and_install_swap_an_expert_without_touching_models() {
        let (mut pool, source) = lazy_pool(3);
        let x = Tensor::randn([2, 4], 1.0, &mut Prng::seed_from_u64(19));
        let (before, _) = pool.consolidate(&[0]).unwrap();
        let y_before = before.infer(&x);

        // Re-extract task 0 out of band: the source now serves different
        // weights under a bumped version.
        let mut rng = Prng::seed_from_u64(20);
        let classes = pool.hierarchy().primitive(0).classes.clone();
        let head = Sequential::new().push(Linear::new("e0", 6, classes.len(), &mut rng));
        source.experts.lock().unwrap().insert(
            0,
            (
                Expert {
                    task_index: 0,
                    classes,
                    head,
                },
                2,
            ),
        );

        let loaded = pool.reload_from_source(0).unwrap();
        assert_eq!(loaded.version, 2);
        let v = pool.install_loaded(loaded);
        assert_eq!(v, 2);
        assert_eq!(pool.expert_version(0), Some(2));

        // The already-assembled model is untouched; a fresh consolidation
        // sees the new weights.
        assert!(before.infer(&x).max_abs_diff(&y_before) == 0.0);
        let (after, _) = pool.consolidate(&[0]).unwrap();
        assert!(after.infer(&x).max_abs_diff(&y_before) > 0.0);
    }
}
