//! Preprocessing phase, step 1: **library extraction** (Section 4.1).
//!
//! Standard KD (Eq. (1)) distills the oracle into a small generic student
//! that still covers all classes; the student's first groups (its
//! [`SplitModel`] trunk) become the *library* component shared by every
//! expert.

use crate::training::{logits_of, train_distill};
use poe_models::SplitModel;
use poe_nn::layers::Sequential;
use poe_nn::train::{TrainConfig, TrainReport};
use poe_nn::Module;
use poe_tensor::Tensor;

/// Configuration of library extraction.
#[derive(Debug, Clone)]
pub struct LibraryConfig {
    /// Distillation temperature `T`.
    pub temperature: f32,
    /// Optimization settings for the student.
    pub train: TrainConfig,
}

impl LibraryConfig {
    /// Defaults used across the reproduction (T = 4).
    pub fn new(train: TrainConfig) -> Self {
        LibraryConfig {
            temperature: 4.0,
            train,
        }
    }
}

/// Output of [`extract_library`].
pub struct LibraryExtraction {
    /// The distilled generic student (trunk = library, head = its own
    /// generic conv4 + classifier, kept for Table 1 evaluation).
    pub student: SplitModel,
    /// Training history of the distillation.
    pub report: TrainReport,
}

impl LibraryExtraction {
    /// Detaches a copy of the library component (the student's trunk).
    pub fn library(&self) -> Sequential {
        self.student.trunk().clone()
    }
}

/// Distills `oracle` (via its precomputed full-training-set logits) into
/// `student`, then designates the student's trunk as the library.
///
/// `oracle_logits` must be the oracle's logits over exactly the rows of
/// `train_inputs`.
pub fn extract_library(
    mut student: SplitModel,
    train_inputs: &Tensor,
    oracle_logits: &Tensor,
    cfg: &LibraryConfig,
) -> LibraryExtraction {
    let report = train_distill(
        &mut student,
        train_inputs,
        oracle_logits,
        cfg.temperature,
        &cfg.train,
    );
    LibraryExtraction { student, report }
}

/// Convenience wrapper: computes the oracle logits, then extracts.
pub fn extract_library_from_oracle(
    oracle: &mut dyn Module,
    student: SplitModel,
    train_inputs: &Tensor,
    cfg: &LibraryConfig,
) -> LibraryExtraction {
    let oracle_logits = logits_of(oracle, train_inputs);
    extract_library(student, train_inputs, &oracle_logits, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{eval_accuracy, train_cross_entropy};
    use poe_data::synth::{generate, GaussianHierarchyConfig};
    use poe_models::{build_wrn_mlp, WrnConfig};
    use poe_tensor::Prng;

    #[test]
    fn library_student_learns_from_oracle() {
        let (split, _) = generate(
            &GaussianHierarchyConfig {
                dim: 8,
                ..GaussianHierarchyConfig::balanced(3, 2)
            }
            .with_samples(25, 10)
            .with_seed(11),
        );
        let mut rng = Prng::seed_from_u64(1);
        // Oracle: wider analog trained from scratch.
        let mut oracle = build_wrn_mlp(&WrnConfig::new(10, 2.0, 2.0, 6).with_unit(8), 8, &mut rng);
        train_cross_entropy(&mut oracle, &split.train, &TrainConfig::new(25, 32, 0.08));
        let oracle_acc = eval_accuracy(&mut oracle, &split.test);
        assert!(oracle_acc > 0.6, "oracle too weak: {oracle_acc}");

        // Student: small analog distilled from the oracle.
        let student = build_wrn_mlp(&WrnConfig::new(10, 1.0, 1.0, 6).with_unit(4), 8, &mut rng);
        let cfg = LibraryConfig::new(TrainConfig::new(60, 32, 0.04));
        let ext = extract_library_from_oracle(&mut oracle, student, &split.train.inputs, &cfg);
        let lib = ext.library();
        let mut student = ext.student;
        let student_acc = eval_accuracy(&mut student, &split.test);
        assert!(
            student_acc > 0.5,
            "distilled student too weak: {student_acc} (oracle {oracle_acc})"
        );

        // The detached library produces the trunk's feature width.
        let w3 = lib.out_shape(&[8]);
        assert_eq!(w3, student.trunk().out_shape(&[8]));
        // Library is smaller than the full student.
        assert!(lib.param_count() < student.param_count());
    }
}
