//! # poe-core
//!
//! The Pool of Experts framework (Kim & Choi, SIGMOD 2021): realtime
//! querying of specialized knowledge in massive neural networks.
//!
//! **Preprocessing phase** (Figure 1a): [`library`] extracts a shared
//! *library* component from the oracle by standard KD; [`ckd`] extracts one
//! tiny *expert* per primitive task by conditional knowledge distillation
//! (`L_CKD = L_soft + α·L_scale`). [`pipeline`] orchestrates the whole
//! phase.
//!
//! **Service phase** (Figure 1b): [`pool::ExpertPool::consolidate`]
//! assembles a task-specific model for any composite task by train-free
//! logit concatenation; [`service::QueryService`] wraps the pool as a
//! concurrent realtime querying front end.
//!
//! [`confidence`] provides the out-of-distribution confidence analysis of
//! Figure 5; [`training`] holds the shared training/eval helpers that the
//! baseline methods reuse; [`store`] persists pools as self-describing
//! model databases; [`diagnostics`] measures expert calibration and the
//! logit-scale health of a pool.
//!
//! End to end, at toy scale:
//!
//! ```
//! use poe_core::pipeline::{preprocess, PipelineConfig};
//! use poe_data::synth::{generate, GaussianHierarchyConfig};
//! use poe_models::WrnConfig;
//!
//! // 4 primitive tasks × 2 classes of hierarchical Gaussian data.
//! let cfg = GaussianHierarchyConfig { dim: 6, ..GaussianHierarchyConfig::balanced(4, 2) }
//!     .with_samples(8, 4)
//!     .with_seed(7);
//! let (split, hierarchy) = generate(&cfg);
//!
//! // Preprocess once: oracle → library → one expert per task.
//! let pipe = PipelineConfig::defaults(
//!     WrnConfig::new(10, 1.0, 1.0, 8).with_unit(4),
//!     WrnConfig::new(10, 1.0, 1.0, 8).with_unit(4),
//!     2, // epochs — just a smoke run for the doctest
//! );
//! let pre = preprocess(&split.train, &hierarchy, &pipe, None);
//!
//! // Service phase: any composite task, train-free.
//! let (mut model, stats) = pre.pool.consolidate(&[0, 3]).unwrap();
//! assert_eq!(model.class_layout(), vec![0, 1, 6, 7]);
//! assert_eq!(stats.num_experts, 2);
//! let logits = model.infer(&split.test.inputs);
//! assert_eq!(logits.dims(), &[split.test.len(), 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ckd;
pub mod confidence;
pub mod diagnostics;
pub mod library;
pub mod pipeline;
pub mod pool;
pub mod service;
pub mod store;
pub mod training;

pub use ckd::{extract_expert, CkdConfig, ExpertExtraction};
pub use confidence::{max_confidence_histogram, max_confidences, ConfidenceHistogram};
pub use diagnostics::{diagnose_pool, ExpertDiagnostics, PoolDiagnostics};
pub use library::{extract_library, extract_library_from_oracle, LibraryConfig, LibraryExtraction};
pub use pipeline::{preprocess, PipelineConfig, Preprocessed};
pub use pool::{
    ConsolidationStats, Expert, ExpertPool, ExpertSource, LoadedExpert, QueryError, SourceEntry,
    VolumeReport,
};
pub use service::{LatencyHistogram, QueryResult, QueryService, ServiceStats};
pub use store::{load_standalone, save_standalone, PoolSpec, SegmentSource, SEGMENT_FILE};
