//! Confidence analysis for specialized models (Section 5.2, Figure 5).
//!
//! For out-of-distribution inputs — images of classes a specialist has
//! never seen — a *properly confident* expert should produce low maximum
//! softmax probabilities, while overconfident models (Scratch / Transfer in
//! the paper) peak above 0.9. This module computes the histogram of maximum
//! confidence values that Figure 5 plots.

use poe_nn::train::predict;
use poe_nn::Module;
use poe_tensor::ops::softmax;
use poe_tensor::Tensor;

/// Histogram of per-sample maximum softmax probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfidenceHistogram {
    /// Bin counts over `[0, 1]`, uniform width `1 / bins.len()`.
    pub bins: Vec<usize>,
    /// Total samples histogrammed.
    pub total: usize,
}

impl ConfidenceHistogram {
    /// Builds a histogram from raw maximum-confidence values.
    pub fn from_values(values: &[f32], num_bins: usize) -> Self {
        assert!(num_bins > 0, "need at least one bin");
        let mut bins = vec![0usize; num_bins];
        for &v in values {
            let clamped = v.clamp(0.0, 1.0);
            let mut b = (clamped * num_bins as f32) as usize;
            if b == num_bins {
                b -= 1; // v == 1.0 lands in the last bin
            }
            bins[b] += 1;
        }
        ConfidenceHistogram {
            bins,
            total: values.len(),
        }
    }

    /// Index of the most frequent bin (ties → lowest index).
    pub fn mode_bin(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            if c > self.bins[best] {
                best = i;
            }
        }
        best
    }

    /// `[lo, hi)` confidence range of the most frequent bin.
    pub fn mode_range(&self) -> (f32, f32) {
        let w = 1.0 / self.bins.len() as f32;
        let b = self.mode_bin();
        (b as f32 * w, (b + 1) as f32 * w)
    }

    /// Fraction of samples with confidence ≥ `threshold`.
    pub fn fraction_at_least(&self, threshold: f32) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let w = 1.0 / self.bins.len() as f32;
        let count: usize = self
            .bins
            .iter()
            .enumerate()
            .filter(|(i, _)| (*i as f32) * w >= threshold - 1e-6)
            .map(|(_, &c)| c)
            .sum();
        count as f64 / self.total as f64
    }

    /// Mean confidence approximated from bin centres.
    pub fn approx_mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let w = 1.0 / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 + 0.5) * w * c as f64)
            .sum::<f64>()
            / self.total as f64
    }

    /// A compact ASCII rendering (one row per bin), used by the Figure 5
    /// reproduction binary.
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(1).max(1);
        let w = 1.0 / self.bins.len() as f32;
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let bar = "#".repeat((c * width).div_ceil(max));
            out.push_str(&format!(
                "[{:.1},{:.1}) {:>6} {}\n",
                i as f32 * w,
                (i + 1) as f32 * w,
                c,
                bar
            ));
        }
        out
    }
}

/// Per-sample maximum softmax probabilities of a model over `inputs`.
pub fn max_confidences(model: &mut dyn Module, inputs: &Tensor) -> Vec<f32> {
    let logits = predict(model, inputs, crate::training::EVAL_BATCH);
    softmax(&logits).max_rows()
}

/// Histogram of a model's maximum confidences over `inputs` — pass the
/// out-of-distribution view of the test set to reproduce Figure 5.
pub fn max_confidence_histogram(
    model: &mut dyn Module,
    inputs: &Tensor,
    num_bins: usize,
) -> ConfidenceHistogram {
    ConfidenceHistogram::from_values(&max_confidences(model, inputs), num_bins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use poe_nn::layers::{Linear, Sequential};
    use poe_tensor::Prng;

    #[test]
    fn from_values_bins_correctly() {
        let h = ConfidenceHistogram::from_values(&[0.05, 0.15, 0.95, 1.0, 0.951], 10);
        assert_eq!(h.total, 5);
        assert_eq!(h.bins[0], 1);
        assert_eq!(h.bins[1], 1);
        assert_eq!(h.bins[9], 3);
    }

    #[test]
    fn mode_and_fraction() {
        let h = ConfidenceHistogram::from_values(&[0.91, 0.93, 0.97, 0.31], 10);
        assert_eq!(h.mode_bin(), 9);
        let (lo, hi) = h.mode_range();
        assert!((lo - 0.9).abs() < 1e-6 && (hi - 1.0).abs() < 1e-6);
        assert!((h.fraction_at_least(0.9) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn approx_mean_is_sane() {
        let h = ConfidenceHistogram::from_values(&[0.25; 100], 20);
        assert!((h.approx_mean() - 0.275).abs() < 1e-6); // centre of [0.25,0.30)
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = ConfidenceHistogram::from_values(&[], 10);
        assert_eq!(h.fraction_at_least(0.5), 0.0);
        assert_eq!(h.approx_mean(), 0.0);
    }

    #[test]
    fn model_confidences_are_probabilities() {
        let mut rng = Prng::seed_from_u64(1);
        let mut m = Sequential::new().push(Linear::new("l", 4, 3, &mut rng));
        let x = Tensor::randn([20, 4], 1.0, &mut rng);
        let conf = max_confidences(&mut m, &x);
        assert_eq!(conf.len(), 20);
        // Max softmax of 3 classes is in [1/3, 1].
        assert!(conf.iter().all(|&c| (1.0 / 3.0 - 1e-5..=1.0).contains(&c)));
        let h = max_confidence_histogram(&mut m, &x, 10);
        assert_eq!(h.total, 20);
        assert_eq!(h.bins.iter().sum::<usize>(), 20);
    }

    #[test]
    fn ascii_render_has_one_line_per_bin() {
        let h = ConfidenceHistogram::from_values(&[0.1, 0.5, 0.9], 5);
        let s = h.render_ascii(10);
        assert_eq!(s.lines().count(), 5);
    }
}
