//! # pool-of-experts
//!
//! Facade crate re-exporting the public API of the Pool of Experts (PoE)
//! reproduction — see the workspace `README.md` for the architecture and
//! `DESIGN.md` for the paper-to-code map.
//!
//! ```
//! use pool_of_experts::prelude::*;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use poe_baselines as baselines;
pub use poe_core as core;
pub use poe_data as data;
pub use poe_models as models;
pub use poe_nn as nn;
pub use poe_obs as obs;
pub use poe_tensor as tensor;

/// Commonly-used items, re-exported for examples and quick starts.
pub mod prelude {
    pub use poe_core::pipeline::{preprocess, PipelineConfig, Preprocessed};
    pub use poe_core::pool::{Expert, ExpertPool};
    pub use poe_core::service::QueryService;
    pub use poe_data::synth::{generate, GaussianHierarchyConfig};
    pub use poe_data::{ClassHierarchy, Dataset, SplitDataset};
    pub use poe_models::{BranchedModel, SplitModel, WrnConfig};
    pub use poe_nn::train::TrainConfig;
    pub use poe_nn::Module;
    pub use poe_tensor::{Prng, Shape, Tensor};
}
